//! End-to-end tests of the threaded runtime: the full protocol stack
//! (XML → SOAP → WSA → HTTP) over real thread pools and in-memory
//! streams.

use std::sync::Arc;
use std::time::Duration;

use ws_dispatcher::core::config::{DispatcherConfig, MsgBoxConfig};
use ws_dispatcher::core::msg::MsgCore;
use ws_dispatcher::core::registry::{BalanceStrategy, Registry};
use ws_dispatcher::core::rt::{
    rpc_call, send_oneway, EchoServer, MailboxClient, MsgBoxServer, MsgDispatcherServer,
    Network, RpcDispatcherServer,
};
use ws_dispatcher::core::security::{attach_token, MaxSize, PolicyChain, TokenAuth};
use ws_dispatcher::core::url::Url;
use ws_dispatcher::soap::{rpc, SoapVersion};
use ws_dispatcher::wsa::{EndpointReference, WsaHeaders};

#[test]
fn rpc_conversation_through_dispatcher() {
    let net = Network::new();
    let ws = EchoServer::start(&net, "ws", 8888, 4, Duration::ZERO);
    let registry = Arc::new(Registry::new());
    registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
    let disp = RpcDispatcherServer::start(
        &net,
        "dispatcher",
        8081,
        registry,
        PolicyChain::new(),
        DispatcherConfig::default(),
    );
    for v in [SoapVersion::V11, SoapVersion::V12] {
        let env = rpc::echo_request(v, "bonjour");
        let resp = rpc_call(&net, "dispatcher", 8081, "/svc/Echo", &env, None).unwrap();
        assert_eq!(rpc::parse_echo_response(&resp).unwrap(), "bonjour");
        assert_eq!(resp.version, v, "version must be preserved end to end");
    }
    disp.shutdown();
    ws.shutdown();
}

#[test]
fn registry_file_drives_a_live_dispatcher() {
    let net = Network::new();
    let ws = EchoServer::start(&net, "ws", 8888, 2, Duration::ZERO);
    // Configuration exactly as the paper's text-file registry.
    let registry = Arc::new(Registry::new());
    registry
        .load_from_str("# services\nEcho http://ws:8888/echo\n")
        .unwrap();
    let disp = RpcDispatcherServer::start(
        &net,
        "dispatcher",
        8081,
        registry,
        PolicyChain::new(),
        DispatcherConfig::default(),
    );
    let env = rpc::echo_request(SoapVersion::V11, "from-file");
    let resp = rpc_call(&net, "dispatcher", 8081, "/svc/Echo", &env, None).unwrap();
    assert_eq!(rpc::parse_echo_response(&resp).unwrap(), "from-file");
    disp.shutdown();
    ws.shutdown();
}

#[test]
fn security_chain_enforced_at_the_edge() {
    let net = Network::new();
    let ws = EchoServer::start(&net, "ws", 8888, 2, Duration::ZERO);
    let registry = Arc::new(Registry::new());
    registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
    let policies = PolicyChain::new()
        .with(MaxSize(10_000))
        .with(TokenAuth::new(["sso-token"]));
    let disp = RpcDispatcherServer::start(
        &net,
        "dispatcher",
        8081,
        registry,
        policies,
        DispatcherConfig::default(),
    );
    // No token: rejected with a SOAP fault; the WS never sees it.
    let env = rpc::echo_request(SoapVersion::V11, "x");
    let resp = rpc_call(&net, "dispatcher", 8081, "/svc/Echo", &env, None).unwrap();
    assert!(resp.as_fault().is_some());
    assert_eq!(ws.served(), 0);
    // With the token: passes.
    let mut env = rpc::echo_request(SoapVersion::V11, "x");
    attach_token(&mut env, "sso-token");
    let resp = rpc_call(&net, "dispatcher", 8081, "/svc/Echo", &env, None).unwrap();
    assert!(resp.as_fault().is_none());
    assert_eq!(ws.served(), 1);
    disp.shutdown();
    ws.shutdown();
}

#[test]
fn async_conversation_with_mailbox_end_to_end() {
    let net = Network::new();
    // One-way echo service that replies through its ReplyTo.
    let net_for_ws = Arc::clone(&net);
    net.listen("ws", 8888, move |stream| {
        let net = Arc::clone(&net_for_ws);
        std::thread::spawn(move || {
            let _ = ws_dispatcher::http::serve_connection(
                stream,
                &ws_dispatcher::http::Limits::default(),
                |req| {
                    let env = ws_dispatcher::soap::Envelope::parse(&req.body_utf8()).unwrap();
                    let h = WsaHeaders::from_envelope(&env).unwrap();
                    let mut reply =
                        rpc::echo_response(env.version, &rpc::parse_echo(&env).unwrap());
                    let mut rh = WsaHeaders::new();
                    if let Some(r) = &h.reply_to {
                        rh = rh.to(r.address.clone());
                    }
                    if let Some(id) = &h.message_id {
                        rh = rh.relates_to(id.clone());
                    }
                    rh.apply(&mut reply);
                    if let Some(r) = &h.reply_to {
                        let url = Url::parse(&r.address).unwrap();
                        let _ = send_oneway(&net, &url.host, url.port, &url.path, &reply);
                    }
                    ws_dispatcher::http::Response::empty(ws_dispatcher::http::Status::ACCEPTED)
                },
            );
        });
    });

    let registry = Arc::new(Registry::new());
    registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
    let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 7);
    let disp = MsgDispatcherServer::start(
        &net,
        "dispatcher",
        8080,
        core,
        DispatcherConfig::default(),
    );
    let mbox_server = MsgBoxServer::start(&net, "msgbox", 8082, MsgBoxConfig::default(), 7);
    net.set_firewalled("laptop", true);

    let mailbox = MailboxClient::create(&net, "msgbox", 8082).unwrap();
    // A multi-message conversation: three requests, three correlated
    // replies, picked up by polling.
    for i in 0..3 {
        let mut env = rpc::echo_request(SoapVersion::V11, &format!("m{i}"));
        WsaHeaders::new()
            .to("http://dispatcher/svc/Echo")
            .reply_to(EndpointReference::new(mailbox.deposit_url()))
            .message_id(format!("uuid:conv-{i}"))
            .apply(&mut env);
        send_oneway(&net, "dispatcher", 8080, "/msg", &env).unwrap();
    }
    let mut got = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while got.len() < 3 && std::time::Instant::now() < deadline {
        got.extend(mailbox.poll(10).unwrap());
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(got.len(), 3, "all replies must land in the mailbox");
    let mut texts: Vec<String> = got
        .iter()
        .map(|e| rpc::parse_echo_response(e).unwrap())
        .collect();
    texts.sort();
    assert_eq!(texts, vec!["m0", "m1", "m2"]);
    // Every reply correlates to its request id.
    for e in &got {
        let h = WsaHeaders::from_envelope(e).unwrap();
        assert!(h.relates_to[0].0.starts_with("uuid:conv-"));
    }
    mailbox.destroy().unwrap();
    disp.shutdown();
    mbox_server.shutdown();
}

#[test]
fn farm_failover_keeps_service_alive() {
    let net = Network::new();
    let w0 = EchoServer::start(&net, "w0", 8888, 2, Duration::ZERO);
    let w1 = EchoServer::start(&net, "w1", 8888, 2, Duration::ZERO);
    let registry = Arc::new(Registry::new().with_strategy(BalanceStrategy::RoundRobin));
    registry.register_many(
        "Echo",
        vec![
            Url::parse("http://w0:8888/echo").unwrap(),
            Url::parse("http://w1:8888/echo").unwrap(),
        ],
        None,
    );
    let disp = RpcDispatcherServer::start(
        &net,
        "dispatcher",
        8081,
        Arc::clone(&registry),
        PolicyChain::new(),
        DispatcherConfig::default(),
    );
    w0.shutdown();
    // After at most one 502 (which marks w0 down), all calls succeed.
    let mut failures = 0;
    let mut successes = 0;
    for i in 0..6 {
        let env = rpc::echo_request(SoapVersion::V11, &format!("{i}"));
        let resp = rpc_call(&net, "dispatcher", 8081, "/svc/Echo", &env, None).unwrap();
        if resp.as_fault().is_some() {
            failures += 1;
        } else {
            successes += 1;
        }
    }
    assert!(failures <= 1, "at most the probe call fails");
    assert!(successes >= 5);
    assert_eq!(registry.entry("Echo").unwrap().live_endpoints().len(), 1);
    disp.shutdown();
    w1.shutdown();
}

#[test]
fn oom_bug_reproduces_on_real_threads() {
    let net = Network::new();
    let cfg = MsgBoxConfig {
        strategy: ws_dispatcher::core::config::MsgBoxStrategy::ThreadPerMessage,
        thread_budget: 6,
        ..MsgBoxConfig::default()
    };
    let server = MsgBoxServer::start(&net, "msgbox", 8082, cfg, 1);
    // Hold connections open so each pins its spawned thread.
    let mut held = Vec::new();
    for _ in 0..6 {
        held.push(net.connect("msgbox", 8082).unwrap());
    }
    std::thread::sleep(Duration::from_millis(50));
    let _ = net.connect("msgbox", 8082); // the OutOfMemoryError
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while !server.crashed() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.crashed());
    drop(held);
    server.shutdown();
}
