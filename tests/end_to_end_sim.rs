//! End-to-end tests of the simulated runtime: the paper's topology,
//! full conversations, and determinism guarantees.

use std::sync::Arc;

use ws_dispatcher::core::config::MsgBoxConfig;
use ws_dispatcher::core::msg::MsgCore;
use ws_dispatcher::core::registry::Registry;
use ws_dispatcher::core::sim::{
    EchoMode, SimEchoService, SimMsgBox, SimMsgDispatcher, SimRpcDispatcher, WsThreadConfig,
};
use ws_dispatcher::core::url::Url;
use ws_dispatcher::loadgen::ramp::ClientPlacement;
use ws_dispatcher::loadgen::{
    spawn_msg_fleet, spawn_rpc_fleet, MsgClientConfig, ReplyMode, RpcClientConfig,
};
use ws_dispatcher::netsim::{
    profiles, FirewallPolicy, HostConfig, SimDuration, SimTime, Simulation,
};

fn minute() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(20)
}

/// The complete paper topology in one simulation: RPC and MSG
/// dispatchers, echo services in both styles, a mailbox, firewalled
/// clients — everything at once.
#[test]
fn full_topology_runs_both_interaction_styles_concurrently() {
    let mut sim = Simulation::new(99);
    let ws_rpc_host = sim.add_host(HostConfig::named("ws-rpc"));
    let ws_msg_host = sim.add_host(HostConfig::named("ws-msg"));
    let disp_host = sim.add_host(HostConfig::named("dispatcher"));
    let mb_host = sim.add_host(HostConfig::named("msgbox"));
    let rpc_clients_host = sim.add_host(HostConfig::named("rpc-clients"));
    let msg_clients_host =
        sim.add_host(HostConfig::named("msg-clients").firewall(FirewallPolicy::OutboundOnly));

    // Services.
    let rpc_svc = SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(5));
    let rpc_svc_stats = rpc_svc.stats();
    let p = sim.spawn(ws_rpc_host, Box::new(rpc_svc));
    sim.listen(p, 8888);
    let msg_svc = SimEchoService::new(
        EchoMode::OneWay {
            workers: 8,
            connect_timeout: SimDuration::from_secs(3),
        },
        SimDuration::from_millis(5),
    );
    let msg_svc_stats = msg_svc.stats();
    let p = sim.spawn(ws_msg_host, Box::new(msg_svc));
    sim.listen(p, 8889);

    // Shared registry, both dispatchers on one host.
    let registry = Arc::new(Registry::new());
    registry.register("EchoRpc", Url::parse("http://ws-rpc:8888/echo").unwrap());
    registry.register("EchoMsg", Url::parse("http://ws-msg:8889/echo").unwrap());
    let rpc_disp = SimRpcDispatcher::new(
        Arc::clone(&registry),
        SimDuration::from_millis(2),
        SimDuration::from_secs(3),
        SimDuration::from_secs(20),
    );
    let p = sim.spawn(disp_host, Box::new(rpc_disp));
    sim.listen(p, 8081);
    let core = MsgCore::new(Arc::clone(&registry), "http://dispatcher:8080/msg", 5);
    let msg_disp =
        SimMsgDispatcher::new(core, SimDuration::from_millis(2), WsThreadConfig::default());
    let p = sim.spawn(disp_host, Box::new(msg_disp));
    sim.listen(p, 8080);

    // Mailbox.
    let mbox = SimMsgBox::new(MsgBoxConfig::default(), SimDuration::from_millis(1), 5);
    let p = sim.spawn(mb_host, Box::new(mbox));
    sim.listen(p, 8082);

    // Fleets: 10 RPC clients + 10 firewalled messaging clients.
    let rpc_fleet = spawn_rpc_fleet(
        &mut sim,
        ClientPlacement::SharedHost(rpc_clients_host),
        10,
        &RpcClientConfig {
            target_host: "dispatcher".into(),
            target_port: 8081,
            path: "/svc/EchoRpc".into(),
            run_for: SimDuration::from_secs(20),
            ..RpcClientConfig::default()
        },
        SimDuration::from_secs(2),
    );
    let msg_fleet = spawn_msg_fleet(
        &mut sim,
        ClientPlacement::SharedHost(msg_clients_host),
        10,
        &MsgClientConfig {
            target_host: "dispatcher".into(),
            target_port: 8080,
            path: "/msg".into(),
            to_address: "http://dispatcher/svc/EchoMsg".into(),
            reply_mode: ReplyMode::Mailbox {
                host: "msgbox".into(),
                port: 8082,
                poll_interval: SimDuration::from_millis(500),
            },
            connect_timeout: SimDuration::from_secs(3),
            retry_backoff: SimDuration::from_millis(100),
            run_for: SimDuration::from_secs(20),
            client_name: "full".into(),
        },
        SimDuration::from_secs(2),
    );

    sim.run_until(minute() + SimDuration::from_secs(2));

    let rpc_totals = rpc_fleet.totals();
    assert!(rpc_totals.transmitted > 100, "{rpc_totals:?}");
    assert_eq!(rpc_totals.not_sent, 0);
    assert_eq!(rpc_svc_stats.responses_sent(), rpc_totals.transmitted);

    let (sent, failures, responses) = msg_fleet.totals();
    assert!(sent > 50, "sent {sent}");
    assert_eq!(failures, 0);
    assert!(responses > 50, "responses {responses}");
    assert!(responses <= msg_svc_stats.processed());
}

/// Identical seeds and workloads give bit-identical results; different
/// seeds give a different event interleaving.
#[test]
fn simulation_is_deterministic() {
    let run = |seed: u64| {
        let mut sim = Simulation::new(seed);
        let ws = sim.add_host(profiles::inria_fast("ws").firewall(FirewallPolicy::Open));
        let clients = sim.add_host(profiles::iu_low("clients"));
        let svc = SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(8));
        let p = sim.spawn(ws, Box::new(svc));
        sim.listen(p, 80);
        let fleet = spawn_rpc_fleet(
            &mut sim,
            ClientPlacement::SharedHost(clients),
            25,
            &RpcClientConfig {
                target_host: "ws".into(),
                target_port: 80,
                path: "/echo".into(),
                run_for: SimDuration::from_secs(10),
                ..RpcClientConfig::default()
            },
            SimDuration::from_secs(1),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let t = fleet.totals();
        (sim.events_processed(), t.transmitted, t.not_sent)
    };
    assert_eq!(run(7), run(7));
    // Note: the workload here is deterministic regardless of seed; the
    // seed check below only guards that the two runs above were not
    // trivially empty.
    assert!(run(7).1 > 0);
}

/// Messages are conserved: everything the clients count as transmitted
/// was genuinely served by the service, and mailbox fetches never exceed
/// deposits.
#[test]
fn conservation_of_messages() {
    let mut sim = Simulation::new(123);
    let ws_host = sim.add_host(HostConfig::named("ws"));
    let mb_host = sim.add_host(HostConfig::named("msgbox"));
    let disp_host = sim.add_host(HostConfig::named("dispatcher"));
    let client_host =
        sim.add_host(HostConfig::named("clients").firewall(FirewallPolicy::OutboundOnly));

    let svc = SimEchoService::new(
        EchoMode::OneWay {
            workers: 4,
            connect_timeout: SimDuration::from_secs(3),
        },
        SimDuration::from_millis(3),
    );
    let svc_stats = svc.stats();
    let p = sim.spawn(ws_host, Box::new(svc));
    sim.listen(p, 8888);

    let registry = Arc::new(Registry::new());
    registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
    let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 5);
    let disp =
        SimMsgDispatcher::new(core, SimDuration::from_millis(1), WsThreadConfig::default());
    let disp_stats = disp.stats();
    let p = sim.spawn(disp_host, Box::new(disp));
    sim.listen(p, 8080);

    let mbox = SimMsgBox::new(MsgBoxConfig::default(), SimDuration::from_millis(1), 5);
    let mbox_stats = mbox.stats();
    let p = sim.spawn(mb_host, Box::new(mbox));
    sim.listen(p, 8082);

    let fleet = spawn_msg_fleet(
        &mut sim,
        ClientPlacement::SharedHost(client_host),
        5,
        &MsgClientConfig {
            target_host: "dispatcher".into(),
            target_port: 8080,
            path: "/msg".into(),
            to_address: "http://dispatcher/svc/Echo".into(),
            reply_mode: ReplyMode::Mailbox {
                host: "msgbox".into(),
                port: 8082,
                poll_interval: SimDuration::from_millis(300),
            },
            connect_timeout: SimDuration::from_secs(3),
            retry_backoff: SimDuration::from_millis(100),
            run_for: SimDuration::from_secs(10),
            client_name: "cons".into(),
        },
        SimDuration::from_millis(500),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(14));
    let (sent, _fail, responses) = fleet.totals();

    // Client-acked ≥ service-accepted (acks ride behind processing);
    // replies fetched ≤ deposits ≤ service replies sent.
    assert!(svc_stats.accepted() >= sent, "{} vs {sent}", svc_stats.accepted());
    assert!(mbox_stats.deposits() <= svc_stats.responses_sent());
    assert!(responses <= mbox_stats.deposits());
    assert!(responses > 0);
    // The dispatcher forwarded everything it accepted (plus replies).
    assert!(disp_stats.forwarded() >= sent);
}
