//! Cross-crate protocol-stack tests: an envelope built at the top of the
//! stack survives every layer a deployed message crosses — SOAP
//! serialization, WS-Addressing rewriting, HTTP framing, byte transport —
//! and faults map sensibly across versions.

use ws_dispatcher::http::{parse_request_bytes, request_bytes, Request};
use ws_dispatcher::soap::{rpc, Envelope, Fault, FaultCode, SoapVersion};
use ws_dispatcher::wsa::{
    correlation_id, rewrite_for_forward, rewrite_for_reply, EndpointReference, MsgIdGen,
    WsaHeaders,
};
use ws_dispatcher::xml;

/// The full life of one message: client builds it, dispatcher rewrites
/// it, service answers, dispatcher routes the reply — through serialized
/// HTTP bytes at every hop.
#[test]
fn one_message_through_every_layer() {
    let ids = MsgIdGen::new(7);
    let msg_id = ids.next_id();

    // 1. Client: envelope + addressing + HTTP framing.
    let mut env = rpc::echo_request(SoapVersion::V11, "payload");
    WsaHeaders::new()
        .to("http://dispatcher/svc/Echo")
        .reply_to(EndpointReference::new("http://msgbox:8082/deposit/mbox-1"))
        .message_id(msg_id.clone())
        .action("urn:wsd:echo:echo")
        .apply(&mut env);
    let wire = request_bytes(&Request::soap_post(
        "dispatcher:8080",
        "/msg",
        SoapVersion::V11.content_type(),
        env.to_xml().into_bytes(),
    ));

    // 2. Dispatcher: parse off the wire, rewrite, re-frame.
    let req = parse_request_bytes(&wire).unwrap();
    let mut env = Envelope::parse(&req.body_utf8()).unwrap();
    let record =
        rewrite_for_forward(&mut env, "http://ws:8888/echo", "http://dispatcher:8080/msg")
            .unwrap();
    assert_eq!(
        record.original_reply_to.as_ref().unwrap().address,
        "http://msgbox:8082/deposit/mbox-1"
    );
    let wire = request_bytes(&Request::soap_post(
        "ws:8888",
        "/echo",
        SoapVersion::V11.content_type(),
        env.to_xml().into_bytes(),
    ));

    // 3. Service: parse, answer, correlate.
    let req = parse_request_bytes(&wire).unwrap();
    let env = Envelope::parse(&req.body_utf8()).unwrap();
    let h = WsaHeaders::from_envelope(&env).unwrap();
    assert_eq!(h.to.as_deref(), Some("http://ws:8888/echo"));
    assert_eq!(
        h.reply_to.as_ref().unwrap().address,
        "http://dispatcher:8080/msg"
    );
    let text = rpc::parse_echo(&env).unwrap();
    assert_eq!(text, "payload");
    let mut reply = rpc::echo_response(SoapVersion::V11, &text);
    WsaHeaders::new()
        .to(h.reply_to.unwrap().address)
        .relates_to(h.message_id.clone().unwrap())
        .apply(&mut reply);
    let wire = request_bytes(&Request::soap_post(
        "dispatcher:8080",
        "/msg",
        SoapVersion::V11.content_type(),
        reply.to_xml().into_bytes(),
    ));

    // 4. Dispatcher: correlate the reply and route it to the mailbox.
    let req = parse_request_bytes(&wire).unwrap();
    let mut reply = Envelope::parse(&req.body_utf8()).unwrap();
    assert_eq!(correlation_id(&reply).unwrap().as_deref(), Some(msg_id.as_str()));
    let dest = rewrite_for_reply(&mut reply, &record, None).unwrap();
    assert_eq!(dest.as_deref(), Some("http://msgbox:8082/deposit/mbox-1"));
    assert_eq!(rpc::parse_echo_response(&reply).unwrap(), "payload");
}

/// A SOAP 1.1 fault raised by a service is re-expressible as 1.2 (and
/// back) without losing its meaning — the dispatcher may face mixed
/// versions.
#[test]
fn faults_translate_across_versions() {
    let fault = Fault::new(FaultCode::Receiver, "backend exploded")
        .with_role("urn:wsd:dispatcher")
        .with_detail(xml::Element::new("errno").with_text("7"));
    let as11 = Envelope::fault(SoapVersion::V11, fault.clone());
    let parsed = Envelope::parse(&as11.to_xml()).unwrap();
    let carried = parsed.as_fault().unwrap().clone();
    let as12 = Envelope::fault(SoapVersion::V12, carried);
    let parsed = Envelope::parse(&as12.to_xml()).unwrap();
    let f = parsed.as_fault().unwrap();
    assert_eq!(f.code, FaultCode::Receiver);
    assert_eq!(f.reason, "backend exploded");
    assert_eq!(f.role.as_deref(), Some("urn:wsd:dispatcher"));
    assert_eq!(f.detail[0].text(), "7");
}

/// The paper's wire numbers hold through our stack: the echo request is
/// 263 bytes of XML, and a framed request stays in the neighbourhood of
/// the reported 483 bytes.
#[test]
fn paper_wire_sizes_hold() {
    let env = rpc::paper_echo_request();
    let xml = env.to_xml();
    assert_eq!(xml.len(), 263);
    let req = Request::soap_post(
        "ws",
        "/echo",
        SoapVersion::V11.content_type(),
        xml.into_bytes(),
    );
    let total = request_bytes(&req).len();
    // Our HTTP head is leaner than the paper's 220-byte header (fewer
    // default header lines), so the framed size lands a little under
    // 483; same order of magnitude is what matters for the link model.
    assert!((380..=560).contains(&total), "framed size {total}");
}

/// Unicode payloads, entities and attributes survive a full envelope
/// round trip through HTTP bytes.
#[test]
fn unicode_and_entities_survive() {
    let text = "héllo <&> \"世界\" 'ok'";
    let env = rpc::echo_request(SoapVersion::V12, text);
    let wire = request_bytes(&Request::soap_post(
        "h",
        "/",
        SoapVersion::V12.content_type(),
        env.to_xml().into_bytes(),
    ));
    let req = parse_request_bytes(&wire).unwrap();
    let env = Envelope::parse(&req.body_utf8()).unwrap();
    assert_eq!(rpc::parse_echo(&env).unwrap(), text);
}
