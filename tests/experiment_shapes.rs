//! The paper's qualitative claims, asserted as a single cross-experiment
//! test suite over short windows (shape, not absolute numbers — see
//! EXPERIMENTS.md).

use wsd_experiments_shim::*;

// The experiments crate is not part of the facade's public API; pull it
// in directly for these assertions.
mod wsd_experiments_shim {
    pub use wsd_experiments::{fig4, fig5, fig6, table1};
}

const SECS: u64 = 10;

#[test]
fn figure4_shape_holds() {
    // Loss is zero at 10 clients, visible at 500, catastrophic at 2000 —
    // and the dispatcher's curve tracks the direct one.
    let rows = fig4::run(SECS, &[10, 500, 2000]);
    let at = |n: usize| rows.iter().find(|r| r.clients == n).unwrap();
    assert_eq!(at(10).direct.not_sent, 0);
    assert!(at(500).direct.not_sent > at(500).direct.transmitted);
    assert!(at(2000).direct.not_sent > 20 * at(2000).direct.transmitted.max(1));
    // Dispatcher within 2x of direct on deliveries at every point.
    for r in &rows {
        assert!(
            r.dispatched.transmitted * 2 >= r.direct.transmitted,
            "clients={}: direct {:?} vs dispatched {:?}",
            r.clients,
            r.direct.transmitted,
            r.dispatched.transmitted
        );
    }
}

#[test]
fn figure5_shape_holds() {
    // Throughput grows toward a plateau; no loss anywhere; dispatcher
    // hugs direct.
    let rows = fig5::run(SECS, &[25, 100, 200, 300]);
    let per_min = |n: usize| rows.iter().find(|r| r.clients == n).unwrap();
    assert!(per_min(100).direct_per_min > per_min(25).direct_per_min * 2.0);
    assert!(per_min(300).direct_per_min <= per_min(200).direct_per_min * 1.1);
    for r in &rows {
        assert_eq!(r.direct_not_sent, 0, "clients={}", r.clients);
        assert_eq!(r.dispatched_not_sent, 0, "clients={}", r.clients);
        assert!(
            r.dispatched_per_min >= r.direct_per_min * 0.6,
            "clients={}",
            r.clients
        );
    }
}

#[test]
fn figure6_ordering_holds_at_scale() {
    // At 30+ clients: msgbox > dispatcher-alone > direct-blocked.
    let a = fig6::run_one(fig6::Series::DirectBlocked, 30, SECS);
    let b = fig6::run_one(fig6::Series::Dispatcher, 30, SECS);
    let c = fig6::run_one(fig6::Series::DispatcherWithMsgBox, 30, SECS);
    assert!(
        c.ws_processed > b.ws_processed && b.ws_processed > a.ws_processed,
        "a={} b={} c={}",
        a.ws_processed,
        b.ws_processed,
        c.ws_processed
    );
}

#[test]
fn table1_verdicts_hold() {
    let rows = table1::run(SECS);
    let get = |q: table1::Quadrant| rows.iter().find(|r| r.quadrant == q).unwrap();
    assert!(get(table1::Quadrant::RpcToRpc).exchanges_per_min > 100.0);
    assert_eq!(get(table1::Quadrant::RpcToMsg).exchanges_per_min, 0.0);
    assert!(get(table1::Quadrant::RpcToMsg).failures > 0);
    assert!(get(table1::Quadrant::MsgToRpc).exchanges_per_min > 50.0);
    assert!(get(table1::Quadrant::MsgToMsg).exchanges_per_min > 50.0);
}

#[test]
fn msgbox_bug_and_fix() {
    let o = fig6::run_oom(60, 15);
    assert!(o.thread_per_message_oom);
    assert!(!o.pooled_oom);
    assert!(o.pooled_peak < o.thread_per_message_peak);
}
