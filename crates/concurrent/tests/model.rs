//! Property-based model tests: the concurrent structures must behave like
//! their obvious sequential models under arbitrary operation sequences.

use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};
use wsd_concurrent::{FifoQueue, PopError, PushError, ShardedMap};

#[derive(Debug, Clone)]
enum QueueOp {
    Push(u16),
    Pop,
    Len,
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        any::<u16>().prop_map(QueueOp::Push),
        Just(QueueOp::Pop),
        Just(QueueOp::Len),
    ]
}

proptest! {
    #[test]
    fn queue_matches_vecdeque_model(cap in 1usize..32, ops in prop::collection::vec(queue_op(), 0..200)) {
        let q = FifoQueue::bounded(cap);
        let mut model: VecDeque<u16> = VecDeque::new();
        for op in ops {
            match op {
                QueueOp::Push(v) => {
                    let expect_full = model.len() >= cap;
                    match q.try_push(v) {
                        Ok(()) => {
                            prop_assert!(!expect_full);
                            model.push_back(v);
                        }
                        Err(PushError::Full(got)) => {
                            prop_assert!(expect_full);
                            prop_assert_eq!(got, v);
                        }
                        Err(PushError::Closed(_)) => prop_assert!(false, "queue never closed"),
                    }
                }
                QueueOp::Pop => match (q.try_pop(), model.pop_front()) {
                    (Ok(a), Some(b)) => prop_assert_eq!(a, b),
                    (Err(PopError::Empty), None) => {}
                    (a, b) => prop_assert!(false, "mismatch: {:?} vs {:?}", a, b),
                },
                QueueOp::Len => prop_assert_eq!(q.len(), model.len()),
            }
        }
        // Final drain must match the model exactly, in order.
        let drained = q.drain();
        let model_rest: Vec<u16> = model.into_iter().collect();
        prop_assert_eq!(drained, model_rest);
    }
}

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u8, u16),
    InsertIfAbsent(u8, u16),
    Get(u8),
    Remove(u8),
    Update(u8, u16),
    Contains(u8),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| MapOp::InsertIfAbsent(k, v)),
        any::<u8>().prop_map(MapOp::Get),
        any::<u8>().prop_map(MapOp::Remove),
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| MapOp::Update(k, v)),
        any::<u8>().prop_map(MapOp::Contains),
    ]
}

proptest! {
    #[test]
    fn sharded_map_matches_hashmap_model(shards in 1usize..16, ops in prop::collection::vec(map_op(), 0..300)) {
        let m: ShardedMap<u8, u16> = ShardedMap::with_shards(shards);
        let mut model: HashMap<u8, u16> = HashMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => prop_assert_eq!(m.insert(k, v), model.insert(k, v)),
                MapOp::InsertIfAbsent(k, v) => {
                    let expected_free = !model.contains_key(&k);
                    let got = m.insert_if_absent(k, v);
                    prop_assert_eq!(got.is_ok(), expected_free);
                    model.entry(k).or_insert(v);
                }
                MapOp::Get(k) => prop_assert_eq!(m.get(&k), model.get(&k).copied()),
                MapOp::Remove(k) => prop_assert_eq!(m.remove(&k), model.remove(&k)),
                MapOp::Update(k, d) => {
                    let got = m.update(&k, |v| *v = v.wrapping_add(d));
                    let expected = model.get_mut(&k).map(|v| { *v = v.wrapping_add(d); *v });
                    prop_assert_eq!(got, expected);
                }
                MapOp::Contains(k) => prop_assert_eq!(m.contains_key(&k), model.contains_key(&k)),
            }
            prop_assert_eq!(m.len(), model.len());
        }
        let mut snap = m.snapshot();
        snap.sort_unstable();
        let mut expect: Vec<(u8, u16)> = model.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(snap, expect);
    }
}
