//! Dynamic ↔ static lock-order cross-check.
//!
//! The runtime auditor (`ordered::audit`) records every held-class →
//! newly-acquired-class edge it actually observes. `wsd-lint`'s
//! interprocedural layer predicts the same edge set from source. The
//! invariant checked here: after exercising the pool, queue, map, latch
//! and reactor, **every dynamically observed edge between
//! statically-known classes is in the static prediction** — the static
//! analysis over-approximates the dynamics, so a cycle-free static
//! graph really does rule out lock-order deadlocks at runtime.
//!
//! (The converse — static edges never observed — is fine: static
//! analysis may predict paths a given workload doesn't take.)

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wsd_concurrent::ordered::audit;
use wsd_concurrent::{
    CountDownLatch, FifoQueue, OrderedMutex, PoolConfig, Pump, Reactor, ReactorConfig,
    ReactorConn, ShardedMap, ThreadPool, Wakeup,
};

/// Minimal poll-driven connection so the reactor loop runs a full
/// register → pump → dispatch → deregister cycle.
struct TickConn {
    served: Arc<AtomicUsize>,
}

impl ReactorConn for TickConn {
    fn install_wakeup(&mut self, _hook: Wakeup) {}

    fn needs_poll(&self) -> bool {
        true
    }

    fn pump(&mut self) -> Pump {
        if self.served.load(Ordering::SeqCst) == 0 {
            Pump::Ready
        } else {
            Pump::Closed
        }
    }

    fn handle(&mut self) -> bool {
        self.served.fetch_add(1, Ordering::SeqCst);
        false
    }
}

fn exercise_everything() {
    // Pool + queue: workers pushing/popping through fifo_queue.state
    // while thread_pool.handles manages worker lifecycles.
    let pool = Arc::new(ThreadPool::new(PoolConfig::fixed("xcheck", 2)).unwrap());
    let queue: Arc<FifoQueue<u32>> = Arc::new(FifoQueue::bounded(8));
    let latch = Arc::new(CountDownLatch::new(2));
    for i in 0..2u32 {
        let q = Arc::clone(&queue);
        let l = Arc::clone(&latch);
        let _ = pool.execute(move || {
            q.push(i).unwrap();
            l.count_down();
        });
    }
    latch.wait();
    assert!(queue.pop().is_ok() && queue.pop().is_ok());

    // Sharded map: per-shard rwlocks.
    let map: ShardedMap<u32, u32> = ShardedMap::new();
    for i in 0..32 {
        map.insert(i, i * 2);
    }

    // Reactor: event loop (reactor.state) + lifecycle (reactor.thread).
    let reactor = Reactor::start(
        ReactorConfig::new("xcheck-reactor").poll_interval(Duration::from_millis(1)),
        Arc::clone(&pool),
    );
    let served = Arc::new(AtomicUsize::new(0));
    reactor.register(TickConn {
        served: Arc::clone(&served),
    });
    for _ in 0..500 {
        if served.load(Ordering::SeqCst) > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(served.load(Ordering::SeqCst) > 0, "reactor never dispatched");
    reactor.shutdown();
    pool.shutdown();
}

#[test]
fn dynamic_edges_are_a_subset_of_the_static_prediction() {
    if !cfg!(debug_assertions) {
        return; // the dynamic auditor is compiled out in release builds
    }
    exercise_everything();

    // Prove the instrument itself records nesting: two test-local
    // classes acquired nested must show up as an edge. (The workspace
    // substrate never nests Ordered acquisitions — that's the point —
    // so without this the subset check below could pass vacuously even
    // if the auditor were broken.)
    let outer = OrderedMutex::new("xcheck.outer", 0u8);
    let inner = OrderedMutex::new("xcheck.inner", 0u8);
    {
        let _a = outer.lock();
        let _b = inner.lock();
    }
    let dynamic = audit::edges();
    assert!(
        dynamic.contains(&("xcheck.outer", "xcheck.inner")),
        "auditor failed to record the deliberate nested acquisition: {dynamic:?}"
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let wa = wsd_lint::analyze_workspace(root, false).expect("static analysis");
    let static_classes: BTreeSet<&str> = wa.facts.classes.iter().map(|s| s.as_str()).collect();
    let static_edges: BTreeSet<(String, String)> = wa
        .lock_edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();

    for (from, to) in &dynamic {
        // Test-local mutexes (xcheck.* above, the auditor's own t1..t7)
        // live in test collateral the static model deliberately
        // excludes; everything else must be predicted.
        if !static_classes.contains(from) || !static_classes.contains(to) {
            continue;
        }
        assert!(
            static_edges.contains(&(from.to_string(), to.to_string())),
            "dynamic edge {from} -> {to} observed at runtime but missing from \
             the static lock-order graph {static_edges:?}"
        );
    }
}
