//! Lock-order auditing: the dynamic companion to `wsd-lint`.
//!
//! `wsd-lint` statically enforces *which* lock types the dispatcher may
//! use; this module dynamically enforces *in what order* it may take
//! them. [`OrderedMutex`] and [`OrderedRwLock`] wrap the parking_lot
//! primitives and, under `debug_assertions` (so: under `cargo test`,
//! zero-cost in release), record every lock-acquisition *attempt* into a
//! process-global order graph keyed by lock *class* (a `&'static str`
//! name). When a thread holding class A attempts class B, the edge A→B
//! is added; if the graph now contains a path B→…→A, two code paths
//! take the same classes in opposite orders — a deadlock waiting for
//! the right interleaving — and the auditor panics immediately with the
//! cycle, instead of letting the test suite hang on the day the
//! schedules collide.
//!
//! Two deliberate choices:
//!
//! * The edge is recorded and checked **before** blocking on the inner
//!   lock, so a genuine deadlock interleaving still reports the cycle
//!   rather than wedging.
//! * Same-class edges (A→A) are skipped: sharded structures like
//!   `ShardedMap` legitimately take several locks of one class, always
//!   guarded by a consistent shard order at the call site.
//!
//! Condvar waits release the inner mutex while parked, so
//! [`OrderedMutexGuard`] exposes `wait`/`wait_timeout`/`wait_until`
//! wrappers that pop and re-push the audit frame around the park.

use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

/// A mutex whose acquisitions participate in lock-order auditing.
///
/// The `name` is the lock's *class*: all instances constructed with the
/// same name are one node in the order graph.
pub struct OrderedMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

/// A reader-writer lock whose acquisitions participate in lock-order
/// auditing. Read and write acquisitions are the same node: a
/// read-after-write inversion deadlocks just as well.
pub struct OrderedRwLock<T> {
    name: &'static str,
    inner: RwLock<T>,
}

/// RAII guard for [`OrderedMutex::lock`]; derefs to `T`.
pub struct OrderedMutexGuard<'a, T> {
    name: &'static str,
    guard: parking_lot::MutexGuard<'a, T>,
}

/// RAII guard for [`OrderedRwLock::read`].
pub struct OrderedReadGuard<'a, T> {
    name: &'static str,
    guard: parking_lot::RwLockReadGuard<'a, T>,
}

/// RAII guard for [`OrderedRwLock::write`].
pub struct OrderedWriteGuard<'a, T> {
    name: &'static str,
    guard: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T> OrderedMutex<T> {
    /// Creates a mutex in lock class `name`.
    pub fn new(name: &'static str, value: T) -> Self {
        Self {
            name,
            inner: Mutex::new(value),
        }
    }

    /// Acquires the lock, recording the acquisition edge first.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if this acquisition creates a cycle in
    /// the global lock-order graph.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        audit::acquire(self.name);
        OrderedMutexGuard {
            name: self.name,
            guard: self.inner.lock(),
        }
    }

    /// Attempts the lock without blocking. A failed try is not an
    /// ordering event; a successful one is recorded like `lock`.
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        audit::acquire(self.name);
        Some(OrderedMutexGuard {
            name: self.name,
            guard,
        })
    }
}

impl<T> OrderedRwLock<T> {
    /// Creates a reader-writer lock in lock class `name`.
    pub fn new(name: &'static str, value: T) -> Self {
        Self {
            name,
            inner: RwLock::new(value),
        }
    }

    /// Acquires a shared read guard (audited like any acquisition).
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        audit::acquire(self.name);
        OrderedReadGuard {
            name: self.name,
            guard: self.inner.read(),
        }
    }

    /// Acquires the exclusive write guard (audited like any acquisition).
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        audit::acquire(self.name);
        OrderedWriteGuard {
            name: self.name,
            guard: self.inner.write(),
        }
    }
}

impl<'a, T> OrderedMutexGuard<'a, T> {
    /// Parks on `cv` until notified. The audit frame is released for
    /// the duration of the park (the mutex is not held while parked).
    pub fn wait(&mut self, cv: &Condvar) {
        audit::release(self.name);
        cv.wait(&mut self.guard);
        audit::acquire(self.name);
    }

    /// Parks on `cv` with a timeout; returns `true` if it timed out.
    pub fn wait_timeout(&mut self, cv: &Condvar, timeout: Duration) -> bool {
        audit::release(self.name);
        let r = cv.wait_timeout(&mut self.guard, timeout).timed_out();
        audit::acquire(self.name);
        r
    }

    /// Parks on `cv` until `deadline`; returns `true` if it timed out.
    pub fn wait_until(&mut self, cv: &Condvar, deadline: Instant) -> bool {
        audit::release(self.name);
        let r = cv.wait_until(&mut self.guard, deadline).timed_out();
        audit::acquire(self.name);
        r
    }
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}
impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}
impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        audit::release(self.name);
    }
}

impl<T> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}
impl<T> Drop for OrderedReadGuard<'_, T> {
    fn drop(&mut self) {
        audit::release(self.name);
    }
}

impl<T> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}
impl<T> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}
impl<T> Drop for OrderedWriteGuard<'_, T> {
    fn drop(&mut self) {
        audit::release(self.name);
    }
}

/// The global order graph and per-thread held stack.
///
/// All functions are no-ops in release builds.
pub mod audit {
    #[cfg(debug_assertions)]
    mod imp {
        use parking_lot::Mutex;
        use std::cell::RefCell;
        use std::collections::{HashMap, HashSet};
        use std::sync::OnceLock;

        /// Directed edges held-class → newly-acquired-class. Guarded by
        /// a plain parking_lot Mutex — the auditor must not audit
        /// itself.
        struct Graph {
            edges: HashMap<&'static str, HashSet<&'static str>>,
        }

        fn graph() -> &'static Mutex<Graph> {
            static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
            GRAPH.get_or_init(|| {
                Mutex::new(Graph {
                    edges: HashMap::new(),
                })
            })
        }

        thread_local! {
            static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        }

        /// Depth-first reachability from `from` to `to` over `edges`.
        fn reaches(
            edges: &HashMap<&'static str, HashSet<&'static str>>,
            from: &'static str,
            to: &'static str,
            path: &mut Vec<&'static str>,
        ) -> bool {
            if from == to {
                path.push(from);
                return true;
            }
            let Some(nexts) = edges.get(from) else {
                return false;
            };
            if path.contains(&from) {
                return false;
            }
            path.push(from);
            for &n in nexts {
                if reaches(edges, n, to, path) {
                    return true;
                }
            }
            path.pop();
            false
        }

        pub fn acquire(name: &'static str) {
            let held: Vec<&'static str> =
                HELD.with(|h| h.borrow().iter().copied().collect());
            // Record edges held→name before blocking on the inner
            // lock, so a real deadlock still reports instead of
            // wedging. Same-class self-edges are shard traffic.
            let new_edges: Vec<&'static str> =
                held.iter().copied().filter(|h| *h != name).collect();
            if !new_edges.is_empty() {
                let mut g = graph().lock();
                for h in new_edges {
                    if g.edges.entry(h).or_default().insert(name) {
                        // New edge: does name now reach h back?
                        let mut path = Vec::new();
                        if reaches(&g.edges, name, h, &mut path) {
                            let mut cycle: Vec<&str> = path;
                            cycle.push(name);
                            panic!(
                                "lock-order cycle: acquiring `{name}` while holding `{h}`, \
                                 but an existing path runs {:?} — two code paths take these \
                                 lock classes in opposite orders (deadlock potential)",
                                cycle
                            );
                        }
                    }
                }
            }
            HELD.with(|hd| hd.borrow_mut().push(name));
        }

        pub fn release(name: &'static str) {
            HELD.with(|h| {
                let mut v = h.borrow_mut();
                // Pop the most recent frame of this class (guards can
                // drop out of stack order; class-match is sufficient).
                if let Some(pos) = v.iter().rposition(|x| *x == name) {
                    v.remove(pos);
                }
            });
        }

        /// Snapshot of the recorded edge set, for tests/diagnostics.
        pub fn edges() -> Vec<(&'static str, &'static str)> {
            let g = graph().lock();
            let mut out: Vec<(&'static str, &'static str)> = g
                .edges
                .iter()
                .flat_map(|(k, vs)| vs.iter().map(move |v| (*k, *v)))
                .collect();
            out.sort();
            out
        }
    }

    /// Records an acquisition attempt of lock class `name` by this
    /// thread; panics (debug builds) on a lock-order cycle.
    pub fn acquire(name: &'static str) {
        #[cfg(debug_assertions)]
        imp::acquire(name);
        #[cfg(not(debug_assertions))]
        let _ = name;
    }

    /// Records the release of lock class `name` by this thread.
    pub fn release(name: &'static str) {
        #[cfg(debug_assertions)]
        imp::release(name);
        #[cfg(not(debug_assertions))]
        let _ = name;
    }

    /// The recorded acquisition-order edges (debug builds; empty in
    /// release). Sorted for stable assertions.
    pub fn edges() -> Vec<(&'static str, &'static str)> {
        #[cfg(debug_assertions)]
        {
            imp::edges()
        }
        #[cfg(not(debug_assertions))]
        {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // Lock-class names in these tests are unique per test (the graph is
    // process-global and tests share one process).

    #[test]
    fn consistent_order_is_fine() {
        let a = OrderedMutex::new("t1.a", 1u32);
        let b = OrderedMutex::new("t1.b", 2u32);
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(*ga + *gb, 3);
        }
        assert!(audit::edges().contains(&("t1.a", "t1.b")));
    }

    #[test]
    fn inverted_order_panics_with_cycle() {
        let a = Arc::new(OrderedMutex::new("t2.a", ()));
        let b = Arc::new(OrderedMutex::new("t2.b", ()));
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // b -> a closes the cycle
        }));
        let err = r.expect_err("inversion must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("lock-order cycle"), "got: {msg}");
        assert!(msg.contains("t2.a") && msg.contains("t2.b"));
        // The failed acquire left a stale frame on this thread's held
        // stack (the panic unwound before the guard existed); clear it
        // so sibling tests on this thread aren't polluted.
        audit::release("t2.b");
    }

    #[test]
    fn transitive_cycle_detected() {
        let a = Arc::new(OrderedMutex::new("t3.a", ()));
        let b = Arc::new(OrderedMutex::new("t3.b", ()));
        let c = Arc::new(OrderedMutex::new("t3.c", ()));
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _gc = c.lock();
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gc = c.lock();
            let _ga = a.lock(); // c -> a closes a -> b -> c
        }));
        assert!(r.is_err(), "transitive inversion must panic");
        audit::release("t3.c");
    }

    #[test]
    fn same_class_reentrancy_across_instances_allowed() {
        // Sharded-map pattern: many locks of one class.
        let shards: Vec<OrderedRwLock<u32>> =
            (0..4).map(|i| OrderedRwLock::new("t4.shard", i)).collect();
        let guards: Vec<_> = shards.iter().map(|s| s.read()).collect();
        assert_eq!(guards.iter().map(|g| **g).sum::<u32>(), 6);
    }

    #[test]
    fn rwlock_read_write_audited() {
        let m = OrderedMutex::new("t5.m", ());
        let rw = OrderedRwLock::new("t5.rw", 0u32);
        {
            let _g = m.lock();
            let mut w = rw.write();
            *w += 1;
        }
        {
            let _g = m.lock();
            let r = rw.read();
            assert_eq!(*r, 1);
        }
        assert!(audit::edges().contains(&("t5.m", "t5.rw")));
    }

    #[test]
    fn condvar_wait_releases_audit_frame() {
        let m = Arc::new(OrderedMutex::new("t6.m", false));
        let cv = Arc::new(Condvar::new());
        let other = Arc::new(OrderedMutex::new("t6.other", ()));

        let m2 = Arc::clone(&m);
        let cv2 = Arc::clone(&cv);
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = true;
            drop(g);
            cv2.notify_all();
        });

        let mut g = m.lock();
        while !*g {
            let timed_out = g.wait_timeout(&cv, Duration::from_secs(5));
            assert!(!timed_out, "signal should arrive");
        }
        drop(g);
        h.join().expect("signaller");
        // After the wait the frame was re-acquired and released on
        // drop; taking an unrelated lock now must not see t6.m held.
        let _o = other.lock();
        assert!(!audit::edges().contains(&("t6.m", "t6.other")));
    }

    #[test]
    fn try_lock_success_is_audited_failure_is_not() {
        let m = OrderedMutex::new("t7.m", 5u32);
        {
            let g = m.try_lock().expect("uncontended");
            assert_eq!(*g, 5);
            assert!(m.try_lock().is_none(), "held by us");
        }
        assert!(m.try_lock().is_some());
    }
}
