//! Sharded concurrent hash map.
//!
//! The paper's registry (logical → physical service addresses) and the
//! WS-MsgBox mailbox table are both backed by the Concurrent Java Library's
//! `ConcurrentHashMap`. This is the same design idea: the key space is
//! split across `S` independent shards, each guarded by its own
//! reader-writer lock, so lookups from many dispatcher threads proceed in
//! parallel and writers only contend within one shard.

use std::borrow::Borrow;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::ordered::OrderedRwLock;

/// A concurrent hash map sharded across independent `RwLock<HashMap>`s.
///
/// Values are returned by clone, so `V` is typically an `Arc<...>` or a
/// small value type. All operations are linearizable per key.
pub struct ShardedMap<K, V> {
    shards: Box<[OrderedRwLock<HashMap<K, V>>]>,
    mask: usize,
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    /// Default shard count: enough to keep 32 dispatcher threads from
    /// contending in practice.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Creates a map with [`Self::DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Creates a map with `shards` shards (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be non-zero");
        let n = shards.next_power_of_two();
        let shards = (0..n)
            .map(|_| OrderedRwLock::new("sharded_map.shard", HashMap::new()))
            .collect();
        ShardedMap {
            shards,
            mask: n - 1,
        }
    }

    fn shard_for<Q>(&self, key: &Q) -> &OrderedRwLock<HashMap<K, V>>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Number of shards the key space is split across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Inserts a key-value pair, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard_for(&key).write().insert(key, value)
    }

    /// Inserts only if the key is absent. Returns `Err` with the rejected
    /// value (and leaves the existing mapping untouched) if present.
    pub fn insert_if_absent(&self, key: K, value: V) -> Result<(), V> {
        let mut shard = self.shard_for(&key).write();
        if let std::collections::hash_map::Entry::Vacant(e) = shard.entry(key) {
            e.insert(value);
            Ok(())
        } else {
            Err(value)
        }
    }

    /// Returns a clone of the value for `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard_for(key).read().get(key).cloned()
    }

    /// Returns the value for `key`, inserting the result of `make` first if
    /// absent. `make` runs under the shard's write lock and is called at
    /// most once.
    pub fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> V {
        let mut shard = self.shard_for(&key).write();
        shard.entry(key).or_insert_with(make).clone()
    }

    /// Applies `f` to the value for `key` under the shard's write lock.
    /// Returns the updated value, or `None` if the key is absent.
    pub fn update<Q>(&self, key: &Q, f: impl FnOnce(&mut V)) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut shard = self.shard_for(key).write();
        let v = shard.get_mut(key)?;
        f(v);
        Some(v.clone())
    }

    /// Removes `key`, returning its value if present.
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard_for(key).write().remove(key)
    }

    /// Whether `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard_for(key).read().contains_key(key)
    }

    /// Total number of entries (sums shard sizes; a point-in-time value).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Removes every entry.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.write().clear();
        }
    }

    /// Removes entries for which `keep` returns `false`.
    pub fn retain(&self, mut keep: impl FnMut(&K, &V) -> bool) {
        for s in self.shards.iter() {
            s.write().retain(|k, v| keep(k, v));
        }
    }

    /// Calls `f` on every entry. Shards are visited one at a time under
    /// their read lock; do not call map methods from inside `f`.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for s in self.shards.iter() {
            for (k, v) in s.read().iter() {
                f(k, v);
            }
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedMap<K, V> {
    /// A point-in-time snapshot of all entries.
    pub fn snapshot(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// A point-in-time snapshot of all keys.
    pub fn keys(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, _| out.push(k.clone()));
        out
    }
}

impl<K, V> std::fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn insert_get_remove() {
        let m = ShardedMap::new();
        assert_eq!(m.insert("a".to_string(), 1), None);
        assert_eq!(m.insert("a".to_string(), 2), Some(1));
        assert_eq!(m.get("a"), Some(2));
        assert_eq!(m.remove("a"), Some(2));
        assert_eq!(m.get("a"), None);
        assert!(m.is_empty());
    }

    #[test]
    fn insert_if_absent_respects_existing() {
        let m = ShardedMap::new();
        assert!(m.insert_if_absent("k".to_string(), 1).is_ok());
        assert_eq!(m.insert_if_absent("k".to_string(), 2), Err(2));
        assert_eq!(m.get("k"), Some(1));
    }

    #[test]
    fn get_or_insert_with_calls_once() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        let mut calls = 0;
        let v = m.get_or_insert_with(7, || {
            calls += 1;
            70
        });
        assert_eq!(v, 70);
        let v = m.get_or_insert_with(7, || {
            calls += 1;
            99
        });
        assert_eq!(v, 70);
        assert_eq!(calls, 1);
    }

    #[test]
    fn update_mutates_in_place() {
        let m = ShardedMap::new();
        m.insert(1u8, 10u32);
        assert_eq!(m.update(&1, |v| *v += 5), Some(15));
        assert_eq!(m.get(&1), Some(15));
        assert_eq!(m.update(&2, |v| *v += 5), None);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let m: ShardedMap<u8, u8> = ShardedMap::with_shards(5);
        assert_eq!(m.shard_count(), 8);
    }

    #[test]
    fn retain_filters() {
        let m = ShardedMap::new();
        for i in 0..100u32 {
            m.insert(i, i);
        }
        m.retain(|_, v| v % 2 == 0);
        assert_eq!(m.len(), 50);
        assert!(m.contains_key(&2));
        assert!(!m.contains_key(&3));
    }

    #[test]
    fn snapshot_has_all_entries() {
        let m = ShardedMap::new();
        for i in 0..32u32 {
            m.insert(i, i * 10);
        }
        let mut snap = m.snapshot();
        snap.sort_unstable();
        assert_eq!(snap.len(), 32);
        assert_eq!(snap[5], (5, 50));
    }

    #[test]
    fn concurrent_inserts_all_visible() {
        let m = Arc::new(ShardedMap::new());
        let mut hs = Vec::new();
        for t in 0..8usize {
            let m = Arc::clone(&m);
            hs.push(thread::spawn(move || {
                for i in 0..250usize {
                    m.insert(t * 250 + i, t);
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 2000);
        for k in 0..2000usize {
            assert_eq!(m.get(&k), Some(k / 250));
        }
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let m = Arc::new(ShardedMap::new());
        for i in 0..64u32 {
            m.insert(i, 0u64);
        }
        let mut hs = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            hs.push(thread::spawn(move || {
                for i in 0..64u32 {
                    for _ in 0..100 {
                        m.update(&i, |v| *v += 1);
                    }
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        for i in 0..64u32 {
            assert_eq!(m.get(&i), Some(400));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_shards_panics() {
        let _ = ShardedMap::<u8, u8>::with_shards(0);
    }
}
