//! An event-driven connection multiplexer.
//!
//! The paper's dispatchers (and its WS-MsgBox) pin one thread per open
//! connection for the connection's whole lifetime — the architecture
//! that produced the ~50-client `OutOfMemoryError`. A [`Reactor`]
//! inverts that: it *owns* every registered connection, a single event
//! loop pumps whichever connections have bytes ready, and only complete
//! requests are dispatched to a bounded handler [`ThreadPool`]. Thread
//! count scales with in-flight *requests*, not open *sockets*.
//!
//! The reactor is transport-agnostic: anything implementing
//! [`ReactorConn`] can be registered. Connections that can deliver
//! wakeups (in-process pipes, an OS poller) drive the loop directly;
//! ones that cannot ([`ReactorConn::needs_poll`]) are pumped on a
//! fallback tick.
//!
//! Backpressure is structural: while a connection is checked out to a
//! handler (its response still being computed/written) it is simply not
//! polled, so pipelined bytes accumulate in the transport's bounded
//! buffer exactly like an unread TCP window. When the handler returns
//! the connection, the reactor re-pumps it once to pick up anything that
//! arrived meanwhile.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Condvar;
use wsd_telemetry::{Counter, Gauge, Histogram, Scope};

use crate::ordered::OrderedMutex;
use crate::pool::ThreadPool;

/// What a [`ReactorConn::pump`] pass concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pump {
    /// No complete request yet; park and wait for more bytes.
    Idle,
    /// At least one complete request is buffered; dispatch to a handler.
    Ready,
    /// EOF or protocol error; deregister and drop the connection.
    Closed,
}

/// Wakeup hook a connection invokes when it may have become readable.
pub type Wakeup = Arc<dyn Fn() + Send + Sync>;

/// A connection the reactor can multiplex.
pub trait ReactorConn: Send + 'static {
    /// Installs the reactor's wakeup hook. Implementations wire it to
    /// their transport's readiness notification (and may ignore it if
    /// [`needs_poll`](Self::needs_poll) is `true`).
    fn install_wakeup(&mut self, hook: Wakeup);

    /// Whether this connection cannot deliver wakeups and must be pumped
    /// on the fallback tick.
    fn needs_poll(&self) -> bool {
        false
    }

    /// Ingests whatever bytes are ready *without blocking* and reports
    /// the connection's state. Runs on the reactor thread.
    fn pump(&mut self) -> Pump;

    /// Processes the buffered complete request(s) and writes the
    /// response(s); blocking is fine — this runs on the handler pool.
    /// Returns `false` when the connection should be closed (protocol
    /// `Connection: close`, EOF, write failure).
    fn handle(&mut self) -> bool;

    /// Whether a partially-received request is parked in this
    /// connection's buffer (slow sender / slow-loris telemetry).
    fn has_partial(&self) -> bool {
        false
    }
}

/// Reactor construction parameters.
pub struct ReactorConfig {
    /// Event-loop thread name.
    pub name: String,
    /// Fallback tick for connections without wakeup support, and the
    /// idle wait granularity of the loop.
    pub poll_interval: Duration,
    /// Scope the reactor's instruments live under: `open_conns` and
    /// `parked_partials` gauges, a `loop_us` histogram, `dispatches` and
    /// `wakeups` counters.
    pub telemetry: Scope,
}

impl ReactorConfig {
    /// Defaults: 10 ms fallback tick, no telemetry.
    pub fn new(name: impl Into<String>) -> Self {
        ReactorConfig {
            name: name.into(),
            poll_interval: Duration::from_millis(10),
            telemetry: Scope::noop(),
        }
    }

    /// Sets the fallback poll tick.
    pub fn poll_interval(mut self, d: Duration) -> Self {
        self.poll_interval = d;
        self
    }

    /// Attaches a telemetry scope.
    pub fn telemetry(mut self, scope: Scope) -> Self {
        self.telemetry = scope;
        self
    }
}

struct ReactorTelemetry {
    open_conns: Gauge,
    parked_partials: Gauge,
    loop_us: Histogram,
    dispatches: Counter,
    wakeups: Counter,
}

impl ReactorTelemetry {
    fn new(scope: &Scope) -> Self {
        ReactorTelemetry {
            open_conns: scope.gauge("open_conns"),
            parked_partials: scope.gauge("parked_partials"),
            loop_us: scope.histogram("loop_us"),
            dispatches: scope.counter("dispatches"),
            wakeups: scope.counter("wakeups"),
        }
    }
}

/// A registered connection is either parked (reactor-owned, pumpable) or
/// checked out to a handler.
enum Slot<C> {
    Parked { conn: C, partial: bool },
    Busy,
}

struct State<C> {
    conns: HashMap<u64, Slot<C>>,
    ready: VecDeque<u64>,
}

struct Shared<C: ReactorConn> {
    state: OrderedMutex<State<C>>,
    cv: Condvar,
    handlers: Arc<ThreadPool>,
    stop: AtomicBool,
    next_id: AtomicU64,
    poll_interval: Duration,
    tele: ReactorTelemetry,
}

impl<C: ReactorConn> Shared<C> {
    /// Returns a checked-out connection after its handler pass. Always
    /// re-queues a kept connection for one more pump, so bytes that
    /// arrived while it was busy are picked up even though its wakeup
    /// fired into a `Busy` slot.
    fn reinsert(&self, id: u64, conn: C, keep: bool) {
        let mut st = self.state.lock();
        if st.conns.remove(&id).is_none() {
            // Deregistered while busy (shutdown drained us): just drop.
            return;
        }
        if !keep || self.stop.load(Ordering::Acquire) {
            drop(st);
            self.tele.open_conns.dec();
            return;
        }
        let partial = conn.has_partial();
        if partial {
            self.tele.parked_partials.inc();
        }
        st.conns.insert(id, Slot::Parked { conn, partial });
        st.ready.push_back(id);
        drop(st);
        self.cv.notify_one();
    }
}

/// An event-driven connection multiplexer over a handler [`ThreadPool`].
pub struct Reactor<C: ReactorConn> {
    shared: Arc<Shared<C>>,
    thread: OrderedMutex<Option<thread::JoinHandle<()>>>,
}

impl<C: ReactorConn> Reactor<C> {
    /// Starts the event loop. `handlers` is the pool complete requests
    /// are dispatched to (the dispatcher's existing `CxThread` pool); the
    /// reactor itself adds exactly one thread.
    pub fn start(config: ReactorConfig, handlers: Arc<ThreadPool>) -> Arc<Reactor<C>> {
        let shared = Arc::new(Shared {
            state: OrderedMutex::new("reactor.state", State {
                conns: HashMap::new(),
                ready: VecDeque::new(),
            }),
            cv: Condvar::new(),
            handlers,
            stop: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            poll_interval: config.poll_interval,
            tele: ReactorTelemetry::new(&config.telemetry),
        });
        let shared2 = Arc::clone(&shared);
        let thread = thread::Builder::new()
            .name(config.name)
            .spawn(move || run(&shared2))
            .expect("reactor thread");
        Arc::new(Reactor {
            shared,
            thread: OrderedMutex::new("reactor.thread", Some(thread)),
        })
    }

    /// Takes ownership of `conn`: installs the wakeup hook, parks it,
    /// and schedules an initial pump (bytes may already be buffered).
    pub fn register(&self, mut conn: C) {
        if self.shared.stop.load(Ordering::Acquire) {
            return; // dropping conn closes it
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let weak = Arc::downgrade(&self.shared);
        conn.install_wakeup(Arc::new(move || {
            if let Some(shared) = weak.upgrade() {
                shared.tele.wakeups.inc();
                let mut st = shared.state.lock();
                st.ready.push_back(id);
                drop(st);
                shared.cv.notify_one();
            }
        }));
        let mut st = self.shared.state.lock();
        st.conns.insert(
            id,
            Slot::Parked {
                conn,
                partial: false,
            },
        );
        st.ready.push_back(id);
        drop(st);
        self.shared.tele.open_conns.inc();
        self.shared.cv.notify_one();
    }

    /// Connections currently registered (parked or in a handler).
    pub fn open_connections(&self) -> usize {
        self.shared.state.lock().conns.len()
    }

    /// Parked connections holding a partial request.
    pub fn parked_partials(&self) -> usize {
        self.shared.tele.parked_partials.get().max(0) as usize
    }

    /// Stops the loop, joins the reactor thread and drops every parked
    /// connection (closing its transport). Connections checked out to
    /// handlers are dropped when their handler returns; the caller is
    /// responsible for shutting the handler pool down afterwards.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        // Take the handle out first: joining while `reactor.thread` is
        // held would let a concurrent shutdown() block on the lock for
        // the whole join (and the if-let scrutinee temporary holds the
        // guard through the block).
        let handle = self.thread.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        // Collect parked conns under the lock but drop them outside it: a
        // conn's Drop may fire its own wakeup hook, which locks the state.
        let mut dropped: Vec<C> = Vec::new();
        {
            let mut st = self.shared.state.lock();
            let ids: Vec<u64> = st.conns.keys().copied().collect();
            for id in ids {
                if matches!(st.conns.get(&id), Some(Slot::Parked { .. })) {
                    if let Some(Slot::Parked { conn, partial }) = st.conns.remove(&id) {
                        if partial {
                            self.shared.tele.parked_partials.dec();
                        }
                        self.shared.tele.open_conns.dec();
                        dropped.push(conn);
                    }
                }
                // Busy: the handler's reinsert observes `stop` (or the
                // removed entry) and finishes the bookkeeping.
            }
            st.ready.clear();
        }
        drop(dropped);
    }
}

impl<C: ReactorConn> Drop for Reactor<C> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<C: ReactorConn> std::fmt::Debug for Reactor<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("open", &self.open_connections())
            .finish()
    }
}

fn run<C: ReactorConn>(shared: &Arc<Shared<C>>) {
    loop {
        let mut st = shared.state.lock();
        while st.ready.is_empty() {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            let timed_out = st.wait_timeout(&shared.cv, shared.poll_interval);
            if timed_out {
                // Fallback tick: pump connections that cannot wake us.
                let ids: Vec<u64> = st
                    .conns
                    .iter()
                    .filter(|(_, slot)| matches!(slot, Slot::Parked { conn, .. } if conn.needs_poll()))
                    .map(|(id, _)| *id)
                    .collect();
                st.ready.extend(ids);
            }
        }
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let Some(id) = st.ready.pop_front() else {
            drop(st);
            continue;
        };
        let taken = match st.conns.get_mut(&id) {
            Some(slot @ Slot::Parked { .. }) => match std::mem::replace(slot, Slot::Busy) {
                Slot::Parked { conn, partial } => Some((conn, partial)),
                Slot::Busy => unreachable!("matched Parked"),
            },
            // Busy (wakeup raced a handler — reinsert re-queues) or gone.
            Some(Slot::Busy) | None => None,
        };
        drop(st);
        let Some((mut conn, was_partial)) = taken else {
            continue;
        };
        // wsd-lint: allow(raw-clock): loop_us measures the reactor's own real scheduling latency; routing it through a virtual clock would hide the thing it measures
        let t0 = Instant::now();
        let verdict = conn.pump();
        match verdict {
            Pump::Idle => {
                let partial = conn.has_partial();
                match (was_partial, partial) {
                    // wsd-lint: allow(gauge-balance): parked_partials is cross-iteration connection state — the dec fires on a later pump or close of the same connection, not on this path
                    (false, true) => shared.tele.parked_partials.inc(),
                    (true, false) => shared.tele.parked_partials.dec(),
                    _ => {}
                }
                shared
                    .state
                    .lock()
                    .conns
                    .insert(id, Slot::Parked { conn, partial });
            }
            Pump::Closed => {
                shared.state.lock().conns.remove(&id);
                if was_partial {
                    shared.tele.parked_partials.dec();
                }
                shared.tele.open_conns.dec();
                drop(conn);
            }
            Pump::Ready => {
                if was_partial {
                    shared.tele.parked_partials.dec();
                }
                shared.tele.dispatches.inc();
                let shared2 = Arc::clone(shared);
                let submitted = shared.handlers.execute(move || {
                    let keep = conn.handle();
                    shared2.reinsert(id, conn, keep);
                });
                if submitted.is_err() {
                    // Pool shut down: the closure (and conn) were dropped.
                    shared.state.lock().conns.remove(&id);
                    shared.tele.open_conns.dec();
                }
            }
        }
        shared.tele.loop_us.record(t0.elapsed().as_micros() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicUsize;

    /// A scripted connection: `pending` complete requests to serve,
    /// `partial` bytes parked, `closed` once the peer hung up.
    struct FakeConn {
        shared: Arc<FakeShared>,
    }

    struct FakeShared {
        pending: AtomicUsize,
        handled: AtomicUsize,
        partial: AtomicBool,
        closed: AtomicBool,
        keep: AtomicBool,
        wake: Mutex<Option<Wakeup>>,
    }

    impl FakeShared {
        fn new() -> Arc<Self> {
            Arc::new(FakeShared {
                pending: AtomicUsize::new(0),
                handled: AtomicUsize::new(0),
                partial: AtomicBool::new(false),
                closed: AtomicBool::new(false),
                keep: AtomicBool::new(true),
                wake: Mutex::new(None),
            })
        }

        fn send(&self, n: usize) {
            self.pending.fetch_add(n, Ordering::SeqCst);
            self.wake();
        }

        fn close(&self) {
            self.closed.store(true, Ordering::SeqCst);
            self.wake();
        }

        fn wake(&self) {
            let hook = self.wake.lock().clone();
            if let Some(h) = hook {
                h();
            }
        }
    }

    impl ReactorConn for FakeConn {
        fn install_wakeup(&mut self, hook: Wakeup) {
            *self.shared.wake.lock() = Some(hook);
        }

        fn pump(&mut self) -> Pump {
            if self.shared.pending.load(Ordering::SeqCst) > 0 {
                Pump::Ready
            } else if self.shared.closed.load(Ordering::SeqCst) {
                Pump::Closed
            } else {
                Pump::Idle
            }
        }

        fn handle(&mut self) -> bool {
            let n = self.shared.pending.swap(0, Ordering::SeqCst);
            self.shared.handled.fetch_add(n, Ordering::SeqCst);
            self.shared.keep.load(Ordering::SeqCst)
        }

        fn has_partial(&self) -> bool {
            self.shared.partial.load(Ordering::SeqCst)
        }
    }

    fn rig() -> (Arc<ThreadPool>, ReactorConfig) {
        let pool = Arc::new(ThreadPool::new(PoolConfig::fixed("handler", 2)).unwrap());
        (pool, ReactorConfig::new("reactor-test"))
    }

    fn wait_until(mut cond: impl FnMut() -> bool) -> bool {
        for _ in 0..500 {
            if cond() {
                return true;
            }
            thread::sleep(Duration::from_millis(2));
        }
        false
    }

    #[test]
    fn dispatches_ready_connections_to_handlers() {
        let (pool, cfg) = rig();
        let reactor = Reactor::start(cfg, Arc::clone(&pool));
        let conn = FakeShared::new();
        reactor.register(FakeConn {
            shared: Arc::clone(&conn),
        });
        assert_eq!(reactor.open_connections(), 1);
        conn.send(3);
        assert!(wait_until(|| conn.handled.load(Ordering::SeqCst) == 3));
        // Connection survives and handles a second burst.
        conn.send(2);
        assert!(wait_until(|| conn.handled.load(Ordering::SeqCst) == 5));
        reactor.shutdown();
        assert_eq!(reactor.open_connections(), 0);
    }

    #[test]
    fn peer_close_deregisters() {
        let (pool, cfg) = rig();
        let reactor = Reactor::start(cfg, Arc::clone(&pool));
        let conn = FakeShared::new();
        reactor.register(FakeConn {
            shared: Arc::clone(&conn),
        });
        conn.close();
        assert!(wait_until(|| reactor.open_connections() == 0));
        reactor.shutdown();
    }

    #[test]
    fn handler_requested_close_deregisters() {
        let (pool, cfg) = rig();
        let reactor = Reactor::start(cfg, Arc::clone(&pool));
        let conn = FakeShared::new();
        conn.keep.store(false, Ordering::SeqCst);
        reactor.register(FakeConn {
            shared: Arc::clone(&conn),
        });
        conn.send(1);
        assert!(wait_until(|| conn.handled.load(Ordering::SeqCst) == 1));
        assert!(wait_until(|| reactor.open_connections() == 0));
        reactor.shutdown();
    }

    #[test]
    fn partial_gauge_tracks_parked_partials() {
        let reg = wsd_telemetry::Registry::new();
        let pool = Arc::new(ThreadPool::new(PoolConfig::fixed("handler", 2)).unwrap());
        let reactor = Reactor::start(
            ReactorConfig::new("reactor-test").telemetry(reg.scope("r")),
            Arc::clone(&pool),
        );
        let conn = FakeShared::new();
        reactor.register(FakeConn {
            shared: Arc::clone(&conn),
        });
        conn.partial.store(true, Ordering::SeqCst);
        conn.wake(); // pump -> Idle with a partial buffered
        assert!(wait_until(|| reactor.parked_partials() == 1));
        conn.partial.store(false, Ordering::SeqCst);
        conn.close();
        assert!(wait_until(|| reactor.open_connections() == 0));
        assert_eq!(reactor.parked_partials(), 0);
        reactor.shutdown();
        let snap = reg.snapshot();
        assert!(snap.counter("r.wakeups") >= 2);
        let (open, _) = match snap.get("r.open_conns") {
            Some(wsd_telemetry::MetricValue::Gauge { value, peak }) => (*value, *peak),
            other => panic!("expected gauge, got {other:?}"),
        };
        assert_eq!(open, 0);
    }

    #[test]
    fn needs_poll_connections_are_ticked() {
        struct PollConn {
            shared: Arc<FakeShared>,
        }
        impl ReactorConn for PollConn {
            fn install_wakeup(&mut self, _hook: Wakeup) {} // unsupported
            fn needs_poll(&self) -> bool {
                true
            }
            fn pump(&mut self) -> Pump {
                if self.shared.pending.load(Ordering::SeqCst) > 0 {
                    Pump::Ready
                } else {
                    Pump::Idle
                }
            }
            fn handle(&mut self) -> bool {
                let n = self.shared.pending.swap(0, Ordering::SeqCst);
                self.shared.handled.fetch_add(n, Ordering::SeqCst);
                true
            }
        }
        let pool = Arc::new(ThreadPool::new(PoolConfig::fixed("handler", 1)).unwrap());
        let reactor = Reactor::start(
            ReactorConfig::new("tick").poll_interval(Duration::from_millis(2)),
            Arc::clone(&pool),
        );
        let conn = FakeShared::new();
        reactor.register(PollConn {
            shared: Arc::clone(&conn),
        });
        // No wakeup is ever delivered; only the tick can find this.
        conn.pending.store(4, Ordering::SeqCst);
        assert!(wait_until(|| conn.handled.load(Ordering::SeqCst) == 4));
        reactor.shutdown();
    }

    #[test]
    fn shutdown_drops_parked_connections() {
        let (pool, cfg) = rig();
        let reactor = Reactor::start(cfg, Arc::clone(&pool));
        for _ in 0..8 {
            reactor.register(FakeConn {
                shared: FakeShared::new(),
            });
        }
        assert!(wait_until(|| reactor.open_connections() == 8));
        reactor.shutdown();
        assert_eq!(reactor.open_connections(), 0);
        pool.shutdown();
    }

    #[test]
    fn register_after_shutdown_drops_connection() {
        let (pool, cfg) = rig();
        let reactor = Reactor::start(cfg, Arc::clone(&pool));
        reactor.shutdown();
        reactor.register(FakeConn {
            shared: FakeShared::new(),
        });
        assert_eq!(reactor.open_connections(), 0);
    }

    #[test]
    fn many_connections_few_handler_threads() {
        let pool = Arc::new(ThreadPool::new(PoolConfig::fixed("handler", 2)).unwrap());
        let reactor = Reactor::start(ReactorConfig::new("many"), Arc::clone(&pool));
        let conns: Vec<Arc<FakeShared>> = (0..64).map(|_| FakeShared::new()).collect();
        for c in &conns {
            reactor.register(FakeConn {
                shared: Arc::clone(c),
            });
        }
        for c in &conns {
            c.send(1);
        }
        assert!(wait_until(|| conns
            .iter()
            .all(|c| c.handled.load(Ordering::SeqCst) == 1)));
        assert_eq!(reactor.open_connections(), 64);
        // Still exactly 2 handler threads + 1 reactor thread.
        assert_eq!(pool.worker_count(), 2);
        reactor.shutdown();
    }
}
