//! Count-down latch: a one-shot barrier the load generator uses to release
//! all ramped-up clients at once and to wait for a run to drain.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Condvar;

use crate::ordered::OrderedMutex;

/// A one-shot barrier initialized with a count; waiters block until the
/// count reaches zero.
#[derive(Clone)]
pub struct CountDownLatch {
    inner: Arc<Inner>,
}

struct Inner {
    count: OrderedMutex<usize>,
    zero: Condvar,
}

impl CountDownLatch {
    /// Creates a latch that opens after `count` calls to
    /// [`count_down`](Self::count_down). A zero count is already open.
    pub fn new(count: usize) -> Self {
        CountDownLatch {
            inner: Arc::new(Inner {
                count: OrderedMutex::new("latch.count", count),
                zero: Condvar::new(),
            }),
        }
    }

    /// Decrements the count, waking all waiters when it reaches zero.
    /// Counting down past zero is a no-op.
    pub fn count_down(&self) {
        let mut c = self.inner.count.lock();
        if *c > 0 {
            *c -= 1;
            if *c == 0 {
                drop(c);
                self.inner.zero.notify_all();
            }
        }
    }

    /// Blocks until the count reaches zero.
    pub fn wait(&self) {
        let mut c = self.inner.count.lock();
        while *c > 0 {
            c.wait(&self.inner.zero);
        }
    }

    /// Blocks until the count reaches zero or `timeout` elapses. Returns
    /// `true` if the latch opened.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        // wsd-lint: allow(raw-clock): condvar parking needs a monotonic Instant deadline; no simulated time crosses this boundary
        let deadline = std::time::Instant::now() + timeout;
        let mut c = self.inner.count.lock();
        while *c > 0 {
            if c.wait_until(&self.inner.zero, deadline) {
                return *c == 0;
            }
        }
        true
    }

    /// The current count.
    pub fn count(&self) -> usize {
        *self.inner.count.lock()
    }
}

impl std::fmt::Debug for CountDownLatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountDownLatch")
            .field("count", &self.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn zero_latch_is_open() {
        let l = CountDownLatch::new(0);
        l.wait();
        assert!(l.wait_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn opens_after_count_reaches_zero() {
        let l = CountDownLatch::new(3);
        let l2 = l.clone();
        let h = thread::spawn(move || {
            l2.wait();
            true
        });
        l.count_down();
        l.count_down();
        assert_eq!(l.count(), 1);
        l.count_down();
        assert!(h.join().unwrap());
        assert_eq!(l.count(), 0);
    }

    #[test]
    fn count_down_past_zero_is_noop() {
        let l = CountDownLatch::new(1);
        l.count_down();
        l.count_down();
        assert_eq!(l.count(), 0);
    }

    #[test]
    fn wait_timeout_expires() {
        let l = CountDownLatch::new(1);
        assert!(!l.wait_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn many_waiters_released_together() {
        let l = CountDownLatch::new(1);
        let mut hs = Vec::new();
        for _ in 0..8 {
            let l = l.clone();
            hs.push(thread::spawn(move || l.wait()));
        }
        thread::sleep(Duration::from_millis(20));
        l.count_down();
        for h in hs {
            h.join().unwrap();
        }
    }
}
