//! Global thread budget.
//!
//! The paper's WS-MsgBox bug (§4.3.2): the server spawned one thread per
//! incoming message; each Java native thread allocates a fixed stack, so a
//! burst of a few thousand messages raised `OutOfMemoryError` and took the
//! service down. To reproduce that failure mode faithfully — and to prove
//! the redesigned pooled strategy avoids it — thread-spawning components
//! acquire a [`ThreadLease`] from a shared [`ThreadBudget`] before spawning.
//! Exhausting the budget is the Rust stand-in for the JVM's OOM.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use wsd_telemetry::{Counter, Gauge, Scope};

/// Error raised when the budget is exhausted — the analogue of the paper's
/// `OutOfMemoryError` from unbounded native-thread creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetError {
    /// The configured maximum number of concurrently live threads.
    pub limit: usize,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of memory: thread budget of {} native threads exhausted",
            self.limit
        )
    }
}

impl std::error::Error for BudgetError {}

/// A cap on concurrently live threads, shared by every component of one
/// simulated JVM/process.
#[derive(Clone)]
pub struct ThreadBudget {
    inner: Arc<Inner>,
}

struct Inner {
    live: AtomicUsize,
    peak: AtomicUsize,
    denials: AtomicUsize,
    limit: usize,
    tele: OnceLock<BudgetTelemetry>,
}

/// Instruments registered by [`ThreadBudget::bind_telemetry`].
struct BudgetTelemetry {
    live: Gauge,
    acquired: Counter,
    denials: Counter,
}

impl ThreadBudget {
    /// Creates a budget allowing at most `limit` concurrently live threads.
    pub fn new(limit: usize) -> Self {
        ThreadBudget {
            inner: Arc::new(Inner {
                live: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                denials: AtomicUsize::new(0),
                limit,
                tele: OnceLock::new(),
            }),
        }
    }

    /// An effectively unlimited budget (for components that should never
    /// hit the simulated OOM).
    pub fn unlimited() -> Self {
        Self::new(usize::MAX)
    }

    /// Binds telemetry instruments (`live` gauge, `acquired`/`denials`
    /// counters) under `scope`. Only the first bind takes effect; later
    /// calls are ignored.
    pub fn bind_telemetry(&self, scope: &Scope) {
        let _ = self.inner.tele.set(BudgetTelemetry {
            live: scope.gauge("live"),
            acquired: scope.counter("acquired"),
            denials: scope.counter("denials"),
        });
    }

    /// Acquires one thread's worth of budget, or fails with the simulated
    /// out-of-memory error. Dropping the returned lease releases it.
    pub fn try_acquire(&self) -> Result<ThreadLease, BudgetError> {
        let mut cur = self.inner.live.load(Ordering::Relaxed);
        loop {
            if cur >= self.inner.limit {
                self.inner.denials.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = self.inner.tele.get() {
                    t.denials.inc();
                }
                return Err(BudgetError {
                    limit: self.inner.limit,
                });
            }
            match self.inner.live.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(cur + 1, Ordering::Relaxed);
                    if let Some(t) = self.inner.tele.get() {
                        t.live.inc();
                        t.acquired.inc();
                    }
                    return Ok(ThreadLease {
                        budget: self.clone(),
                    });
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Number of currently live leased threads.
    pub fn live(&self) -> usize {
        self.inner.live.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently live leased threads.
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// The configured limit.
    pub fn limit(&self) -> usize {
        self.inner.limit
    }

    /// Number of acquisitions denied because the budget was exhausted.
    pub fn denials(&self) -> usize {
        self.inner.denials.load(Ordering::Relaxed)
    }

    fn release(&self) {
        self.inner.live.fetch_sub(1, Ordering::AcqRel);
        if let Some(t) = self.inner.tele.get() {
            t.live.dec();
        }
    }
}

impl std::fmt::Debug for ThreadBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadBudget")
            .field("live", &self.live())
            .field("peak", &self.peak())
            .field("limit", &self.inner.limit)
            .finish()
    }
}

/// RAII lease for one live thread; dropping it returns the slot.
pub struct ThreadLease {
    budget: ThreadBudget,
}

impl Drop for ThreadLease {
    fn drop(&mut self) {
        self.budget.release();
    }
}

impl std::fmt::Debug for ThreadLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ThreadLease")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn acquire_release_cycle() {
        let b = ThreadBudget::new(2);
        let l1 = b.try_acquire().unwrap();
        let l2 = b.try_acquire().unwrap();
        assert_eq!(b.live(), 2);
        assert!(b.try_acquire().is_err());
        drop(l1);
        assert_eq!(b.live(), 1);
        let _l3 = b.try_acquire().unwrap();
        drop(l2);
        assert_eq!(b.live(), 1);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let b = ThreadBudget::new(8);
        let leases: Vec<_> = (0..5).map(|_| b.try_acquire().unwrap()).collect();
        drop(leases);
        assert_eq!(b.live(), 0);
        assert_eq!(b.peak(), 5);
    }

    #[test]
    fn error_mentions_out_of_memory() {
        let b = ThreadBudget::new(0);
        let e = b.try_acquire().unwrap_err();
        assert!(e.to_string().contains("out of memory"));
        assert_eq!(e.limit, 0);
    }

    #[test]
    fn telemetry_tracks_live_peak_and_denials() {
        let reg = wsd_telemetry::Registry::new();
        let b = ThreadBudget::new(2);
        b.bind_telemetry(&reg.scope("msgbox.budget"));
        let l1 = b.try_acquire().unwrap();
        let _l2 = b.try_acquire().unwrap();
        assert!(b.try_acquire().is_err());
        drop(l1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("msgbox.budget.acquired"), 2);
        assert_eq!(snap.counter("msgbox.budget.denials"), 1);
        assert_eq!(snap.gauge_peak("msgbox.budget.live"), 2);
        assert_eq!(b.denials(), 1);
    }

    #[test]
    fn concurrent_acquire_never_exceeds_limit() {
        let b = ThreadBudget::new(16);
        let mut hs = Vec::new();
        for _ in 0..8 {
            let b = b.clone();
            hs.push(thread::spawn(move || {
                let mut ok = 0usize;
                for _ in 0..1000 {
                    if let Ok(lease) = b.try_acquire() {
                        assert!(b.live() <= 16);
                        ok += 1;
                        drop(lease);
                    }
                }
                ok
            }));
        }
        for h in hs {
            assert!(h.join().unwrap() > 0);
        }
        assert_eq!(b.live(), 0);
        assert!(b.peak() <= 16);
    }
}
