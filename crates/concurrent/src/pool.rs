//! Worker thread pool with pre-start, bounded growth and rejection policies.
//!
//! Mirrors the pool the MSG-Dispatcher configures for its `CxThread` and
//! `WsThread` stages (paper §4.2): a configurable number of pre-created
//! threads, automatic growth up to a maximum under load, and automatic
//! destruction of idle surplus threads.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use wsd_telemetry::{Counter, Gauge, Scope};

use crate::budget::{ThreadBudget, ThreadLease};
use crate::ordered::OrderedMutex;
use crate::queue::{FifoQueue, PopError, PushError};

/// What [`ThreadPool::execute`] does when the task queue is full and the
/// pool is already at its maximum size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RejectionPolicy {
    /// Fail the submission with [`TaskError::Rejected`].
    #[default]
    Abort,
    /// Run the task synchronously on the submitting thread (back-pressure).
    CallerRuns,
    /// Silently drop the task.
    Discard,
    /// Block the submitting thread until queue space frees up.
    Block,
}

/// Errors surfaced by pool submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The pool has been shut down.
    Shutdown,
    /// The queue was full and the policy is [`RejectionPolicy::Abort`].
    Rejected,
    /// Spawning a worker failed because the shared [`ThreadBudget`] is
    /// exhausted (the simulated `OutOfMemoryError`).
    OutOfMemory,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Shutdown => f.write_str("thread pool is shut down"),
            TaskError::Rejected => f.write_str("task rejected: queue full"),
            TaskError::OutOfMemory => f.write_str("out of memory: thread budget exhausted"),
        }
    }
}

impl std::error::Error for TaskError {}

/// Pool construction parameters.
#[derive(Clone)]
pub struct PoolConfig {
    /// Worker thread name prefix (e.g. `"CxThread"`, `"WsThread"`).
    pub name: String,
    /// Threads pre-created at pool construction and kept alive until
    /// shutdown.
    pub core_threads: usize,
    /// Upper bound on concurrently live workers; surplus workers above
    /// `core_threads` are created under load and retired when idle.
    pub max_threads: usize,
    /// Capacity of the task FIFO.
    pub queue_capacity: usize,
    /// How long a surplus worker stays alive with no work before retiring.
    pub keep_alive: Duration,
    /// Behaviour when the queue is full at maximum pool size.
    pub rejection: RejectionPolicy,
    /// Optional shared thread budget; workers hold a lease while alive.
    pub budget: Option<ThreadBudget>,
    /// Telemetry scope the pool's instruments live under; the default
    /// no-op scope keeps instrumentation invisible and free of exports.
    pub telemetry: Scope,
}

impl PoolConfig {
    /// A sensible fixed-size pool: `n` core threads, no growth.
    pub fn fixed(name: impl Into<String>, n: usize) -> Self {
        PoolConfig {
            name: name.into(),
            core_threads: n,
            max_threads: n,
            queue_capacity: 1024,
            keep_alive: Duration::from_millis(500),
            rejection: RejectionPolicy::Block,
            budget: None,
            telemetry: Scope::noop(),
        }
    }

    /// A growable pool: `core` pre-created threads, growth up to `max`.
    pub fn growable(name: impl Into<String>, core: usize, max: usize) -> Self {
        PoolConfig {
            name: name.into(),
            core_threads: core,
            max_threads: max,
            queue_capacity: 1024,
            keep_alive: Duration::from_millis(500),
            rejection: RejectionPolicy::Abort,
            budget: None,
            telemetry: Scope::noop(),
        }
    }

    /// Sets the task queue capacity.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Sets the rejection policy.
    pub fn rejection(mut self, policy: RejectionPolicy) -> Self {
        self.rejection = policy;
        self
    }

    /// Attaches a shared thread budget.
    pub fn budget(mut self, budget: ThreadBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the idle keep-alive for surplus workers.
    pub fn keep_alive(mut self, d: Duration) -> Self {
        self.keep_alive = d;
        self
    }

    /// Attaches a telemetry scope; the pool registers `workers`, `active`
    /// and `queue_depth` gauges plus `completed`, `rejected`, `discarded`
    /// and `oom` counters under it.
    pub fn telemetry(mut self, scope: Scope) -> Self {
        self.telemetry = scope;
        self
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: FifoQueue<Job>,
    workers: AtomicUsize,
    active: AtomicUsize,
    completed: AtomicU64,
    shutdown: AtomicBool,
    config: PoolConfigFrozen,
    tele: PoolTelemetry,
}

/// Instrument handles mirroring the pool's internal counters; under a
/// no-op scope these record into unregistered cells and cost one relaxed
/// atomic op per update.
struct PoolTelemetry {
    workers: Gauge,
    active: Gauge,
    queue_depth: Gauge,
    completed: Counter,
    rejected: Counter,
    discarded: Counter,
    oom: Counter,
}

impl PoolTelemetry {
    fn new(scope: &Scope) -> Self {
        PoolTelemetry {
            workers: scope.gauge("workers"),
            active: scope.gauge("active"),
            queue_depth: scope.gauge("queue_depth"),
            completed: scope.counter("completed"),
            rejected: scope.counter("rejected"),
            discarded: scope.counter("discarded"),
            oom: scope.counter("oom"),
        }
    }
}

struct PoolConfigFrozen {
    name: String,
    core_threads: usize,
    max_threads: usize,
    keep_alive: Duration,
    budget: Option<ThreadBudget>,
}

/// A managed worker thread pool.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    rejection: RejectionPolicy,
    handles: OrderedMutex<Vec<thread::JoinHandle<()>>>,
}

impl ThreadPool {
    /// Creates the pool and pre-starts `core_threads` workers.
    ///
    /// Fails with [`TaskError::OutOfMemory`] if the attached budget cannot
    /// cover the core threads.
    ///
    /// # Panics
    ///
    /// Panics if `core_threads > max_threads` or `max_threads == 0`.
    pub fn new(config: PoolConfig) -> Result<Self, TaskError> {
        assert!(config.max_threads > 0, "max_threads must be non-zero");
        assert!(
            config.core_threads <= config.max_threads,
            "core_threads must not exceed max_threads"
        );
        let shared = Arc::new(PoolShared {
            queue: FifoQueue::bounded(config.queue_capacity.max(1)),
            workers: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            completed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            tele: PoolTelemetry::new(&config.telemetry),
            config: PoolConfigFrozen {
                name: config.name,
                core_threads: config.core_threads,
                max_threads: config.max_threads,
                keep_alive: config.keep_alive,
                budget: config.budget,
            },
        });
        let pool = ThreadPool {
            shared,
            rejection: config.rejection,
            handles: OrderedMutex::new("thread_pool.handles", Vec::new()),
        };
        for _ in 0..pool.shared.config.core_threads {
            pool.spawn_worker(true)?;
        }
        Ok(pool)
    }

    fn spawn_worker(&self, core: bool) -> Result<(), TaskError> {
        let lease: Option<ThreadLease> = match &self.shared.config.budget {
            Some(b) => Some(b.try_acquire().map_err(|_| {
                self.shared.tele.oom.inc();
                TaskError::OutOfMemory
            })?),
            None => None,
        };
        let shared = Arc::clone(&self.shared);
        let idx = shared.workers.fetch_add(1, Ordering::AcqRel);
        shared.tele.workers.inc();
        let name = format!("{}-{}", shared.config.name, idx);
        let builder = thread::Builder::new().name(name);
        let handle = builder
            .spawn(move || {
                let _lease = lease;
                worker_loop(&shared, core);
            })
            .map_err(|_| {
                self.shared.workers.fetch_sub(1, Ordering::AcqRel);
                self.shared.tele.workers.dec();
                self.shared.tele.oom.inc();
                TaskError::OutOfMemory
            })?;
        self.handles.lock().push(handle);
        Ok(())
    }

    /// Submits a task for asynchronous execution.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), TaskError> {
        self.execute_boxed(Box::new(job))
    }

    fn execute_boxed(&self, job: Job) -> Result<(), TaskError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(TaskError::Shutdown);
        }
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.note_queue_depth();
                self.maybe_grow();
                Ok(())
            }
            Err(PushError::Closed(_)) => Err(TaskError::Shutdown),
            Err(PushError::Full(job)) => {
                // Queue is saturated: try growing first, then apply policy.
                if self.shared.workers.load(Ordering::Acquire) < self.shared.config.max_threads {
                    self.spawn_worker(false)?;
                    if let Err(e) = self.shared.queue.try_push(job) {
                        return self.apply_rejection(e);
                    }
                    self.note_queue_depth();
                    return Ok(());
                }
                self.apply_rejection(PushError::Full(job))
            }
        }
    }

    fn note_queue_depth(&self) {
        self.shared.tele.queue_depth.set(self.shared.queue.len() as i64);
    }

    fn apply_rejection(&self, err: PushError<Job>) -> Result<(), TaskError> {
        let job = match err {
            PushError::Closed(_) => return Err(TaskError::Shutdown),
            PushError::Full(job) => job,
        };
        match self.rejection {
            RejectionPolicy::Abort => {
                self.shared.tele.rejected.inc();
                Err(TaskError::Rejected)
            }
            RejectionPolicy::Discard => {
                self.shared.tele.discarded.inc();
                Ok(())
            }
            RejectionPolicy::CallerRuns => {
                job();
                self.shared.completed.fetch_add(1, Ordering::Relaxed);
                self.shared.tele.completed.inc();
                Ok(())
            }
            RejectionPolicy::Block => match self.shared.queue.push(job) {
                Ok(()) => {
                    self.note_queue_depth();
                    Ok(())
                }
                Err(_) => Err(TaskError::Shutdown),
            },
        }
    }

    fn maybe_grow(&self) {
        // Grow when every live worker is busy and there is queued work.
        let workers = self.shared.workers.load(Ordering::Acquire);
        if workers < self.shared.config.max_threads
            && self.shared.active.load(Ordering::Acquire) >= workers
            && !self.shared.queue.is_empty()
        {
            let _ = self.spawn_worker(false);
        }
    }

    /// Submits a task and returns a handle resolving to its result.
    pub fn submit<T: Send + 'static>(
        &self,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> Result<Completion<T>, TaskError> {
        // wsd-lint: allow(unbounded-queue-at-serve-site): one-shot completion channel; holds at most one element per submit
        let (tx, rx) = mpsc::channel();
        self.execute(move || {
            let _ = tx.send(job());
        })?;
        Ok(Completion { rx })
    }

    /// Number of currently live workers.
    pub fn worker_count(&self) -> usize {
        self.shared.workers.load(Ordering::Acquire)
    }

    /// Number of workers currently running a task.
    pub fn active_count(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Number of tasks waiting in the queue.
    pub fn queued_count(&self) -> usize {
        self.shared.queue.len()
    }

    /// Total tasks completed since construction.
    pub fn completed_count(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Stops accepting tasks, runs everything already queued, and joins all
    /// workers.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue.close();
        let handles: Vec<_> = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("name", &self.shared.config.name)
            .field("workers", &self.worker_count())
            .field("active", &self.active_count())
            .field("queued", &self.queued_count())
            .finish()
    }
}

fn worker_loop(shared: &PoolShared, core: bool) {
    loop {
        let job = if core {
            match shared.queue.pop() {
                Ok(j) => j,
                Err(PopError::Closed) => break,
                Err(PopError::Empty) => continue,
            }
        } else {
            match shared.queue.pop_timeout(shared.config.keep_alive) {
                Ok(j) => j,
                Err(PopError::Closed) => break,
                // Surplus worker idle past keep-alive: retire.
                Err(PopError::Empty) => break,
            }
        };
        shared.active.fetch_add(1, Ordering::AcqRel);
        shared.tele.active.inc();
        job();
        shared.active.fetch_sub(1, Ordering::AcqRel);
        shared.tele.active.dec();
        shared.completed.fetch_add(1, Ordering::Relaxed);
        shared.tele.completed.inc();
    }
    shared.workers.fetch_sub(1, Ordering::AcqRel);
    shared.tele.workers.dec();
}

/// Handle to a [`ThreadPool::submit`] result.
pub struct Completion<T> {
    rx: mpsc::Receiver<T>,
}

impl<T> Completion<T> {
    /// Blocks until the task finishes; `None` if the task panicked.
    pub fn wait(self) -> Option<T> {
        self.rx.recv().ok()
    }

    /// Blocks at most `timeout`; `None` on timeout or panic.
    pub fn wait_timeout(self, timeout: Duration) -> Option<T> {
        self.rx.recv_timeout(timeout).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_submitted_tasks() {
        let pool = ThreadPool::new(PoolConfig::fixed("t", 4)).unwrap();
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.completed_count(), 100);
    }

    #[test]
    fn submit_returns_result() {
        let pool = ThreadPool::new(PoolConfig::fixed("t", 2)).unwrap();
        let c = pool.submit(|| 21 * 2).unwrap();
        assert_eq!(c.wait(), Some(42));
    }

    #[test]
    fn pre_creates_core_threads() {
        let pool = ThreadPool::new(PoolConfig::fixed("t", 3)).unwrap();
        assert_eq!(pool.worker_count(), 3);
    }

    #[test]
    fn grows_to_max_under_load() {
        let cfg = PoolConfig::growable("t", 1, 4)
            .queue_capacity(1)
            .rejection(RejectionPolicy::Block);
        let pool = ThreadPool::new(cfg).unwrap();
        let latch = crate::CountDownLatch::new(4);
        let release = crate::CountDownLatch::new(1);
        for _ in 0..4 {
            let latch = latch.clone();
            let release = release.clone();
            pool.execute(move || {
                latch.count_down();
                release.wait();
            })
            .unwrap();
        }
        assert!(latch.wait_timeout(Duration::from_secs(5)), "pool never grew");
        assert!(pool.worker_count() >= 4);
        release.count_down();
        pool.shutdown();
    }

    #[test]
    fn abort_policy_rejects_when_saturated() {
        let cfg = PoolConfig::growable("t", 1, 1)
            .queue_capacity(1)
            .rejection(RejectionPolicy::Abort);
        let pool = ThreadPool::new(cfg).unwrap();
        let release = crate::CountDownLatch::new(1);
        let started = crate::CountDownLatch::new(1);
        {
            let release = release.clone();
            let started = started.clone();
            pool.execute(move || {
                started.count_down();
                release.wait();
            })
            .unwrap();
        }
        started.wait();
        // Worker busy; fill the single queue slot, then expect rejection.
        pool.execute(|| {}).unwrap();
        let mut rejected = false;
        for _ in 0..10 {
            if pool.execute(|| {}) == Err(TaskError::Rejected) {
                rejected = true;
                break;
            }
        }
        assert!(rejected);
        release.count_down();
        pool.shutdown();
    }

    #[test]
    fn discard_policy_drops_silently() {
        let cfg = PoolConfig::growable("t", 1, 1)
            .queue_capacity(1)
            .rejection(RejectionPolicy::Discard);
        let pool = ThreadPool::new(cfg).unwrap();
        let release = crate::CountDownLatch::new(1);
        {
            let release = release.clone();
            pool.execute(move || release.wait()).unwrap();
        }
        for _ in 0..20 {
            assert_eq!(pool.execute(|| {}), Ok(()));
        }
        release.count_down();
        pool.shutdown();
    }

    #[test]
    fn caller_runs_policy_executes_inline() {
        let cfg = PoolConfig::growable("t", 1, 1)
            .queue_capacity(1)
            .rejection(RejectionPolicy::CallerRuns);
        let pool = ThreadPool::new(cfg).unwrap();
        let release = crate::CountDownLatch::new(1);
        let started = crate::CountDownLatch::new(1);
        {
            let release = release.clone();
            let started = started.clone();
            pool.execute(move || {
                started.count_down();
                release.wait();
            })
            .unwrap();
        }
        started.wait();
        pool.execute(|| {}).unwrap(); // fills queue slot
        let tid = thread::current().id();
        let ran_on = Arc::new(Mutex::new(None));
        let mut inline = false;
        for _ in 0..10 {
            let ran_on2 = Arc::clone(&ran_on);
            pool.execute(move || {
                *ran_on2.lock() = Some(thread::current().id());
            })
            .unwrap();
            if *ran_on.lock() == Some(tid) {
                inline = true;
                break;
            }
        }
        assert!(inline, "caller-runs task never executed inline");
        release.count_down();
        pool.shutdown();
    }

    #[test]
    fn execute_after_shutdown_fails() {
        let pool = ThreadPool::new(PoolConfig::fixed("t", 1)).unwrap();
        pool.shutdown();
        assert_eq!(pool.execute(|| {}), Err(TaskError::Shutdown));
    }

    #[test]
    fn telemetry_scope_observes_pool_activity() {
        let reg = wsd_telemetry::Registry::new();
        let pool = ThreadPool::new(
            PoolConfig::fixed("t", 2).telemetry(reg.scope("pool{t}")),
        )
        .unwrap();
        for _ in 0..10 {
            pool.execute(|| {}).unwrap();
        }
        pool.shutdown();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pool{t}.completed"), 10);
        assert_eq!(snap.gauge_peak("pool{t}.workers"), 2);
        // All workers retired at shutdown.
        let (value, _) = match snap.get("pool{t}.workers") {
            Some(wsd_telemetry::MetricValue::Gauge { value, peak }) => (*value, *peak),
            other => panic!("expected gauge, got {other:?}"),
        };
        assert_eq!(value, 0);
    }

    #[test]
    fn budget_exhaustion_is_out_of_memory() {
        let budget = ThreadBudget::new(2);
        let _hold = budget.try_acquire().unwrap();
        let _hold2 = budget.try_acquire().unwrap();
        let cfg = PoolConfig::fixed("t", 1).budget(budget);
        match ThreadPool::new(cfg) {
            Err(TaskError::OutOfMemory) => {}
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn workers_release_budget_on_shutdown() {
        let budget = ThreadBudget::new(8);
        let cfg = PoolConfig::fixed("t", 4).budget(budget.clone());
        let pool = ThreadPool::new(cfg).unwrap();
        assert_eq!(budget.live(), 4);
        pool.shutdown();
        assert_eq!(budget.live(), 0);
    }

    #[test]
    fn surplus_workers_retire_after_keep_alive() {
        let cfg = PoolConfig::growable("t", 1, 4)
            .queue_capacity(1)
            .keep_alive(Duration::from_millis(30))
            .rejection(RejectionPolicy::Block);
        let pool = ThreadPool::new(cfg).unwrap();
        let release = crate::CountDownLatch::new(1);
        for _ in 0..4 {
            let release = release.clone();
            pool.execute(move || release.wait()).unwrap();
        }
        release.count_down();
        // Give surplus workers time to idle out.
        for _ in 0..100 {
            if pool.worker_count() <= 1 {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert!(pool.worker_count() <= 2, "surplus workers never retired");
        pool.shutdown();
    }
}
