//! Bounded, blocking, multi-producer/multi-consumer FIFO queue.
//!
//! This is the queue that sits between the MSG-Dispatcher's `CxThread` and
//! `WsThread` pools (paper §4.2, Figure 3): accepted messages are pushed in
//! arrival order and each destination's sender thread drains them in FIFO
//! order over a single kept-open connection.

use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use parking_lot::Condvar;
use wsd_telemetry::{Counter, Gauge, Scope};

use crate::ordered::{OrderedMutex, OrderedMutexGuard};

/// Error returned by push operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was full and the operation was non-blocking (or timed out).
    /// The rejected element is handed back to the caller.
    Full(T),
    /// The queue has been closed; no further elements are accepted.
    Closed(T),
}

/// Error returned by pop operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// The queue was empty and the operation was non-blocking (or timed out).
    Empty,
    /// The queue is closed *and* drained; no element will ever arrive.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// A bounded, blocking MPMC FIFO queue.
///
/// Cloning the handle is cheap (it is an `Arc` internally); all clones refer
/// to the same queue.
///
/// # Ordering guarantee
///
/// Elements are delivered in exactly the order they were pushed (a single
/// global FIFO order — pops observe the push linearization order).
pub struct FifoQueue<T> {
    inner: Arc<Shared<T>>,
}

struct Shared<T> {
    state: OrderedMutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    tele: OnceLock<QueueTelemetry>,
}

/// Instruments registered by [`FifoQueue::bind_telemetry`].
struct QueueTelemetry {
    depth: Gauge,
    pushed: Counter,
    popped: Counter,
    rejected: Counter,
}

impl<T> Shared<T> {
    fn note_push(&self, depth: usize) {
        if let Some(t) = self.tele.get() {
            t.pushed.inc();
            t.depth.set(depth as i64);
        }
    }

    fn note_pop(&self, depth: usize) {
        if let Some(t) = self.tele.get() {
            t.popped.inc();
            t.depth.set(depth as i64);
        }
    }

    fn note_rejected(&self) {
        if let Some(t) = self.tele.get() {
            t.rejected.inc();
        }
    }
}

impl<T> Clone for FifoQueue<T> {
    fn clone(&self) -> Self {
        FifoQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> FifoQueue<T> {
    /// Creates a queue holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        FifoQueue {
            inner: Arc::new(Shared {
                state: OrderedMutex::new("fifo_queue.state", Inner {
                    items: VecDeque::with_capacity(capacity.min(1024)),
                    capacity,
                    closed: false,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                tele: OnceLock::new(),
            }),
        }
    }

    /// Creates a queue with no practical capacity limit.
    pub fn unbounded() -> Self {
        Self::bounded(usize::MAX)
    }

    /// Binds telemetry instruments (`depth` gauge, `pushed`/`popped`/
    /// `rejected` counters) under `scope`. Only the first bind takes
    /// effect; later calls are ignored.
    pub fn bind_telemetry(&self, scope: &Scope) {
        let _ = self.inner.tele.set(QueueTelemetry {
            depth: scope.gauge("depth"),
            pushed: scope.counter("pushed"),
            popped: scope.counter("popped"),
            rejected: scope.counter("rejected"),
        });
    }

    /// Pushes an element, blocking while the queue is full.
    pub fn push(&self, value: T) -> Result<(), PushError<T>> {
        let mut st = self.inner.state.lock();
        loop {
            if st.closed {
                return Err(PushError::Closed(value));
            }
            if st.items.len() < st.capacity {
                st.items.push_back(value);
                let depth = st.items.len();
                drop(st);
                self.inner.note_push(depth);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            st.wait(&self.inner.not_full);
        }
    }

    /// Pushes an element without blocking.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        let mut st = self.inner.state.lock();
        if st.closed {
            return Err(PushError::Closed(value));
        }
        if st.items.len() >= st.capacity {
            drop(st);
            self.inner.note_rejected();
            return Err(PushError::Full(value));
        }
        st.items.push_back(value);
        let depth = st.items.len();
        drop(st);
        self.inner.note_push(depth);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Pushes an element, blocking at most `timeout` while the queue is full.
    pub fn push_timeout(&self, value: T, timeout: Duration) -> Result<(), PushError<T>> {
        // wsd-lint: allow(raw-clock): condvar parking needs a monotonic Instant deadline; no simulated time crosses this boundary
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            if st.closed {
                return Err(PushError::Closed(value));
            }
            if st.items.len() < st.capacity {
                st.items.push_back(value);
                let depth = st.items.len();
                drop(st);
                self.inner.note_push(depth);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            if st.wait_until(&self.inner.not_full, deadline) {
                drop(st);
                self.inner.note_rejected();
                return Err(PushError::Full(value));
            }
        }
    }

    /// Pops the oldest element, blocking while the queue is empty.
    ///
    /// Returns [`PopError::Closed`] once the queue is closed and drained.
    pub fn pop(&self) -> Result<T, PopError> {
        let mut st = self.inner.state.lock();
        loop {
            if let Some(v) = st.items.pop_front() {
                let depth = st.items.len();
                drop(st);
                self.inner.note_pop(depth);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.closed {
                return Err(PopError::Closed);
            }
            st.wait(&self.inner.not_empty);
        }
    }

    /// Pops the oldest element without blocking.
    pub fn try_pop(&self) -> Result<T, PopError> {
        let mut st = self.inner.state.lock();
        if let Some(v) = st.items.pop_front() {
            let depth = st.items.len();
            drop(st);
            self.inner.note_pop(depth);
            self.inner.not_full.notify_one();
            return Ok(v);
        }
        if st.closed {
            Err(PopError::Closed)
        } else {
            Err(PopError::Empty)
        }
    }

    /// Pops the oldest element, blocking at most `timeout`.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<T, PopError> {
        // wsd-lint: allow(raw-clock): condvar parking needs a monotonic Instant deadline; no simulated time crosses this boundary
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            if let Some(v) = st.items.pop_front() {
                let depth = st.items.len();
                drop(st);
                self.inner.note_pop(depth);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.closed {
                return Err(PopError::Closed);
            }
            if st.wait_until(&self.inner.not_empty, deadline) {
                return Err(PopError::Empty);
            }
        }
    }

    /// Pops up to `max` elements without blocking, in FIFO order.
    ///
    /// Returns at least one element on `Ok`; an empty queue reports
    /// [`PopError::Empty`] (or [`PopError::Closed`] once closed and
    /// drained). The whole batch is taken under one lock acquisition and
    /// noted in telemetry with a single batched update.
    pub fn pop_batch(&self, max: usize) -> Result<Vec<T>, PopError> {
        let st = self.inner.state.lock();
        self.take_batch(st, max)
    }

    /// Pops up to `max` elements, blocking at most `timeout` for the
    /// *first* one; the rest are whatever is already queued behind it.
    ///
    /// This is the WsThread drain primitive: block until traffic arrives
    /// (or the linger expires), then coalesce the backlog into one batch.
    pub fn pop_timeout_batch(&self, timeout: Duration, max: usize) -> Result<Vec<T>, PopError> {
        // wsd-lint: allow(raw-clock): condvar parking needs a monotonic Instant deadline; no simulated time crosses this boundary
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            if !st.items.is_empty() {
                return self.take_batch(st, max);
            }
            if st.closed {
                return Err(PopError::Closed);
            }
            if st.wait_until(&self.inner.not_empty, deadline) {
                return Err(PopError::Empty);
            }
        }
    }

    /// Takes up to `max` queued elements, consuming the held lock.
    fn take_batch(
        &self,
        mut st: OrderedMutexGuard<'_, Inner<T>>,
        max: usize,
    ) -> Result<Vec<T>, PopError> {
        if st.items.is_empty() {
            return if st.closed {
                Err(PopError::Closed)
            } else {
                Err(PopError::Empty)
            };
        }
        let n = st.items.len().min(max.max(1));
        let out: Vec<T> = st.items.drain(..n).collect();
        let depth = st.items.len();
        drop(st);
        if let Some(t) = self.inner.tele.get() {
            t.popped.add(out.len() as u64);
            t.depth.set(depth as i64);
        }
        if out.len() == 1 {
            self.inner.not_full.notify_one();
        } else {
            self.inner.not_full.notify_all();
        }
        Ok(out)
    }

    /// Drains every currently queued element in FIFO order.
    pub fn drain(&self) -> Vec<T> {
        let mut st = self.inner.state.lock();
        let out: Vec<T> = st.items.drain(..).collect();
        drop(st);
        if let Some(t) = self.inner.tele.get() {
            t.popped.add(out.len() as u64);
            t.depth.set(0);
        }
        self.inner.not_full.notify_all();
        out
    }

    /// Closes the queue: pending and future pushes fail, pops drain the
    /// remaining elements then report [`PopError::Closed`].
    pub fn close(&self) {
        let mut st = self.inner.state.lock();
        st.closed = true;
        drop(st);
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().closed
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        self.inner.state.lock().items.len()
    }

    /// Whether the queue currently holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The maximum number of elements the queue can hold.
    pub fn capacity(&self) -> usize {
        self.inner.state.lock().capacity
    }
}

impl<T> std::fmt::Debug for FifoQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("FifoQueue")
            .field("len", &st.items.len())
            .field("capacity", &st.capacity)
            .field("closed", &st.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn push_pop_preserves_fifo_order() {
        let q = FifoQueue::bounded(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap(), i);
        }
    }

    #[test]
    fn try_push_full_returns_element() {
        let q = FifoQueue::bounded(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn try_pop_empty() {
        let q: FifoQueue<u8> = FifoQueue::bounded(1);
        assert_eq!(q.try_pop(), Err(PopError::Empty));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = FifoQueue::bounded(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Ok(1));
        assert_eq!(q.pop(), Ok(2));
        assert_eq!(q.pop(), Err(PopError::Closed));
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = FifoQueue::bounded(1);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.pop().unwrap());
        thread::sleep(Duration::from_millis(20));
        q.push(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn blocking_push_wakes_on_pop() {
        let q = FifoQueue::bounded(1);
        q.push(1).unwrap();
        let q2 = q.clone();
        let h = thread::spawn(move || q2.push(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop().unwrap(), 1);
        h.join().unwrap();
        assert_eq!(q.pop().unwrap(), 2);
    }

    #[test]
    fn pop_timeout_expires() {
        let q: FifoQueue<u8> = FifoQueue::bounded(1);
        let err = q.pop_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, PopError::Empty);
    }

    #[test]
    fn push_timeout_expires_when_full() {
        let q = FifoQueue::bounded(1);
        q.push(1).unwrap();
        let err = q.push_timeout(2, Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, PushError::Full(2));
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q: FifoQueue<u8> = FifoQueue::bounded(1);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.pop());
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Err(PopError::Closed));
    }

    #[test]
    fn drain_returns_in_order_and_unblocks_pushers() {
        let q = FifoQueue::bounded(3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        let q2 = q.clone();
        let h = thread::spawn(move || q2.push(4).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.drain(), vec![1, 2, 3]);
        h.join().unwrap();
        assert_eq!(q.pop().unwrap(), 4);
    }

    #[test]
    fn concurrent_producers_consumers_no_loss_no_dup() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 500;
        let q = FifoQueue::bounded(8);
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.push(p * PER_PRODUCER + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let q = q.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let expected: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn per_producer_order_preserved() {
        // With a single consumer, each producer's elements must appear in
        // that producer's push order.
        let q = FifoQueue::bounded(4);
        let mut producers = Vec::new();
        for p in 0..3usize {
            let q = q.clone();
            producers.push(thread::spawn(move || {
                for i in 0..200usize {
                    q.push((p, i)).unwrap();
                }
            }));
        }
        let consumer = {
            let q = q.clone();
            thread::spawn(move || {
                let mut seen = Vec::new();
                while let Ok(v) = q.pop() {
                    seen.push(v);
                }
                seen
            })
        };
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let seen = consumer.join().unwrap();
        let mut next = [0usize; 3];
        for (p, i) in seen {
            assert_eq!(i, next[p], "producer {p} out of order");
            next[p] += 1;
        }
        assert_eq!(next, [200, 200, 200]);
    }

    #[test]
    fn pop_batch_takes_up_to_max_in_order() {
        let q = FifoQueue::bounded(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_batch(4).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(q.pop_batch(100).unwrap(), vec![4, 5, 6, 7, 8, 9]);
        assert_eq!(q.pop_batch(4), Err(PopError::Empty));
        q.close();
        assert_eq!(q.pop_batch(4), Err(PopError::Closed));
    }

    #[test]
    fn pop_timeout_batch_blocks_for_first_element_only() {
        let q = FifoQueue::bounded(16);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.pop_timeout_batch(Duration::from_secs(5), 8));
        thread::sleep(Duration::from_millis(20));
        q.push(1).unwrap();
        // The batch contains whatever had arrived when the consumer woke:
        // at least the element that woke it, never more than max.
        let got = h.join().unwrap().unwrap();
        assert!(!got.is_empty() && got.len() <= 8);
        assert_eq!(got[0], 1);

        let err = q.pop_timeout_batch(Duration::from_millis(10), 8).unwrap_err();
        assert_eq!(err, PopError::Empty);
    }

    #[test]
    fn pop_batch_unblocks_pushers() {
        let q = FifoQueue::bounded(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let q2 = q.clone();
        let h = thread::spawn(move || {
            q2.push(3).unwrap();
            q2.push(4).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop_batch(2).unwrap(), vec![1, 2]);
        h.join().unwrap();
        assert_eq!(q.pop_batch(4).unwrap(), vec![3, 4]);
    }

    #[test]
    fn batch_consumers_preserve_per_producer_fifo_no_loss_no_dup() {
        // The tentpole's drain loop pops in batches; per-producer order,
        // loss-freedom and dup-freedom must survive concurrent producers
        // with batch consumers of mixed sizes.
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 500;
        let q = FifoQueue::bounded(8);
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let q = q.clone();
            producers.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.push((p, i)).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for (c, max) in [1usize, 4, 16].into_iter().enumerate() {
            let q = q.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match q.pop_timeout_batch(Duration::from_secs(10), max) {
                        Ok(batch) => {
                            assert!(batch.len() <= max, "consumer {c} overfull batch");
                            got.extend(batch);
                        }
                        Err(PopError::Closed) => return got,
                        Err(PopError::Empty) => panic!("consumer {c} starved"),
                    }
                }
            }));
        }
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<(usize, usize)> = Vec::new();
        for c in consumers {
            let got = c.join().unwrap();
            // Within one consumer, each producer's elements are in order
            // (batches are contiguous FIFO slices).
            let mut next: Vec<Option<usize>> = vec![None; PRODUCERS];
            for &(p, i) in &got {
                if let Some(prev) = next[p] {
                    assert!(i > prev, "producer {p} reordered within consumer");
                }
                next[p] = Some(i);
            }
            all.extend(got);
        }
        // Across all consumers: nothing lost, nothing duplicated.
        all.sort_unstable();
        let expected: Vec<(usize, usize)> = (0..PRODUCERS)
            .flat_map(|p| (0..PER_PRODUCER).map(move |i| (p, i)))
            .collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn pop_timeout_batch_racing_close_never_hangs_or_loses() {
        // Regression: consumers parked in `pop_timeout_batch` while
        // another thread closes the queue must wake promptly with
        // `Closed` after draining the backlog — not sleep out their full
        // timeout (a lost close wakeup) and not drop queued elements.
        // The long timeout makes a lost wakeup a loud test failure
        // instead of a flake.
        for round in 0..50usize {
            let q = FifoQueue::bounded(8);
            let mut consumers = Vec::new();
            for c in 0..3 {
                let q = q.clone();
                consumers.push(thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match q.pop_timeout_batch(Duration::from_secs(30), 4) {
                            Ok(batch) => got.extend(batch),
                            Err(PopError::Closed) => return got,
                            Err(PopError::Empty) => {
                                panic!("consumer {c} slept through close: lost wakeup")
                            }
                        }
                    }
                }));
            }
            let producer = {
                let q = q.clone();
                thread::spawn(move || {
                    let mut sent = 0usize;
                    for i in 0..round {
                        // A producer blocked in `push` when the close
                        // lands must also wake with `Closed`.
                        if q.push(i).is_err() {
                            break;
                        }
                        sent += 1;
                    }
                    sent
                })
            };
            if round % 2 == 0 {
                thread::yield_now();
            }
            q.close();
            let sent = producer.join().unwrap();
            let mut all: Vec<usize> = Vec::new();
            for c in consumers {
                all.extend(c.join().unwrap());
            }
            all.sort_unstable();
            let expected: Vec<usize> = (0..sent).collect();
            assert_eq!(all, expected, "round {round}: close dropped or duplicated elements");
        }
    }

    #[test]
    fn pop_batch_telemetry_is_batched() {
        let reg = wsd_telemetry::Registry::new();
        let q = FifoQueue::bounded(8);
        q.bind_telemetry(&reg.scope("q"));
        for i in 0..6 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_batch(4).unwrap().len(), 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("q.popped"), 4);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = FifoQueue::<u8>::bounded(0);
    }

    #[test]
    fn telemetry_counts_pushes_pops_and_rejections() {
        let reg = wsd_telemetry::Registry::new();
        let q = FifoQueue::bounded(2);
        q.bind_telemetry(&reg.scope("msg_dispatcher.queue"));
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(q.try_push(3).is_err());
        assert_eq!(q.pop().unwrap(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("msg_dispatcher.queue.pushed"), 2);
        assert_eq!(snap.counter("msg_dispatcher.queue.popped"), 1);
        assert_eq!(snap.counter("msg_dispatcher.queue.rejected"), 1);
        assert_eq!(snap.gauge_peak("msg_dispatcher.queue.depth"), 2);
    }
}
