//! Concurrency substrate for the WS-Dispatcher.
//!
//! The paper's Java implementation is built on Doug Lea's *Concurrent Java
//! Library* (later `java.util.concurrent`): the MSG-Dispatcher uses two
//! managed thread pools and per-destination FIFO queues, and the service
//! registry uses a concurrent hash map. This crate provides the same
//! primitives, written from scratch on top of `parking_lot` locks:
//!
//! * [`FifoQueue`] — a bounded, blocking, multi-producer/multi-consumer
//!   first-in-first-out queue with close semantics,
//! * [`ShardedMap`] — a sharded concurrent hash map,
//! * [`ThreadPool`] — a worker pool with pre-start, on-demand growth up to a
//!   maximum size, and rejection policies,
//! * [`CountDownLatch`] — a one-shot completion barrier,
//! * [`ThreadBudget`] — a global cap on concurrently live threads, used to
//!   emulate the JVM `OutOfMemoryError` the paper hit when WS-MsgBox spawned
//!   one thread per message,
//! * [`Reactor`] — an event-driven connection multiplexer that serves many
//!   open connections from one event loop plus a bounded handler pool,
//!   removing the thread-per-connection cost that produced that error,
//! * [`OrderedMutex`] / [`OrderedRwLock`] — lock-order-audited wrappers
//!   around the parking_lot primitives: under `debug_assertions` they
//!   record a global lock-acquisition graph and panic on cycles
//!   (deadlock potential) instead of letting a test run wedge.

#![warn(missing_docs)]

pub mod budget;
pub mod latch;
pub mod map;
pub mod ordered;
pub mod pool;
pub mod queue;
pub mod reactor;

pub use budget::{BudgetError, ThreadBudget, ThreadLease};
pub use latch::CountDownLatch;
pub use map::ShardedMap;
pub use ordered::{OrderedMutex, OrderedMutexGuard, OrderedRwLock};
pub use pool::{PoolConfig, RejectionPolicy, TaskError, ThreadPool};
pub use queue::{FifoQueue, PopError, PushError};
pub use reactor::{Pump, Reactor, ReactorConfig, ReactorConn, Wakeup};
