//! Property-based invariants for the addressing layer.

use proptest::prelude::*;
use wsd_soap::{rpc, Envelope, SoapVersion};
use wsd_wsa::{rewrite_for_forward, EndpointReference, WsaHeaders};

fn uri() -> impl Strategy<Value = String> {
    "(http|https)://[a-z][a-z0-9.-]{0,20}(:[0-9]{2,5})?/[a-z0-9/_-]{0,20}"
}

fn headers_strategy() -> impl Strategy<Value = WsaHeaders> {
    (
        proptest::option::of(uri()),
        proptest::option::of(uri()),
        proptest::option::of(uri()),
        proptest::option::of("[a-z:/.]{1,30}"),
        proptest::option::of("uuid:[a-f0-9-]{1,30}"),
        proptest::collection::vec("uuid:[a-f0-9-]{1,20}", 0..3),
    )
        .prop_map(|(to, reply, fault, action, msgid, rel)| {
            let mut h = WsaHeaders::new();
            h.to = to;
            h.reply_to = reply.map(EndpointReference::new);
            h.fault_to = fault.map(EndpointReference::new);
            h.action = action;
            h.message_id = msgid;
            h.relates_to = rel.into_iter().map(|r| (r, None)).collect();
            h
        })
}

proptest! {
    /// apply → serialize → parse → read is the identity on header sets.
    #[test]
    fn headers_survive_the_wire(h in headers_strategy(), v in prop_oneof![Just(SoapVersion::V11), Just(SoapVersion::V12)]) {
        let mut env = rpc::echo_request(v, "payload");
        h.apply(&mut env);
        let reparsed = Envelope::parse(&env.to_xml()).unwrap();
        let got = WsaHeaders::from_envelope(&reparsed).unwrap();
        prop_assert_eq!(got, h);
    }

    /// The forward rewrite never touches the payload, and always points
    /// To/ReplyTo where told.
    #[test]
    fn forward_rewrite_preserves_payload(h in headers_strategy(), text in "[a-zA-Z0-9 ]{0,40}") {
        let mut env = rpc::echo_request(SoapVersion::V11, &text);
        h.apply(&mut env);
        rewrite_for_forward(&mut env, "http://phys.example/svc", "http://disp.example/msg").unwrap();
        let reparsed = Envelope::parse(&env.to_xml()).unwrap();
        prop_assert_eq!(rpc::parse_echo(&reparsed).unwrap(), text);
        let got = WsaHeaders::from_envelope(&reparsed).unwrap();
        prop_assert_eq!(got.to.as_deref(), Some("http://phys.example/svc"));
        prop_assert_eq!(got.reply_to.unwrap().address, "http://disp.example/msg");
        // Non-rewritten headers intact.
        prop_assert_eq!(got.action, h.action);
        prop_assert_eq!(got.message_id, h.message_id);
    }

    /// Rewrite is idempotent: a second identical forward changes nothing.
    #[test]
    fn forward_rewrite_is_idempotent(h in headers_strategy()) {
        let mut env = rpc::echo_request(SoapVersion::V12, "x");
        h.apply(&mut env);
        rewrite_for_forward(&mut env, "http://p/s", "http://d/m").unwrap();
        let once = env.to_xml();
        rewrite_for_forward(&mut env, "http://p/s", "http://d/m").unwrap();
        prop_assert_eq!(env.to_xml(), once);
    }

    /// EPRs round-trip through their element form.
    #[test]
    fn epr_round_trips(addr in uri(), param_text in "[a-z0-9]{1,16}") {
        let epr = EndpointReference::new(addr)
            .with_parameter(wsd_xml::Element::new("p").with_text(param_text));
        let el = epr.to_element("ReplyTo");
        let root = wsd_xml::parse(&wsd_xml::write_element(&el)).unwrap().root;
        let got = EndpointReference::from_element(&root, "ReplyTo").unwrap();
        prop_assert_eq!(got, epr);
    }
}
