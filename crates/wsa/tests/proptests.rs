//! Property-based invariants for the addressing layer.

use proptest::prelude::*;
use wsd_soap::{rpc, Envelope, SoapVersion};
use wsd_wsa::{
    rewrite_for_forward, rewrite_for_reply, EndpointReference, RouteRecord, WsaHeaders,
};

fn uri() -> impl Strategy<Value = String> {
    "(http|https)://[a-z][a-z0-9.-]{0,20}(:[0-9]{2,5})?/[a-z0-9/_-]{0,20}"
}

fn headers_strategy() -> impl Strategy<Value = WsaHeaders> {
    (
        proptest::option::of(uri()),
        proptest::option::of(uri()),
        proptest::option::of(uri()),
        proptest::option::of("[a-z:/.]{1,30}"),
        proptest::option::of("uuid:[a-f0-9-]{1,30}"),
        proptest::collection::vec("uuid:[a-f0-9-]{1,20}", 0..3),
    )
        .prop_map(|(to, reply, fault, action, msgid, rel)| {
            let mut h = WsaHeaders::new();
            h.to = to;
            h.reply_to = reply.map(EndpointReference::new);
            h.fault_to = fault.map(EndpointReference::new);
            h.action = action;
            h.message_id = msgid;
            h.relates_to = rel.into_iter().map(|r| (r, None)).collect();
            h
        })
}

proptest! {
    /// apply → serialize → parse → read is the identity on header sets.
    #[test]
    fn headers_survive_the_wire(h in headers_strategy(), v in prop_oneof![Just(SoapVersion::V11), Just(SoapVersion::V12)]) {
        let mut env = rpc::echo_request(v, "payload");
        h.apply(&mut env);
        let reparsed = Envelope::parse(&env.to_xml()).unwrap();
        let got = WsaHeaders::from_envelope(&reparsed).unwrap();
        prop_assert_eq!(got, h);
    }

    /// The forward rewrite never touches the payload, and always points
    /// To/ReplyTo where told.
    #[test]
    fn forward_rewrite_preserves_payload(h in headers_strategy(), text in "[a-zA-Z0-9 ]{0,40}") {
        let mut env = rpc::echo_request(SoapVersion::V11, &text);
        h.apply(&mut env);
        rewrite_for_forward(&mut env, "http://phys.example/svc", "http://disp.example/msg").unwrap();
        let reparsed = Envelope::parse(&env.to_xml()).unwrap();
        prop_assert_eq!(rpc::parse_echo(&reparsed).unwrap(), text);
        let got = WsaHeaders::from_envelope(&reparsed).unwrap();
        prop_assert_eq!(got.to.as_deref(), Some("http://phys.example/svc"));
        prop_assert_eq!(got.reply_to.unwrap().address, "http://disp.example/msg");
        // Non-rewritten headers intact.
        prop_assert_eq!(got.action, h.action);
        prop_assert_eq!(got.message_id, h.message_id);
    }

    /// Rewrite is idempotent: a second identical forward changes nothing.
    #[test]
    fn forward_rewrite_is_idempotent(h in headers_strategy()) {
        let mut env = rpc::echo_request(SoapVersion::V12, "x");
        h.apply(&mut env);
        rewrite_for_forward(&mut env, "http://p/s", "http://d/m").unwrap();
        let once = env.to_xml();
        rewrite_for_forward(&mut env, "http://p/s", "http://d/m").unwrap();
        prop_assert_eq!(env.to_xml(), once);
    }

    /// The splice fast path produces byte-identical output to the tree
    /// path (parse → `rewrite_for_forward` → `to_xml`) for every valid
    /// all-WSA envelope, and covers every such envelope: `scan` only
    /// declines when there are no addressing headers at all.
    #[test]
    fn splice_forward_is_byte_identical_to_tree(
        h in headers_strategy(),
        v in prop_oneof![Just(SoapVersion::V11), Just(SoapVersion::V12)],
        text in "[a-zA-Z0-9<>&\"' ]{0,40}",
        rel_type in proptest::option::of(Just("wsa:Reply".to_string())),
    ) {
        let mut h = h;
        if let Some(first) = h.relates_to.first_mut() {
            first.1 = rel_type;
        }
        let mut env = rpc::echo_request(v, &text);
        h.apply(&mut env);
        // One parse round-trip puts the body in parse-canonical form (e.g.
        // an in-memory `<text></text>` with an empty text node becomes
        // `<text/>`): the byte-identity contract compares against the tree
        // path, which always re-parses.
        let xml = Envelope::parse(&env.to_xml()).unwrap().to_xml();
        let scanned = wsd_wsa::scan(&xml);
        let empty = h == WsaHeaders::new();
        prop_assert_eq!(scanned.is_some(), !empty, "fastpath coverage: {}", xml);
        let Some(scanned) = scanned else { return Ok(()); };
        // Mint an id exactly when the message carries none, as MsgCore does.
        let minted = h.message_id.is_none().then_some("uuid:minted-1");
        let (spliced, record) =
            scanned.splice_forward("http://phys.example/svc", "http://disp.example/msg", minted);
        let mut tree = Envelope::parse(&xml).unwrap();
        if let Some(id) = minted {
            let mut th = WsaHeaders::from_envelope(&tree).unwrap();
            th.message_id = Some(id.to_string());
            th.apply(&mut tree);
        }
        let tree_record =
            rewrite_for_forward(&mut tree, "http://phys.example/svc", "http://disp.example/msg")
                .unwrap();
        prop_assert_eq!(&spliced, &tree.to_xml());
        prop_assert_eq!(record.original_reply_to, tree_record.original_reply_to);
        prop_assert_eq!(record.original_fault_to, tree_record.original_fault_to);
        prop_assert_eq!(record.logical_to, tree_record.logical_to);
        // Spliced output is itself canonical: rescanning it must succeed.
        prop_assert!(wsd_wsa::scan(&spliced).is_some());
    }

    /// Same for the reply direction: splicing the destination into `To`
    /// matches parse → `rewrite_for_reply` → `to_xml` byte for byte.
    #[test]
    fn splice_reply_is_byte_identical_to_tree(
        h in headers_strategy(),
        v in prop_oneof![Just(SoapVersion::V11), Just(SoapVersion::V12)],
        dest in proptest::option::of(uri()),
    ) {
        let mut env = rpc::echo_response(v, "out");
        h.apply(&mut env);
        let xml = env.to_xml();
        let Some(scanned) = wsd_wsa::scan(&xml) else { return Ok(()); };
        let record = RouteRecord {
            message_id: Some("uuid:q".into()),
            original_reply_to: dest.clone().map(EndpointReference::new),
            original_fault_to: None,
            logical_to: None,
        };
        let spliced = scanned.splice_reply(dest.as_deref());
        let mut tree = Envelope::parse(&xml).unwrap();
        let tree_dest = rewrite_for_reply(&mut tree, &record, None).unwrap();
        prop_assert_eq!(tree_dest, dest);
        prop_assert_eq!(spliced, tree.to_xml());
    }

    /// Structural anomalies the splice path cannot reproduce byte-for-byte
    /// are declined, never mangled: an EPR with reference parameters and a
    /// foreign header block both force the tree path.
    #[test]
    fn splice_declines_non_canonical_envelopes(h in headers_strategy(), addr in uri()) {
        let mut h = h;
        h.reply_to = Some(
            EndpointReference::new(addr)
                .with_parameter(wsd_xml::Element::new("session").with_text("42")),
        );
        let mut env = rpc::echo_request(SoapVersion::V11, "x");
        h.apply(&mut env);
        prop_assert!(wsd_wsa::scan(&env.to_xml()).is_none());

        let mut env = rpc::echo_request(SoapVersion::V11, "x");
        h.apply(&mut env);
        env.headers.insert(
            0,
            wsd_xml::Element::new_ns(Some("sec"), "Token", "urn:sec")
                .declare_namespace(Some("sec"), "urn:sec")
                .with_text("t"),
        );
        prop_assert!(wsd_wsa::scan(&env.to_xml()).is_none());
    }

    /// Adversarial envelopes — torn tags (truncation at every offset),
    /// deep nesting spliced into the payload, entity-heavy and
    /// malformed-entity text — either fall back (the scanner declines
    /// and the tree path takes over) or splice byte-identically. The
    /// fast path never accepts an envelope the tree parser rejects, and
    /// never produces different bytes than the tree rewrite.
    #[test]
    fn adversarial_envelopes_fall_back_never_diverge(
        h in headers_strategy(),
        v in prop_oneof![Just(SoapVersion::V11), Just(SoapVersion::V12)],
        mode in 0u8..3,
        depth in 1usize..40,
        soup in "(&[a-z]{1,6};|[a-z<>\"' ]){0,16}",
        cut_permille in 0u32..=1000,
    ) {
        let mut env = rpc::echo_request(v, "MARKER");
        h.apply(&mut env);
        let xml = env.to_xml();
        let mutated = match mode {
            // Torn tag: truncate anywhere (1000 = the full envelope).
            0 => xml[..(xml.len() as u64 * cut_permille as u64 / 1000) as usize].to_string(),
            // Deep nesting in the payload.
            1 => xml.replace(
                "MARKER",
                &format!("{}{}", "<n>".repeat(depth), "</n>".repeat(depth)),
            ),
            // Entity soup, including undefined references like `&bogus;`.
            _ => xml.replace("MARKER", &soup),
        };
        // Well-formed adversarial envelopes are compared in
        // parse-canonical form (the tree path always re-serializes, so
        // byte identity is only defined on canonical input, as in the
        // forward test above). Ill-formed ones stay raw: the fast path
        // must decline them outright.
        let adversarial = match Envelope::parse(&mutated) {
            Ok(well_formed) => well_formed.to_xml(),
            Err(_) => mutated,
        };
        let Some(scanned) = wsd_wsa::scan(&adversarial) else { return Ok(()); };
        // Accepted by the fast path: the tree path must agree it is
        // well-formed, and both rewrites must emit identical bytes.
        let tree = Envelope::parse(&adversarial);
        prop_assert!(tree.is_ok(), "fast path accepted, tree rejected: {adversarial}");
        let spliced = scanned.splice_reply(Some("http://dest.example/mb"));
        let record = RouteRecord {
            message_id: Some("uuid:q".into()),
            original_reply_to: Some(EndpointReference::new("http://dest.example/mb")),
            original_fault_to: None,
            logical_to: None,
        };
        let mut tree = tree.unwrap();
        rewrite_for_reply(&mut tree, &record, None).unwrap();
        prop_assert_eq!(spliced, tree.to_xml());
    }

    /// EPRs round-trip through their element form.
    #[test]
    fn epr_round_trips(addr in uri(), param_text in "[a-z0-9]{1,16}") {
        let epr = EndpointReference::new(addr)
            .with_parameter(wsd_xml::Element::new("p").with_text(param_text));
        let el = epr.to_element("ReplyTo");
        let root = wsd_xml::parse(&wsd_xml::write_element(&el)).unwrap().root;
        let got = EndpointReference::from_element(&root, "ReplyTo").unwrap();
        prop_assert_eq!(got, epr);
    }
}
