//! Single-pass splice rewrite: the dispatcher's zero-copy fast path.
//!
//! [`scan`] runs one streaming pass over a serialized envelope and
//! locates the WS-Addressing header elements; [`ScannedWsa::splice_forward`]
//! and [`ScannedWsa::splice_reply`] then emit every byte outside the
//! addressing block verbatim — the body is never parsed into a tree,
//! rebuilt or re-escaped — and splice the rewritten headers in. The body
//! bytes are still *verified* ([`wsd_xml::splice::verify_element_with_prefixes`]):
//! the fast path must never forward an envelope the tree path would
//! reject, so mismatched tags, unknown entity references and unbound
//! prefixes all decline to the tree parser instead of being spliced.
//!
//! The scan is deliberately strict: it accepts exactly the canonical
//! serialization our own [`wsd_xml::writer`] produces (the form every
//! envelope in this system is in after one `to_xml()`), because only then
//! is the spliced output byte-identical to the tree path of
//! [`crate::rewrite`]. Anything else — foreign header blocks, extra
//! attributes, CDATA, non-canonical entity forms, reference
//! properties/parameters, out-of-order headers — makes `scan` return
//! `None` and the caller falls back to parse + rewrite + re-serialize.
//!
//! Byte identity with the tree path is guaranteed for envelopes in
//! parse-canonical form (a fixed point of `parse` → `to_xml`, which every
//! on-the-wire envelope our stack emits is). For other accepted inputs the
//! splice output is the *more* faithful one: the body is forwarded
//! verbatim where the tree path would normalize it (e.g. `<x></x>` to
//! `<x/>`).

use std::borrow::Cow;
use std::ops::Range;
use std::sync::OnceLock;

use wsd_xml::escape::{escape_attr, escape_text, push_escaped_text};
use wsd_xml::intern::{seeded, Atom};
use wsd_xml::unescape;

use crate::epr::EndpointReference;
use crate::rewrite::RouteRecord;

/// Canonical envelope framing per SOAP version, as `to_xml()` emits it.
struct Shape {
    open: &'static str,
    header_open: &'static str,
    header_close: &'static str,
    body_open: &'static str,
    env_close: &'static str,
    /// Envelope prefix, bound on the root open tag and therefore in scope
    /// for the Body the verifier walks.
    env_prefix: &'static str,
}

const V11_SHAPE: Shape = Shape {
    open: "<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"http://schemas.xmlsoap.org/soap/envelope/\">",
    header_open: "<SOAP-ENV:Header>",
    header_close: "</SOAP-ENV:Header>",
    body_open: "<SOAP-ENV:Body",
    env_close: "</SOAP-ENV:Envelope>",
    env_prefix: "SOAP-ENV",
};

const V12_SHAPE: Shape = Shape {
    open: "<env:Envelope xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\">",
    header_open: "<env:Header>",
    header_close: "</env:Header>",
    body_open: "<env:Body",
    env_close: "</env:Envelope>",
    env_prefix: "env",
};

/// The canonical namespace declaration every WSA header block carries.
const XMLNS_WSA: &str = " xmlns:wsa=\"http://schemas.xmlsoap.org/ws/2004/08/addressing\"";

/// The WSA header locals as interned atoms, resolved once: after the
/// single [`seeded`] lookup per scanned header, slot matching is seven
/// pointer compares instead of string compares.
struct HeaderAtoms {
    slots: [Atom; 7],
}

fn header_atoms() -> &'static HeaderAtoms {
    static ATOMS: OnceLock<HeaderAtoms> = OnceLock::new();
    ATOMS.get_or_init(|| HeaderAtoms {
        slots: [
            seeded("To").expect("seeded vocabulary"),
            seeded("From").expect("seeded vocabulary"),
            seeded("ReplyTo").expect("seeded vocabulary"),
            seeded("FaultTo").expect("seeded vocabulary"),
            seeded("Action").expect("seeded vocabulary"),
            seeded("MessageID").expect("seeded vocabulary"),
            seeded("RelatesTo").expect("seeded vocabulary"),
        ],
    })
}

/// Canonical header order (the order `WsaHeaders::apply` emits).
/// Non-WSA names miss the intern table and return `None` (fall back).
fn slot_of(local: &str) -> Option<i32> {
    let atom = seeded(local)?;
    header_atoms()
        .slots
        .iter()
        .position(|&s| s == atom)
        .map(|i| i as i32)
}

/// The addressing block of one canonically-serialized envelope: decoded
/// values where routing needs them, raw byte spans everywhere else.
pub struct ScannedWsa<'a> {
    src: &'a str,
    /// First byte of the first WSA header (start of the spliced region).
    run_start: usize,
    /// Offset of `</PFX:Header>` (end of the spliced region).
    run_end: usize,
    to: Option<(Cow<'a, str>, Range<usize>)>,
    from: Option<Range<usize>>,
    reply_to: Option<(Cow<'a, str>, Range<usize>)>,
    fault_to: Option<(Cow<'a, str>, Range<usize>)>,
    action: Option<Range<usize>>,
    message_id: Option<(Cow<'a, str>, Range<usize>)>,
    /// First `RelatesTo` inline (a canonical reply has exactly one; keeping
    /// it out of the `Vec` keeps the steady-state scan allocation-free),
    /// repeats spill into `relates_to_rest`.
    relates_to_first: Option<(Cow<'a, str>, Range<usize>)>,
    relates_to_rest: Vec<(Cow<'a, str>, Range<usize>)>,
}

/// Scans a serialized envelope for its WS-Addressing block. Returns
/// `None` — meaning "use the tree path" — unless the envelope is in the
/// writer's canonical form with all header children being canonical WSA
/// headers in canonical order.
pub fn scan(src: &str) -> Option<ScannedWsa<'_>> {
    let shape = if src.starts_with(V11_SHAPE.open) {
        &V11_SHAPE
    } else if src.starts_with(V12_SHAPE.open) {
        &V12_SHAPE
    } else {
        return None;
    };
    if !src.ends_with(shape.env_close) {
        return None;
    }
    let mut pos = shape.open.len();
    if !src[pos..].starts_with(shape.header_open) {
        return None;
    }
    pos += shape.header_open.len();
    let mut out = ScannedWsa {
        src,
        run_start: pos,
        run_end: 0,
        to: None,
        from: None,
        reply_to: None,
        fault_to: None,
        action: None,
        message_id: None,
        relates_to_first: None,
        relates_to_rest: Vec::new(),
    };
    let mut last_slot = -1i32;
    loop {
        if src[pos..].starts_with(shape.header_close) {
            if last_slot < 0 {
                // An empty Header would not be re-emitted by the tree path.
                return None;
            }
            out.run_end = pos;
            let body = pos + shape.header_close.len();
            if !src[body..].starts_with(shape.body_open) {
                return None;
            }
            match src.as_bytes().get(body + shape.body_open.len()) {
                Some(b'>') | Some(b'/') => {}
                _ => return None,
            }
            // The splice copies every body byte verbatim, so the fast
            // path must never accept a body the tree path would fault
            // on: verify the Body element token-for-token (matched close
            // tags, canonical attributes, known entity references, bound
            // prefixes) before committing. Anything questionable falls
            // back to the tree parser and its precise diagnostics.
            let body_end = wsd_xml::splice::verify_element_with_prefixes(
                src,
                body,
                &[shape.env_prefix],
            )?;
            if &src[body_end..] != shape.env_close {
                return None;
            }
            return Some(out);
        }
        let start = pos;
        let (local, tag) = scan_wsa_open(src, pos)?;
        let slot = slot_of(local)?;
        // Canonical order, singletons at most once (RelatesTo may repeat).
        if slot < last_slot || (slot == last_slot && slot != 6) {
            return None;
        }
        last_slot = slot;
        match slot {
            0 | 4 | 5 => {
                // To / Action / MessageID: text-only headers.
                if !tag.extra.is_empty() {
                    return None;
                }
                let (value, end) = scan_text_content(src, tag.content_start, local)?;
                match slot {
                    0 => out.to = Some((value, start..end)),
                    4 => out.action = Some(start..end),
                    _ => out.message_id = Some((value, start..end)),
                }
                pos = end;
            }
            6 => {
                // RelatesTo.
                if !tag.extra.is_empty() {
                    // Only the canonical `RelationshipType` attribute, in
                    // canonical escaping, keeps byte identity.
                    let rel = tag.extra.strip_prefix(" RelationshipType=\"")?;
                    let (raw, rest) = rel.split_once('"')?;
                    if !rest.is_empty() {
                        return None;
                    }
                    let decoded = unescape(raw)?;
                    if escape_attr(&decoded) != raw {
                        return None;
                    }
                }
                let (value, end) = scan_text_content(src, tag.content_start, local)?;
                if out.relates_to_first.is_none() {
                    out.relates_to_first = Some((value, start..end));
                } else {
                    out.relates_to_rest.push((value, start..end));
                }
                pos = end;
            }
            _ => {
                // From / ReplyTo / FaultTo: an address-only EPR.
                if !tag.extra.is_empty() {
                    return None;
                }
                let (addr, end) = scan_epr_content(src, tag.content_start, local)?;
                match slot {
                    1 => out.from = Some(start..end),
                    2 => out.reply_to = Some((addr, start..end)),
                    _ => out.fault_to = Some((addr, start..end)),
                }
                pos = end;
            }
        }
    }
}

struct OpenTag<'a> {
    /// Raw bytes between the xmlns declaration and the closing `>`.
    extra: &'a str,
    /// Offset of the first content byte.
    content_start: usize,
}

/// Matches `<wsa:Local xmlns:wsa="…"…>` at `pos`. Self-closing tags are
/// rejected: the tree path re-emits empty headers as `<x></x>`.
fn scan_wsa_open(src: &str, pos: usize) -> Option<(&str, OpenTag<'_>)> {
    let after_lt = src[pos..].strip_prefix("<wsa:")?;
    let name_len = after_lt.bytes().position(|b| !b.is_ascii_alphanumeric())?;
    if name_len == 0 {
        return None;
    }
    let local = &after_lt[..name_len];
    let after_ns = after_lt[name_len..].strip_prefix(XMLNS_WSA)?;
    let gt = after_ns.find('>')?;
    if after_ns[..gt].ends_with('/') {
        return None;
    }
    let extra = &after_ns[..gt];
    let content_start = pos + "<wsa:".len() + name_len + XMLNS_WSA.len() + gt + 1;
    Some((local, OpenTag { extra, content_start }))
}

/// Matches `text</wsa:local>` with canonically-escaped text. Returns the
/// decoded text (borrowed from `src` unless it needed unescaping — the
/// canonical URIs and uuids on the hot path never do) and the offset past
/// the close tag.
fn scan_text_content<'a>(
    src: &'a str,
    content_start: usize,
    local: &str,
) -> Option<(Cow<'a, str>, usize)> {
    let rest = &src[content_start..];
    let lt = wsd_xml::swar::find_byte(rest.as_bytes(), b'<')?;
    let raw = &rest[..lt];
    rest[lt..]
        .strip_prefix("</wsa:")?
        .strip_prefix(local)?
        .strip_prefix('>')?;
    let value = unescape(raw)?;
    if escape_text(&value) != raw {
        return None;
    }
    let end = content_start + lt + "</wsa:".len() + local.len() + 1;
    Some((value, end))
}

/// Matches `<wsa:Address>addr</wsa:Address></wsa:local>` — the canonical
/// serialization of an address-only EPR. Reference properties/parameters
/// (or any other child) fall back to the tree path.
fn scan_epr_content<'a>(
    src: &'a str,
    content_start: usize,
    local: &str,
) -> Option<(Cow<'a, str>, usize)> {
    let rest = src[content_start..].strip_prefix("<wsa:Address>")?;
    let lt = wsd_xml::swar::find_byte(rest.as_bytes(), b'<')?;
    let raw = &rest[..lt];
    rest[lt..]
        .strip_prefix("</wsa:Address>")?
        .strip_prefix("</wsa:")?
        .strip_prefix(local)?
        .strip_prefix('>')?;
    let addr = unescape(raw)?;
    if escape_text(&addr) != raw {
        return None;
    }
    let end = content_start
        + "<wsa:Address>".len()
        + lt
        + "</wsa:Address>".len()
        + "</wsa:".len()
        + local.len()
        + 1;
    Some((addr, end))
}

/// Emits the canonical serialization of a text-only WSA header —
/// byte-identical to `write_element_into(&text_header(local, value))`
/// without building the element.
fn push_text_header(out: &mut String, local: &str, value: &str) {
    out.push_str("<wsa:");
    out.push_str(local);
    out.push_str(XMLNS_WSA);
    out.push('>');
    push_escaped_text(value, out);
    out.push_str("</wsa:");
    out.push_str(local);
    out.push('>');
}

/// Emits the canonical serialization of an address-only EPR header —
/// byte-identical to `write_element_into(&EndpointReference::new(addr)
/// .to_element(local))` without building the elements.
fn push_epr_header(out: &mut String, local: &str, address: &str) {
    out.push_str("<wsa:");
    out.push_str(local);
    out.push_str(XMLNS_WSA);
    out.push_str("><wsa:Address>");
    push_escaped_text(address, out);
    out.push_str("</wsa:Address></wsa:");
    out.push_str(local);
    out.push('>');
}

impl<'a> ScannedWsa<'a> {
    /// Decoded `wsa:MessageID` carrying the scan input's lifetime —
    /// borrowed from the envelope bytes unless unescaping had to own it
    /// (canonical ids never do), so callers can outlive the scan without
    /// copying.
    pub fn message_id_cow(&self) -> Option<Cow<'a, str>> {
        self.message_id.as_ref().map(|(v, _)| v.clone())
    }
}

impl ScannedWsa<'_> {
    /// Decoded `wsa:To`, if present.
    pub fn to(&self) -> Option<&str> {
        self.to.as_ref().map(|(v, _)| v.as_ref())
    }

    /// Decoded `wsa:MessageID`, if present.
    pub fn message_id(&self) -> Option<&str> {
        self.message_id.as_ref().map(|(v, _)| v.as_ref())
    }

    /// Decoded first `wsa:RelatesTo` — the reply-correlation key.
    pub fn correlation_id(&self) -> Option<&str> {
        self.relates_to_first.as_ref().map(|(v, _)| v.as_ref())
    }

    fn push_raw(&self, out: &mut String, span: &Range<usize>) {
        out.push_str(&self.src[span.clone()]);
    }

    /// The forward rewrite (paper §4.2 step 3), spliced: `To` becomes
    /// `physical_to`, `ReplyTo` (and `FaultTo`, when present) become the
    /// dispatcher's address, `minted_id` is inserted when the message
    /// carried no `MessageID`; every other byte is copied verbatim.
    /// Output is byte-identical to `rewrite_for_forward` + `to_xml()`.
    pub fn splice_forward(
        &self,
        physical_to: &str,
        dispatcher_address: &str,
        minted_id: Option<&str>,
    ) -> (String, RouteRecord) {
        let mut out = String::with_capacity(self.src.len() + 128);
        let record = self.splice_forward_into(physical_to, dispatcher_address, minted_id, &mut out);
        (out, record)
    }

    /// [`splice_forward`](Self::splice_forward), appending into a caller
    /// buffer (the checked-out `EnvelopeScratch`): rewritten headers are
    /// emitted as raw bytes — no element trees are built.
    pub fn splice_forward_into(
        &self,
        physical_to: &str,
        dispatcher_address: &str,
        minted_id: Option<&str>,
        out: &mut String,
    ) -> RouteRecord {
        out.reserve(self.src.len() + 128);
        out.push_str(&self.src[..self.run_start]);
        push_text_header(out, "To", physical_to);
        if let Some(span) = &self.from {
            self.push_raw(out, span);
        }
        push_epr_header(out, "ReplyTo", dispatcher_address);
        if self.fault_to.is_some() {
            push_epr_header(out, "FaultTo", dispatcher_address);
        }
        if let Some(span) = &self.action {
            self.push_raw(out, span);
        }
        match (&self.message_id, minted_id) {
            (Some((_, span)), _) => self.push_raw(out, span),
            (None, Some(id)) => push_text_header(out, "MessageID", id),
            (None, None) => {}
        }
        for (_, span) in self.relates_to_first.iter().chain(&self.relates_to_rest) {
            self.push_raw(out, span);
        }
        out.push_str(&self.src[self.run_end..]);
        RouteRecord {
            message_id: self
                .message_id()
                .or(minted_id)
                .map(str::to_string),
            original_reply_to: self
                .reply_to
                .as_ref()
                .map(|(a, _)| EndpointReference::new(a.clone().into_owned())),
            original_fault_to: self
                .fault_to
                .as_ref()
                .map(|(a, _)| EndpointReference::new(a.clone().into_owned())),
            logical_to: self.to.as_ref().map(|(v, _)| v.clone().into_owned()),
        }
    }

    /// The reply rewrite, spliced: `To` becomes `destination` (or is
    /// dropped when `None`); everything else is copied verbatim. Output
    /// is byte-identical to `rewrite_for_reply` + `to_xml()`.
    pub fn splice_reply(&self, destination: Option<&str>) -> String {
        let mut out = String::with_capacity(self.src.len() + 64);
        self.splice_reply_into(destination, &mut out);
        out
    }

    /// [`splice_reply`](Self::splice_reply), appending into a caller
    /// buffer (the checked-out `EnvelopeScratch`). The steady-state reply
    /// path allocates nothing here: spans are copied and the `To` header
    /// is emitted as raw bytes.
    pub fn splice_reply_into(&self, destination: Option<&str>, out: &mut String) {
        out.reserve(self.src.len() + 64);
        out.push_str(&self.src[..self.run_start]);
        if let Some(dest) = destination {
            push_text_header(out, "To", dest);
        }
        if let Some(span) = &self.from {
            self.push_raw(out, span);
        }
        if let Some((_, span)) = &self.reply_to {
            self.push_raw(out, span);
        }
        if let Some((_, span)) = &self.fault_to {
            self.push_raw(out, span);
        }
        if let Some(span) = &self.action {
            self.push_raw(out, span);
        }
        if let Some((_, span)) = &self.message_id {
            self.push_raw(out, span);
        }
        for (_, span) in self.relates_to_first.iter().chain(&self.relates_to_rest) {
            self.push_raw(out, span);
        }
        out.push_str(&self.src[self.run_end..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::WsaHeaders;
    use crate::rewrite::{rewrite_for_forward, rewrite_for_reply};
    use crate::{ANONYMOUS, WSA_NS};
    use wsd_soap::{rpc, Envelope, SoapVersion};

    const DISPATCHER: &str = "http://dispatcher.example.org/msg";
    const PHYSICAL: &str = "http://10.0.0.5:8888/echo";

    fn request(version: SoapVersion) -> Envelope {
        let mut env = rpc::echo_request(version, "hello <&> world");
        WsaHeaders::new()
            .to("http://dispatcher/svc/echo")
            .reply_to(EndpointReference::new("http://client:8080/cb"))
            .action("urn:wsd:echo:echo")
            .message_id("uuid:req-1")
            .apply(&mut env);
        env
    }

    #[test]
    fn xmlns_literal_matches_namespace_const() {
        assert_eq!(XMLNS_WSA, format!(" xmlns:wsa=\"{WSA_NS}\""));
    }

    #[test]
    fn scan_reads_canonical_headers() {
        for version in [SoapVersion::V11, SoapVersion::V12] {
            let xml = request(version).to_xml();
            let scanned = scan(&xml).expect("canonical envelope must scan");
            assert_eq!(scanned.to(), Some("http://dispatcher/svc/echo"));
            assert_eq!(scanned.message_id(), Some("uuid:req-1"));
            assert_eq!(scanned.correlation_id(), None);
        }
    }

    #[test]
    fn splice_forward_matches_tree_rewrite() {
        for version in [SoapVersion::V11, SoapVersion::V12] {
            let xml = request(version).to_xml();
            let scanned = scan(&xml).unwrap();
            let (spliced, record) = scanned.splice_forward(PHYSICAL, DISPATCHER, None);
            let mut env = Envelope::parse(&xml).unwrap();
            let tree_record = rewrite_for_forward(&mut env, PHYSICAL, DISPATCHER).unwrap();
            assert_eq!(spliced, env.to_xml());
            assert_eq!(record, tree_record);
        }
    }

    #[test]
    fn splice_forward_inserts_minted_message_id() {
        let mut env = rpc::echo_request(SoapVersion::V11, "x");
        WsaHeaders::new()
            .to("http://d/svc/echo")
            .reply_to(EndpointReference::new(ANONYMOUS))
            .apply(&mut env);
        let xml = env.to_xml();
        let scanned = scan(&xml).unwrap();
        let (spliced, record) = scanned.splice_forward(PHYSICAL, DISPATCHER, Some("uuid:minted"));
        // Tree path: mint first (as MsgCore does), then rewrite.
        let mut tree = Envelope::parse(&xml).unwrap();
        let mut h = WsaHeaders::from_envelope(&tree).unwrap();
        h.message_id = Some("uuid:minted".into());
        h.apply(&mut tree);
        rewrite_for_forward(&mut tree, PHYSICAL, DISPATCHER).unwrap();
        assert_eq!(spliced, tree.to_xml());
        assert_eq!(record.message_id.as_deref(), Some("uuid:minted"));
    }

    #[test]
    fn splice_reply_matches_tree_rewrite() {
        let mut reply = rpc::echo_response(SoapVersion::V11, "out");
        WsaHeaders::new()
            .to(DISPATCHER)
            .relates_to("uuid:req-1")
            .message_id("uuid:resp-1")
            .apply(&mut reply);
        let xml = reply.to_xml();
        let scanned = scan(&xml).unwrap();
        assert_eq!(scanned.correlation_id(), Some("uuid:req-1"));
        let record = RouteRecord {
            message_id: Some("uuid:req-1".into()),
            original_reply_to: Some(EndpointReference::new("http://client:8080/cb")),
            original_fault_to: None,
            logical_to: None,
        };
        let spliced = scanned.splice_reply(Some("http://client:8080/cb"));
        let mut env = Envelope::parse(&xml).unwrap();
        let dest = rewrite_for_reply(&mut env, &record, None).unwrap();
        assert_eq!(dest.as_deref(), Some("http://client:8080/cb"));
        assert_eq!(spliced, env.to_xml());
    }

    #[test]
    fn fault_to_is_redirected_when_present() {
        let mut env = request(SoapVersion::V11);
        let mut h = WsaHeaders::from_envelope(&env).unwrap();
        h.fault_to = Some(EndpointReference::new("http://client/faults"));
        h.apply(&mut env);
        let xml = env.to_xml();
        let scanned = scan(&xml).unwrap();
        let (spliced, record) = scanned.splice_forward(PHYSICAL, DISPATCHER, None);
        let mut tree = Envelope::parse(&xml).unwrap();
        let tree_record = rewrite_for_forward(&mut tree, PHYSICAL, DISPATCHER).unwrap();
        assert_eq!(spliced, tree.to_xml());
        assert_eq!(record, tree_record);
        assert_eq!(
            record.original_fault_to.unwrap().address,
            "http://client/faults"
        );
    }

    #[test]
    fn relates_to_with_relationship_type_passes_through() {
        let mut env = rpc::echo_response(SoapVersion::V12, "x");
        let mut h = WsaHeaders::new().message_id("uuid:r").to("http://d/msg");
        h.relates_to.push(("uuid:orig".into(), Some("wsa:Reply".into())));
        h.apply(&mut env);
        let xml = env.to_xml();
        let scanned = scan(&xml).expect("relationship type is canonical");
        assert_eq!(scanned.correlation_id(), Some("uuid:orig"));
    }

    #[test]
    fn anomalies_fall_back() {
        // No WSA headers at all.
        assert!(scan(&rpc::echo_request(SoapVersion::V11, "x").to_xml()).is_none());
        // Foreign header block.
        let mut env = request(SoapVersion::V11);
        env.headers.insert(
            0,
            wsd_xml::Element::new_ns(Some("sec"), "Token", "urn:sec")
                .declare_namespace(Some("sec"), "urn:sec")
                .with_text("t"),
        );
        assert!(scan(&env.to_xml()).is_none());
        // EPR with reference parameters.
        let mut env = request(SoapVersion::V11);
        let mut h = WsaHeaders::from_envelope(&env).unwrap();
        h.reply_to = Some(
            EndpointReference::new("http://client/cb")
                .with_parameter(wsd_xml::Element::new("session").with_text("42")),
        );
        h.apply(&mut env);
        assert!(scan(&env.to_xml()).is_none());
        // Non-canonical: whitespace inside the envelope open tag.
        let xml = request(SoapVersion::V11).to_xml();
        assert!(scan(&xml.replace("<SOAP-ENV:Header>", "<SOAP-ENV:Header >")).is_none());
        // Truncated document.
        assert!(scan(&xml[..xml.len() - 3]).is_none());
    }

    #[test]
    fn out_of_order_headers_fall_back() {
        // Hand-build an envelope whose MessageID precedes To.
        let xml = request(SoapVersion::V11).to_xml();
        let to = "<wsa:To xmlns:wsa=\"http://schemas.xmlsoap.org/ws/2004/08/addressing\">http://dispatcher/svc/echo</wsa:To>";
        assert!(xml.contains(to));
        let swapped = xml.replacen(to, "", 1).replacen(
            "</SOAP-ENV:Header>",
            &format!("{to}</SOAP-ENV:Header>"),
            1,
        );
        assert!(scan(&swapped).is_none());
    }
}
