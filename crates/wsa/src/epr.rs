//! Endpoint references: an address plus opaque reference properties /
//! parameters that must be echoed back to the endpoint.

use wsd_xml::{Element, Node};

use crate::{WsaError, WSA_NS};

/// A WS-Addressing endpoint reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointReference {
    /// The endpoint URI.
    pub address: String,
    /// `ReferenceProperties` children (opaque to everyone but the
    /// endpoint).
    pub reference_properties: Vec<Element>,
    /// `ReferenceParameters` children.
    pub reference_parameters: Vec<Element>,
}

impl EndpointReference {
    /// An EPR with just an address.
    pub fn new(address: impl Into<String>) -> Self {
        EndpointReference {
            address: address.into(),
            // wsd-lint: allow(alloc-in-drain): empty Vec::new never touches the allocator
            reference_properties: Vec::new(),
            // wsd-lint: allow(alloc-in-drain): empty Vec::new never touches the allocator
            reference_parameters: Vec::new(),
        }
    }

    /// Whether this is the anonymous ("reply on the same connection")
    /// endpoint.
    pub fn is_anonymous(&self) -> bool {
        self.address == crate::ANONYMOUS
    }

    /// Appends a reference property. Returns `self` for chaining.
    pub fn with_property(mut self, el: Element) -> Self {
        self.reference_properties.push(el);
        self
    }

    /// Appends a reference parameter. Returns `self` for chaining.
    pub fn with_parameter(mut self, el: Element) -> Self {
        self.reference_parameters.push(el);
        self
    }

    /// Builds this EPR as an element named `local` (e.g. `ReplyTo`,
    /// `From`, `FaultTo`, `EndpointReference`) in the WSA namespace; the
    /// `wsa` prefix is declared on the element so it is self-contained.
    pub fn to_element(&self, local: &str) -> Element {
        let mut el = Element::new_ns(Some("wsa"), local, WSA_NS)
            .declare_namespace(Some("wsa"), WSA_NS);
        el.children.push(Node::Element(
            Element::new_ns(Some("wsa"), "Address", WSA_NS).with_text(self.address.clone()),
        ));
        if !self.reference_properties.is_empty() {
            let mut props = Element::new_ns(Some("wsa"), "ReferenceProperties", WSA_NS);
            for p in &self.reference_properties {
                props.children.push(Node::Element(p.clone()));
            }
            el.children.push(Node::Element(props));
        }
        if !self.reference_parameters.is_empty() {
            let mut params = Element::new_ns(Some("wsa"), "ReferenceParameters", WSA_NS);
            for p in &self.reference_parameters {
                params.children.push(Node::Element(p.clone()));
            }
            el.children.push(Node::Element(params));
        }
        el
    }

    /// Reads an EPR-shaped element. `what` names the header for error
    /// messages.
    pub fn from_element(el: &Element, what: &'static str) -> Result<Self, WsaError> {
        let address = el
            .find_child(Some(WSA_NS), "Address")
            .map(|a| a.text())
            .ok_or(WsaError::MissingAddress(what))?;
        let reference_properties = el
            .find_child(Some(WSA_NS), "ReferenceProperties")
            .map(|p| p.child_elements().cloned().collect())
            .unwrap_or_default();
        let reference_parameters = el
            .find_child(Some(WSA_NS), "ReferenceParameters")
            .map(|p| p.child_elements().cloned().collect())
            .unwrap_or_default();
        Ok(EndpointReference {
            address,
            reference_properties,
            reference_parameters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsd_xml::Document;

    fn reparse(el: &Element) -> Element {
        Document::parse(&wsd_xml::write_element(el)).unwrap().root
    }

    #[test]
    fn minimal_epr_round_trips() {
        let epr = EndpointReference::new("http://example.org/mbox/1");
        let el = reparse(&epr.to_element("ReplyTo"));
        assert_eq!(el.name.local, "ReplyTo");
        let got = EndpointReference::from_element(&el, "ReplyTo").unwrap();
        assert_eq!(got, epr);
    }

    #[test]
    fn properties_and_parameters_round_trip() {
        let epr = EndpointReference::new("http://example.org/svc")
            .with_property(Element::new("key").with_text("abc"))
            .with_parameter(Element::new("session").with_text("42"));
        let el = reparse(&epr.to_element("EndpointReference"));
        let got = EndpointReference::from_element(&el, "EndpointReference").unwrap();
        assert_eq!(got.reference_properties.len(), 1);
        assert_eq!(got.reference_parameters.len(), 1);
        assert_eq!(got.reference_parameters[0].text(), "42");
    }

    #[test]
    fn missing_address_is_error() {
        let el = Element::new_ns(Some("wsa"), "ReplyTo", WSA_NS)
            .declare_namespace(Some("wsa"), WSA_NS);
        let el = reparse(&el);
        assert_eq!(
            EndpointReference::from_element(&el, "ReplyTo"),
            Err(WsaError::MissingAddress("ReplyTo"))
        );
    }

    #[test]
    fn anonymous_detection() {
        assert!(EndpointReference::new(crate::ANONYMOUS).is_anonymous());
        assert!(!EndpointReference::new("http://x").is_anonymous());
    }
}
