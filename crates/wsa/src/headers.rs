//! The WS-Addressing header block set of one message.

use wsd_soap::Envelope;
use wsd_xml::Element;

use crate::epr::EndpointReference;
use crate::{WsaError, WSA_NS};

/// A parsed (or to-be-written) set of addressing headers.
///
/// `apply` replaces any existing WSA headers on an envelope with this set,
/// in canonical order; `from_envelope` reads them back.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WsaHeaders {
    /// `wsa:To` — destination URI.
    pub to: Option<String>,
    /// `wsa:From` — source endpoint.
    pub from: Option<EndpointReference>,
    /// `wsa:ReplyTo` — where replies go.
    pub reply_to: Option<EndpointReference>,
    /// `wsa:FaultTo` — where faults go.
    pub fault_to: Option<EndpointReference>,
    /// `wsa:Action` — semantic action URI.
    pub action: Option<String>,
    /// `wsa:MessageID` — unique message id.
    pub message_id: Option<String>,
    /// `wsa:RelatesTo` — `(message id, optional RelationshipType)` pairs.
    pub relates_to: Vec<(String, Option<String>)>,
}

impl WsaHeaders {
    /// An empty header set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `wsa:To`. Returns `self` for chaining.
    pub fn to(mut self, to: impl Into<String>) -> Self {
        self.to = Some(to.into());
        self
    }

    /// Sets `wsa:From`.
    pub fn from(mut self, epr: EndpointReference) -> Self {
        self.from = Some(epr);
        self
    }

    /// Sets `wsa:ReplyTo`.
    pub fn reply_to(mut self, epr: EndpointReference) -> Self {
        self.reply_to = Some(epr);
        self
    }

    /// Sets `wsa:FaultTo`.
    pub fn fault_to(mut self, epr: EndpointReference) -> Self {
        self.fault_to = Some(epr);
        self
    }

    /// Sets `wsa:Action`.
    pub fn action(mut self, action: impl Into<String>) -> Self {
        self.action = Some(action.into());
        self
    }

    /// Sets `wsa:MessageID`.
    pub fn message_id(mut self, id: impl Into<String>) -> Self {
        self.message_id = Some(id.into());
        self
    }

    /// Adds a `wsa:RelatesTo` (default relationship: reply).
    pub fn relates_to(mut self, id: impl Into<String>) -> Self {
        self.relates_to.push((id.into(), None));
        self
    }

    /// Reads the addressing headers of an envelope. Headers that are
    /// absent stay `None`; singleton headers appearing more than once are
    /// an error.
    pub fn from_envelope(env: &Envelope) -> Result<WsaHeaders, WsaError> {
        let ns = Some(WSA_NS);
        let mut out = WsaHeaders::new();
        let mut seen = [false; 6];
        for h in &env.headers {
            if h.namespace.as_deref() != ns {
                continue;
            }
            match h.name.local.as_str() {
                "To" => {
                    take_once(&mut seen[0], "To")?;
                    out.to = Some(h.text());
                }
                "From" => {
                    take_once(&mut seen[1], "From")?;
                    out.from = Some(EndpointReference::from_element(h, "From")?);
                }
                "ReplyTo" => {
                    take_once(&mut seen[2], "ReplyTo")?;
                    out.reply_to = Some(EndpointReference::from_element(h, "ReplyTo")?);
                }
                "FaultTo" => {
                    take_once(&mut seen[3], "FaultTo")?;
                    out.fault_to = Some(EndpointReference::from_element(h, "FaultTo")?);
                }
                "Action" => {
                    take_once(&mut seen[4], "Action")?;
                    out.action = Some(h.text());
                }
                "MessageID" => {
                    take_once(&mut seen[5], "MessageID")?;
                    out.message_id = Some(h.text());
                }
                "RelatesTo" => {
                    let rel = h.attr("RelationshipType").map(str::to_string);
                    out.relates_to.push((h.text(), rel));
                }
                _ => {}
            }
        }
        Ok(out)
    }

    /// Replaces the envelope's WSA headers with this set.
    pub fn apply(&self, env: &mut Envelope) {
        for name in [
            "To",
            "From",
            "ReplyTo",
            "FaultTo",
            "Action",
            "MessageID",
            "RelatesTo",
        ] {
            env.remove_headers(Some(WSA_NS), name);
        }
        let mut blocks: Vec<Element> = Vec::new();
        if let Some(to) = &self.to {
            blocks.push(text_header("To", to));
        }
        if let Some(from) = &self.from {
            blocks.push(from.to_element("From"));
        }
        if let Some(reply_to) = &self.reply_to {
            blocks.push(reply_to.to_element("ReplyTo"));
        }
        if let Some(fault_to) = &self.fault_to {
            blocks.push(fault_to.to_element("FaultTo"));
        }
        if let Some(action) = &self.action {
            blocks.push(text_header("Action", action));
        }
        if let Some(id) = &self.message_id {
            blocks.push(text_header("MessageID", id));
        }
        for (id, rel) in &self.relates_to {
            let mut h = text_header("RelatesTo", id);
            if let Some(rel) = rel {
                h.set_attr("RelationshipType", rel.clone());
            }
            blocks.push(h);
        }
        env.headers.extend(blocks);
    }
}

fn take_once(seen: &mut bool, what: &'static str) -> Result<(), WsaError> {
    if *seen {
        Err(WsaError::Duplicated(what))
    } else {
        *seen = true;
        Ok(())
    }
}

pub(crate) fn text_header(local: &str, value: &str) -> Element {
    Element::new_ns(Some("wsa"), local, WSA_NS)
        .declare_namespace(Some("wsa"), WSA_NS)
        .with_text(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsd_soap::{rpc, SoapVersion};

    fn sample() -> WsaHeaders {
        WsaHeaders::new()
            .to("http://dispatcher/svc/echo")
            .from(EndpointReference::new("http://client"))
            .reply_to(EndpointReference::new("http://msgbox/mbox-1"))
            .action("urn:wsd:echo:echo")
            .message_id("uuid:abc")
    }

    #[test]
    fn apply_then_read_round_trips() {
        let mut env = rpc::echo_request(SoapVersion::V11, "x");
        sample().apply(&mut env);
        // Serialize and reparse: the headers must survive the wire.
        let env = Envelope::parse(&env.to_xml()).unwrap();
        let got = WsaHeaders::from_envelope(&env).unwrap();
        assert_eq!(got, sample());
    }

    #[test]
    fn apply_replaces_existing_headers() {
        let mut env = rpc::echo_request(SoapVersion::V11, "x");
        sample().apply(&mut env);
        let second = WsaHeaders::new().to("http://other").message_id("uuid:2");
        second.apply(&mut env);
        let got = WsaHeaders::from_envelope(&env).unwrap();
        assert_eq!(got.to.as_deref(), Some("http://other"));
        assert_eq!(got.message_id.as_deref(), Some("uuid:2"));
        assert!(got.reply_to.is_none());
    }

    #[test]
    fn apply_preserves_non_wsa_headers() {
        let mut env = rpc::echo_request(SoapVersion::V11, "x").with_header(
            Element::new_ns(Some("sec"), "Token", "urn:sec")
                .declare_namespace(Some("sec"), "urn:sec")
                .with_text("t"),
        );
        sample().apply(&mut env);
        assert!(env.find_header(Some("urn:sec"), "Token").is_some());
    }

    #[test]
    fn relates_to_with_relationship_type() {
        let mut env = rpc::echo_request(SoapVersion::V12, "x");
        let mut h = WsaHeaders::new().message_id("uuid:r");
        h.relates_to.push(("uuid:orig".into(), Some("wsa:Reply".into())));
        h.apply(&mut env);
        let env = Envelope::parse(&env.to_xml()).unwrap();
        let got = WsaHeaders::from_envelope(&env).unwrap();
        assert_eq!(
            got.relates_to,
            vec![("uuid:orig".to_string(), Some("wsa:Reply".to_string()))]
        );
    }

    #[test]
    fn duplicate_singleton_header_is_error() {
        let mut env = rpc::echo_request(SoapVersion::V11, "x");
        env.headers.push(text_header("To", "a"));
        env.headers.push(text_header("To", "b"));
        assert_eq!(
            WsaHeaders::from_envelope(&env),
            Err(WsaError::Duplicated("To"))
        );
    }

    #[test]
    fn multiple_relates_to_allowed() {
        let mut env = rpc::echo_request(SoapVersion::V11, "x");
        env.headers.push(text_header("RelatesTo", "uuid:1"));
        env.headers.push(text_header("RelatesTo", "uuid:2"));
        let got = WsaHeaders::from_envelope(&env).unwrap();
        assert_eq!(got.relates_to.len(), 2);
    }

    #[test]
    fn foreign_headers_ignored() {
        let mut env = rpc::echo_request(SoapVersion::V11, "x").with_header(
            Element::new_ns(Some("o"), "To", "urn:other")
                .declare_namespace(Some("o"), "urn:other")
                .with_text("not-wsa"),
        );
        let got = WsaHeaders::from_envelope(&env).unwrap();
        assert!(got.to.is_none());
        sample().apply(&mut env);
        assert!(env.find_header(Some("urn:other"), "To").is_some());
    }
}
