//! WS-Addressing (August 2004 member submission) for the WS-Dispatcher.
//!
//! The paper routes asynchronous messages with WS-Addressing [10]: the
//! MSG-Dispatcher parses the request's addressing headers, replaces the
//! client's return address with its own, and forwards the message; replies
//! are correlated back through `RelatesTo`. This crate implements the
//! header vocabulary ([`WsaHeaders`]), endpoint references
//! ([`EndpointReference`]), message-id generation ([`MsgIdGen`]) and the
//! dispatcher's header rewrite ([`rewrite`]).
//!
//! # Example
//!
//! ```
//! use wsd_soap::{Envelope, SoapVersion, rpc};
//! use wsd_wsa::{WsaHeaders, EndpointReference, ANONYMOUS};
//!
//! let mut env = rpc::echo_request(SoapVersion::V11, "hi");
//! let headers = WsaHeaders::new()
//!     .to("http://dispatcher/svc/echo")
//!     .reply_to(EndpointReference::new(ANONYMOUS))
//!     .action("urn:wsd:echo:echo")
//!     .message_id("uuid:1");
//! headers.apply(&mut env);
//! let read = WsaHeaders::from_envelope(&env).unwrap();
//! assert_eq!(read.to.as_deref(), Some("http://dispatcher/svc/echo"));
//! ```

#![warn(missing_docs)]

pub mod epr;
pub mod headers;
pub mod msgid;
pub mod rewrite;
pub mod splice;

pub use epr::EndpointReference;
pub use headers::WsaHeaders;
pub use msgid::MsgIdGen;
pub use rewrite::{correlation_id, rewrite_for_forward, rewrite_for_reply, RouteRecord};
pub use splice::{scan, ScannedWsa};

/// The WS-Addressing namespace the paper used (2004/08 member submission).
pub const WSA_NS: &str = "http://schemas.xmlsoap.org/ws/2004/08/addressing";

/// The anonymous endpoint URI: "reply on the same connection".
pub const ANONYMOUS: &str =
    "http://schemas.xmlsoap.org/ws/2004/08/addressing/role/anonymous";

/// Errors raised while reading addressing headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsaError {
    /// An EPR element with no `Address` child.
    MissingAddress(&'static str),
    /// A header that must appear at most once appeared twice.
    Duplicated(&'static str),
}

impl std::fmt::Display for WsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WsaError::MissingAddress(h) => write!(f, "{h} endpoint reference has no Address"),
            WsaError::Duplicated(h) => write!(f, "duplicate {h} header"),
        }
    }
}

impl std::error::Error for WsaError {}
