//! Message-id generation.
//!
//! Ids look like `uuid:xxxxxxxx-xxxx-4xxx-8xxx-xxxxxxxxxxxx` (UUIDv4
//! shaped). The generator is deterministic from its seed — the discrete-
//! event experiments depend on bit-identical reruns — and thread-safe: a
//! shared atomic counter is mixed through SplitMix64, so concurrent
//! callers never collide.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A seeded, thread-safe message-id generator.
#[derive(Clone)]
pub struct MsgIdGen {
    seed: u64,
    counter: Arc<AtomicU64>,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl MsgIdGen {
    /// Creates a generator; equal seeds yield equal id sequences.
    pub fn new(seed: u64) -> Self {
        MsgIdGen {
            seed,
            counter: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A generator seeded from the wall clock (non-deterministic).
    pub fn from_entropy() -> Self {
        // wsd-lint: allow(raw-clock): entropy seed for MessageID uniqueness, not a timing measurement
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self::new(splitmix64(nanos))
    }

    /// Produces the next unique id.
    pub fn next_id(&self) -> String {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let a = splitmix64(self.seed ^ n);
        let b = splitmix64(a ^ 0xA5A5_A5A5_A5A5_A5A5);
        // UUIDv4 shape: version nibble 4, variant bits 10.
        let time_low = (a >> 32) as u32;
        let time_mid = (a >> 16) as u16;
        let time_hi = 0x4000 | ((a as u16) & 0x0FFF);
        let clock_seq = 0x8000 | ((b >> 48) as u16 & 0x3FFF);
        let node = b & 0xFFFF_FFFF_FFFF;
        format!("uuid:{time_low:08x}-{time_mid:04x}-{time_hi:04x}-{clock_seq:04x}-{node:012x}")
    }
}

impl std::fmt::Debug for MsgIdGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsgIdGen").field("seed", &self.seed).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shape_is_uuid_urn() {
        let id = MsgIdGen::new(1).next_id();
        assert!(id.starts_with("uuid:"), "{id}");
        let hex = &id[5..];
        let parts: Vec<&str> = hex.split('-').collect();
        assert_eq!(
            parts.iter().map(|p| p.len()).collect::<Vec<_>>(),
            vec![8, 4, 4, 4, 12]
        );
        assert!(parts[2].starts_with('4'), "version nibble: {id}");
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = MsgIdGen::new(42);
        let b = MsgIdGen::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_id(), b.next_id());
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(MsgIdGen::new(1).next_id(), MsgIdGen::new(2).next_id());
    }

    #[test]
    fn no_collisions_in_many_ids() {
        let g = MsgIdGen::new(7);
        let ids: HashSet<String> = (0..10_000).map(|_| g.next_id()).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn clones_share_the_counter() {
        let g = MsgIdGen::new(9);
        let h = g.clone();
        let a = g.next_id();
        let b = h.next_id();
        assert_ne!(a, b);
    }

    #[test]
    fn concurrent_generation_is_unique() {
        let g = MsgIdGen::new(3);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next_id()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id across threads");
            }
        }
    }
}
