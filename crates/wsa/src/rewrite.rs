//! The MSG-Dispatcher's header rewrite (paper §4.2, Figure 3 step 3):
//! a `CxThread` maps the logical `To` to the service's physical address
//! and replaces the client's return address with the dispatcher's own, so
//! the service's reply flows back through the dispatcher. The original
//! return address is kept in a [`RouteRecord`], keyed by `MessageID`, for
//! the reply path.

use wsd_soap::Envelope;

use crate::epr::EndpointReference;
use crate::headers::WsaHeaders;
use crate::WsaError;

/// What the dispatcher must remember to route the reply of one forwarded
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteRecord {
    /// `MessageID` of the forwarded request (replies carry it in
    /// `RelatesTo`).
    pub message_id: Option<String>,
    /// Where the client originally asked replies to go (a mailbox, its own
    /// endpoint, or anonymous).
    pub original_reply_to: Option<EndpointReference>,
    /// Where the client originally asked faults to go.
    pub original_fault_to: Option<EndpointReference>,
    /// The logical address the client targeted (before resolution).
    pub logical_to: Option<String>,
}

/// Rewrites a client request for forwarding to the resolved service:
/// `To` becomes `physical_to`, `ReplyTo`/`FaultTo` become the dispatcher's
/// address. Returns the record needed to route the reply.
///
/// The rewrite is idempotent: forwarding an already-forwarded message
/// (e.g. through a second dispatcher hop with the same address) changes
/// nothing but the stored original addresses.
pub fn rewrite_for_forward(
    env: &mut Envelope,
    physical_to: &str,
    dispatcher_address: &str,
) -> Result<RouteRecord, WsaError> {
    let mut headers = WsaHeaders::from_envelope(env)?;
    let record = RouteRecord {
        message_id: headers.message_id.clone(),
        original_reply_to: headers.reply_to.clone(),
        original_fault_to: headers.fault_to.clone(),
        logical_to: headers.to.clone(),
    };
    headers.to = Some(physical_to.to_string());
    headers.reply_to = Some(EndpointReference::new(dispatcher_address));
    if headers.fault_to.is_some() {
        headers.fault_to = Some(EndpointReference::new(dispatcher_address));
    }
    headers.apply(env);
    Ok(record)
}

/// Rewrites a service reply for delivery to the client: `To` becomes the
/// client's original `ReplyTo` address (or `fallback` — typically a
/// mailbox — when the client never supplied one). The reply's `RelatesTo`
/// correlation is left untouched.
pub fn rewrite_for_reply(
    env: &mut Envelope,
    record: &RouteRecord,
    fallback: Option<&str>,
) -> Result<Option<String>, WsaError> {
    let mut headers = WsaHeaders::from_envelope(env)?;
    let destination = record
        .original_reply_to
        .as_ref()
        .filter(|epr| !epr.is_anonymous())
        .map(|epr| epr.address.clone())
        .or_else(|| fallback.map(str::to_string));
    headers.to = destination.clone();
    headers.apply(env);
    Ok(destination)
}

/// The `RelatesTo` id a reply correlates to, if any — the dispatcher's
/// key back into its route table.
pub fn correlation_id(env: &Envelope) -> Result<Option<String>, WsaError> {
    let headers = WsaHeaders::from_envelope(env)?;
    Ok(headers.relates_to.first().map(|(id, _)| id.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsd_soap::{rpc, SoapVersion};

    const DISPATCHER: &str = "http://dispatcher.example.org/msg";

    fn request() -> Envelope {
        let mut env = rpc::echo_request(SoapVersion::V11, "hi");
        WsaHeaders::new()
            .to("logical:echo")
            .reply_to(EndpointReference::new("http://client.example.org:8080/cb"))
            .message_id("uuid:req-1")
            .action("urn:wsd:echo:echo")
            .apply(&mut env);
        env
    }

    #[test]
    fn forward_rewrites_to_and_reply_to() {
        let mut env = request();
        let record =
            rewrite_for_forward(&mut env, "http://10.0.0.5:8888/echo", DISPATCHER).unwrap();
        let h = WsaHeaders::from_envelope(&env).unwrap();
        assert_eq!(h.to.as_deref(), Some("http://10.0.0.5:8888/echo"));
        assert_eq!(h.reply_to.unwrap().address, DISPATCHER);
        // Untouched headers survive.
        assert_eq!(h.action.as_deref(), Some("urn:wsd:echo:echo"));
        assert_eq!(h.message_id.as_deref(), Some("uuid:req-1"));
        // The record remembers the originals.
        assert_eq!(record.logical_to.as_deref(), Some("logical:echo"));
        assert_eq!(
            record.original_reply_to.unwrap().address,
            "http://client.example.org:8080/cb"
        );
    }

    #[test]
    fn forward_is_idempotent_on_headers() {
        let mut env = request();
        rewrite_for_forward(&mut env, "http://phys", DISPATCHER).unwrap();
        let first = WsaHeaders::from_envelope(&env).unwrap();
        rewrite_for_forward(&mut env, "http://phys", DISPATCHER).unwrap();
        let second = WsaHeaders::from_envelope(&env).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn forward_survives_serialization() {
        let mut env = request();
        rewrite_for_forward(&mut env, "http://phys", DISPATCHER).unwrap();
        let reparsed = Envelope::parse(&env.to_xml()).unwrap();
        let h = WsaHeaders::from_envelope(&reparsed).unwrap();
        assert_eq!(h.to.as_deref(), Some("http://phys"));
    }

    #[test]
    fn fault_to_redirected_only_when_present() {
        let mut env = request();
        rewrite_for_forward(&mut env, "http://phys", DISPATCHER).unwrap();
        assert!(WsaHeaders::from_envelope(&env).unwrap().fault_to.is_none());

        let mut env = request();
        {
            let mut h = WsaHeaders::from_envelope(&env).unwrap();
            h.fault_to = Some(EndpointReference::new("http://client/faults"));
            h.apply(&mut env);
        }
        let record = rewrite_for_forward(&mut env, "http://phys", DISPATCHER).unwrap();
        let h = WsaHeaders::from_envelope(&env).unwrap();
        assert_eq!(h.fault_to.unwrap().address, DISPATCHER);
        assert_eq!(record.original_fault_to.unwrap().address, "http://client/faults");
    }

    #[test]
    fn reply_routes_to_original_reply_to() {
        let mut req = request();
        let record = rewrite_for_forward(&mut req, "http://phys", DISPATCHER).unwrap();
        // The service constructs a reply relating to the request.
        let mut reply = rpc::echo_response(SoapVersion::V11, "hi");
        WsaHeaders::new()
            .to(DISPATCHER)
            .relates_to("uuid:req-1")
            .message_id("uuid:resp-1")
            .apply(&mut reply);
        let dest = rewrite_for_reply(&mut reply, &record, None).unwrap();
        assert_eq!(dest.as_deref(), Some("http://client.example.org:8080/cb"));
        let h = WsaHeaders::from_envelope(&reply).unwrap();
        assert_eq!(h.to.as_deref(), Some("http://client.example.org:8080/cb"));
        assert_eq!(h.relates_to[0].0, "uuid:req-1");
    }

    #[test]
    fn reply_falls_back_to_mailbox_for_anonymous_clients() {
        let record = RouteRecord {
            message_id: Some("uuid:req-2".into()),
            original_reply_to: Some(EndpointReference::new(crate::ANONYMOUS)),
            original_fault_to: None,
            logical_to: None,
        };
        let mut reply = rpc::echo_response(SoapVersion::V11, "x");
        let dest =
            rewrite_for_reply(&mut reply, &record, Some("http://msgbox/mbox-7")).unwrap();
        assert_eq!(dest.as_deref(), Some("http://msgbox/mbox-7"));
    }

    #[test]
    fn reply_with_no_destination_returns_none() {
        let record = RouteRecord {
            message_id: None,
            original_reply_to: None,
            original_fault_to: None,
            logical_to: None,
        };
        let mut reply = rpc::echo_response(SoapVersion::V11, "x");
        assert_eq!(rewrite_for_reply(&mut reply, &record, None).unwrap(), None);
    }

    #[test]
    fn correlation_id_reads_relates_to() {
        let mut reply = rpc::echo_response(SoapVersion::V11, "x");
        assert_eq!(correlation_id(&reply).unwrap(), None);
        WsaHeaders::new().relates_to("uuid:q").apply(&mut reply);
        assert_eq!(correlation_id(&reply).unwrap().as_deref(), Some("uuid:q"));
    }
}
