//! Bench regression gate: compares a fresh benchmark JSON against the
//! checked-in reference and fails on latency regressions.
//!
//! ```text
//! bench_gate <reference.json> <fresh.json>
//! ```
//!
//! Both files are flattened to dotted-path → number maps
//! (`sweeps.2.reactor.p50_us` → 9.3). Keys present in *both* files and
//! matching a latency metric (`p50` or `ns_per` in the path) are
//! compared; the gate fails when a fresh value exceeds the reference by
//! more than the threshold (default 20%, `BENCH_GATE_THRESHOLD=0.30`
//! overrides). Throughput-free smoke runs only cover a subset of the
//! sweeps, so reference-only keys are reported but never fatal.
//!
//! A missing *reference* file is a warning, not a failure (exit 0): a
//! branch adding a new bench has no checked-in baseline yet, and the
//! gate must not block the run that would create one. A missing *fresh*
//! file is always an error — the bench that was supposed to produce it
//! did not run.
//!
//! Hand-rolled JSON parsing: the gate must run in the offline build
//! with no registry deps, exactly like wsd-lint.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Recursive-descent JSON reader producing only what the gate needs:
/// every number, keyed by its dotted path.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            b: text.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    if let Some(&e) = self.b.get(self.i) {
                        self.i += 1;
                        out.push(match e {
                            b'n' => '\n',
                            b't' => '\t',
                            other => other as char,
                        });
                    }
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".into())
    }

    fn value(&mut self, path: &str, out: &mut BTreeMap<String, f64>) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => {
                self.expect(b'{')?;
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(());
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    let sub = if path.is_empty() {
                        key
                    } else {
                        format!("{path}.{key}")
                    };
                    self.value(&sub, out)?;
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("bad object at byte {}", self.i)),
                    }
                }
            }
            Some(b'[') => {
                self.expect(b'[')?;
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(());
                }
                let mut idx = 0usize;
                loop {
                    self.value(&format!("{path}.{idx}"), out)?;
                    idx += 1;
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("bad array at byte {}", self.i)),
                    }
                }
            }
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b't') | Some(b'f') | Some(b'n') => {
                while self
                    .b
                    .get(self.i)
                    .is_some_and(|c| c.is_ascii_alphabetic())
                {
                    self.i += 1;
                }
                Ok(())
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                while self.b.get(self.i).is_some_and(|c| {
                    c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.i += 1;
                }
                let text = std::str::from_utf8(&self.b[start..self.i]).unwrap_or("");
                let n: f64 = text
                    .parse()
                    .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
                out.insert(path.to_string(), n);
                Ok(())
            }
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }
}

/// Flattens a JSON document to dotted-path → number.
fn flatten(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let mut p = Parser::new(text);
    p.value("", &mut out)?;
    Ok(out)
}

/// Latency metrics where "bigger" means "slower": gate only these.
fn is_latency_key(key: &str) -> bool {
    key.contains("p50") || key.contains("ns_per")
}

/// Allocation counts are gated on an *absolute* budget, not a ratio: at
/// near-zero baselines a percentage is meaningless (0 → 1 alloc/op is
/// +inf%, 100 → 119 would sneak under 20%). A fresh value may exceed the
/// reference by at most [`ALLOC_SLACK`] allocations per op.
fn is_alloc_key(key: &str) -> bool {
    key.contains("allocs_per_op")
}

/// Absolute headroom for `allocs_per_op` metrics.
const ALLOC_SLACK: f64 = 2.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [reference_path, fresh_path] = match args.as_slice() {
        [a, b] => [a.clone(), b.clone()],
        _ => {
            eprintln!("usage: bench_gate <reference.json> <fresh.json>");
            return ExitCode::from(2);
        }
    };
    let threshold: f64 = std::env::var("BENCH_GATE_THRESHOLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);

    let load = |path: &str| -> Result<BTreeMap<String, f64>, String> {
        // wsd-lint: allow(raw-file-io): bench JSON artifacts, not durable state
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        flatten(&text).map_err(|e| format!("{path}: {e}"))
    };
    // The fresh file first: its absence is fatal no matter what (the
    // bench didn't run), including when the reference is also missing.
    let fresh = match load(&fresh_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };
    let reference = match load(&reference_path) {
        Ok(r) => r,
        Err(e) if !std::path::Path::new(&reference_path).exists() => {
            eprintln!("bench_gate: WARN — no reference baseline ({e}); skipping gate");
            eprintln!("bench_gate: check in the fresh run as {reference_path} to arm it");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            // Present but unreadable/unparsable: that's corruption, not
            // a missing baseline.
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };

    let mut compared = 0usize;
    let mut regressions = Vec::new();
    for (key, &base) in reference
        .iter()
        .filter(|(k, _)| is_latency_key(k) || is_alloc_key(k))
    {
        let Some(&cur) = fresh.get(key) else {
            // Smoke runs cover a subset of the reference sweeps.
            println!("bench_gate: ~ {key} only in reference (base {base}) — skipped");
            continue;
        };
        compared += 1;
        let ratio = if base > 0.0 { cur / base } else { 1.0 };
        let regressed = if is_alloc_key(key) {
            cur > base + ALLOC_SLACK
        } else {
            ratio > 1.0 + threshold
        };
        let verdict = if regressed {
            regressions.push((key.clone(), base, cur, ratio));
            "REGRESSION"
        } else {
            "ok"
        };
        if is_alloc_key(key) {
            println!("bench_gate: {verdict:<10} {key}: {base} -> {cur} (budget +{ALLOC_SLACK})");
        } else {
            println!(
                "bench_gate: {verdict:<10} {key}: {base} -> {cur} ({:+.1}%)",
                (ratio - 1.0) * 100.0
            );
        }
    }

    if compared == 0 {
        eprintln!("bench_gate: no shared latency keys between {reference_path} and {fresh_path}");
        return ExitCode::from(2);
    }
    if !regressions.is_empty() {
        eprintln!(
            "bench_gate: FAIL — {} latency metric(s) regressed more than {:.0}%:",
            regressions.len(),
            threshold * 100.0
        );
        for (key, base, cur, ratio) in &regressions {
            eprintln!("  {key}: {base} -> {cur} ({:+.1}%)", (ratio - 1.0) * 100.0);
        }
        return ExitCode::FAILURE;
    }
    println!(
        "bench_gate: PASS — {compared} latency metric(s) within {:.0}% of reference",
        threshold * 100.0
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_nested_objects_and_arrays() {
        let m = flatten(
            r#"{"a": {"b": 1.5}, "sweeps": [{"p50_us": 2.0}, {"p50_us": 3.0}], "s": "x"}"#,
        )
        .unwrap();
        assert_eq!(m.get("a.b"), Some(&1.5));
        assert_eq!(m.get("sweeps.0.p50_us"), Some(&2.0));
        assert_eq!(m.get("sweeps.1.p50_us"), Some(&3.0));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn latency_keys_are_the_gated_subset() {
        assert!(is_latency_key("sweeps.0.reactor.p50_us"));
        assert!(is_latency_key("rewrite.splice_ns_per_op"));
        assert!(is_latency_key("drain_ns_per_msg.batch_4"));
        assert!(!is_latency_key("sweeps.0.reactor.p99_us"));
        assert!(!is_latency_key("samples"));
    }

    #[test]
    fn alloc_keys_are_absolute_gated() {
        assert!(is_alloc_key("route_raw.reply_allocs_per_op"));
        assert!(is_alloc_key("route_raw.forward_allocs_per_op"));
        assert!(!is_alloc_key("rewrite.splice_ns_per_op"));
        // An alloc key is not also ratio-gated as latency.
        assert!(!is_latency_key("route_raw.reply_allocs_per_op"));
    }

    #[test]
    fn booleans_nulls_and_negative_exponents_parse() {
        let m = flatten(r#"{"ok": true, "none": null, "n": -1.5e2}"#).unwrap();
        assert_eq!(m.get("n"), Some(&-150.0));
        assert_eq!(m.len(), 1);
    }
}
