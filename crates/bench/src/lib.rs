//! Shared helpers for the benchmark harness.
//!
//! The benches live in `benches/`, one file per paper artifact:
//!
//! * `table1_matrix` — Table 1's four interaction quadrants
//! * `fig4_rpc_low_broadband` — Figure 4 series points
//! * `fig5_rpc_high_connectivity` — Figure 5 series points
//! * `fig6_async_messaging` — Figure 6 series points + the OOM bug
//! * `protocol_stack` — per-layer micro-benches (XML/SOAP/WSA/HTTP)
//! * `concurrent_primitives` — the `wsd-concurrent` substrate
//! * `ablations` — design-choice ablations called out in DESIGN.md
//!
//! Simulation-backed benches measure the *wall time to simulate* a fixed
//! virtual window — i.e. simulator+stack efficiency — while their
//! *outputs* (messages/minute etc.) are the paper's reproduced series;
//! those are printed once per bench run for eyeballing.

/// Short virtual window for sim-backed benches, seconds.
pub const BENCH_WINDOW_SECS: u64 = 5;
