//! The `wsd-concurrent` substrate under contention: the queue between
//! the CxThread/WsThread stages, the registry's sharded map, and pool
//! dispatch overhead.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsd_concurrent::{FifoQueue, PoolConfig, ShardedMap, ThreadPool};

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue");
    g.bench_function("uncontended_push_pop", |b| {
        let q = FifoQueue::bounded(1024);
        b.iter(|| {
            q.push(1u64).unwrap();
            q.pop().unwrap()
        })
    });
    for producers in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("mpmc_10k_messages", producers),
            &producers,
            |b, &producers| {
                b.iter(|| {
                    let q = FifoQueue::bounded(256);
                    std::thread::scope(|s| {
                        for p in 0..producers {
                            let q = q.clone();
                            s.spawn(move || {
                                for i in 0..10_000 / producers {
                                    q.push(p * 100_000 + i).unwrap();
                                }
                            });
                        }
                        let q2 = q.clone();
                        s.spawn(move || {
                            let mut got = 0;
                            while got < 10_000 / producers * producers {
                                if q2.pop().is_ok() {
                                    got += 1;
                                }
                            }
                        });
                    });
                })
            },
        );
    }
    g.finish();
}

fn bench_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharded_map");
    // Ablation axis: shard count under concurrent readers (the
    // registry's workload: lookups dominate).
    for shards in [1usize, 4, 16, 64] {
        g.bench_with_input(
            BenchmarkId::new("concurrent_lookups", shards),
            &shards,
            |b, &shards| {
                let m: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::with_shards(shards));
                for i in 0..1024u64 {
                    m.insert(i, i);
                }
                b.iter(|| {
                    std::thread::scope(|s| {
                        for t in 0..4u64 {
                            let m = Arc::clone(&m);
                            s.spawn(move || {
                                let mut acc = 0u64;
                                for i in 0..5_000u64 {
                                    acc = acc.wrapping_add(
                                        m.get(&((i * 31 + t) % 1024)).unwrap_or(0),
                                    );
                                }
                                std::hint::black_box(acc)
                            });
                        }
                    })
                })
            },
        );
    }
    g.bench_function("insert_remove", |b| {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            m.insert(i, i);
            m.remove(&i)
        })
    });
    g.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("thread_pool");
    g.sample_size(20);
    for workers in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("dispatch_10k_tasks", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let pool = ThreadPool::new(PoolConfig::fixed("bench", workers)).unwrap();
                    let latch = wsd_concurrent::CountDownLatch::new(10_000);
                    for _ in 0..10_000 {
                        let latch = latch.clone();
                        pool.execute(move || latch.count_down()).unwrap();
                    }
                    latch.wait();
                    pool.shutdown();
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_queue, bench_map, bench_pool);
criterion_main!(benches);
