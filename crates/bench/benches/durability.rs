//! Durable msgbox costs: what the WAL charges per record and what the
//! store charges per message, measured on [`MemStorage`] so the numbers
//! are CPU costs (framing, CRC, lock traffic), not disk physics — the
//! real-fsync path is exercised by the `durability_smoke` binary.
//!
//! * `wal`: one durable append per record under `SyncMode::Always` vs
//!   a full `flush_batch` of appends amortized over one group-commit
//!   sync — the §4.1 claim that one fsync can cover many depositors.
//! * `recovery`: reopening a log of `RECOVERY_RECORDS` deposits —
//!   segment scan, CRC check, decode, replay, per record.
//! * `msgbox`: deposit→fetch round trip through [`DurableMsgBox`] with
//!   the body resident (memory budget uncapped) vs spilled (budget 0,
//!   every fetch reads the body back out of the segment).
//!
//! Set `BENCH_DURABILITY_JSON=<path>` to emit a machine-readable
//! summary (checked in as `BENCH_durability.json`, gated by
//! `bench_gate`); `CRITERION_SAMPLES` scales both the criterion run and
//! the JSON measurement.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion, Throughput};
use wsd_store::{DurableMsgBox, MemStorage, Op, StoreConfig, SyncMode, Wal, WalConfig};
use wsd_telemetry::Scope;

/// Matches the fig6 durability-wall storm body (240-byte pad).
const BODY_BYTES: usize = 240;
/// Records in the pre-built log the recovery bench reopens.
const RECOVERY_RECORDS: u64 = 1024;
/// Group-commit batch: the sync-triggering append covers all of these.
const FLUSH_BATCH: usize = 64;

fn body() -> String {
    "x".repeat(BODY_BYTES)
}

fn deposit_op(body: &str) -> Op {
    Op::Deposit {
        box_id: "mbox-bench".to_string(),
        received_at: 1,
        expires_at: u64::MAX,
        body: body.to_string(),
    }
}

fn wal_config(sync: SyncMode) -> WalConfig {
    WalConfig {
        segment_bytes: 64 * 1024 * 1024,
        sync,
    }
}

fn open_wal(sync: SyncMode) -> Wal {
    let (wal, _) = Wal::open(
        wal_config(sync),
        Box::new(MemStorage::new()),
        &Scope::noop(),
        |_, _| {},
    )
    .expect("open WAL over fresh MemStorage");
    wal
}

/// A log of `RECOVERY_RECORDS` durable deposits, for reopening.
fn built_log() -> MemStorage {
    let mem = MemStorage::new();
    let wal = {
        let (wal, _) = Wal::open(
            wal_config(SyncMode::Always),
            Box::new(mem.clone()),
            &Scope::noop(),
            |_, _| {},
        )
        .expect("open WAL to build recovery log");
        wal
    };
    let op = deposit_op(&body());
    for _ in 0..RECOVERY_RECORDS {
        wal.append_durable(&op).expect("append to MemStorage");
    }
    mem
}

fn replay_log(mem: &MemStorage) -> u64 {
    let (_, report) = Wal::open(
        wal_config(SyncMode::Always),
        Box::new(mem.clone()),
        &Scope::noop(),
        |_, _| {},
    )
    .expect("reopen recovery log");
    report.records
}

fn store_config(memory_budget_bytes: u64) -> StoreConfig {
    StoreConfig {
        wal: wal_config(SyncMode::Always),
        memory_budget_bytes,
        quota_bytes_per_tenant: u64::MAX,
    }
}

/// A store with one mailbox, ready for deposit→fetch round trips.
fn open_store(memory_budget_bytes: u64) -> DurableMsgBox {
    let (store, _) = DurableMsgBox::open(
        store_config(memory_budget_bytes),
        Box::new(MemStorage::new()),
        &Scope::noop(),
        0,
    )
    .expect("open DurableMsgBox over fresh MemStorage");
    store
        .create("mbox-bench", "key", "default", 0)
        .expect("create bench mailbox");
    store
}

fn round_trip(store: &DurableMsgBox, body: &str) {
    store
        .deposit("mbox-bench", body.to_string(), 1, u64::MAX)
        .expect("deposit");
    let got = store.fetch("mbox-bench", "key", 1, 1).expect("fetch");
    assert_eq!(got.len(), 1);
}

fn bench(c: &mut Criterion) {
    let body = body();

    let mut g = c.benchmark_group("wal");
    g.throughput(Throughput::Elements(1));
    let always = open_wal(SyncMode::Always);
    let op = deposit_op(&body);
    g.bench_function("sync_always_append", |b| {
        b.iter(|| always.append_durable(std::hint::black_box(&op)).unwrap())
    });
    let grouped = open_wal(SyncMode::GroupCommit {
        flush_batch: FLUSH_BATCH,
        flush_interval: Duration::from_millis(2),
    });
    g.throughput(Throughput::Elements(FLUSH_BATCH as u64));
    g.bench_function(format!("group_commit_batch_{FLUSH_BATCH}"), |b| {
        b.iter(|| {
            let mut last = 0;
            for _ in 0..FLUSH_BATCH {
                last = grouped.append(std::hint::black_box(&op)).unwrap().lsn;
            }
            grouped.commit(last).unwrap();
        })
    });
    g.finish();

    let mut g = c.benchmark_group("recovery");
    let log = built_log();
    g.throughput(Throughput::Elements(RECOVERY_RECORDS));
    g.bench_function(format!("replay_{RECOVERY_RECORDS}_records"), |b| {
        b.iter(|| assert_eq!(replay_log(std::hint::black_box(&log)), RECOVERY_RECORDS))
    });
    g.finish();

    let mut g = c.benchmark_group("msgbox");
    g.throughput(Throughput::Elements(1));
    let resident = open_store(u64::MAX);
    g.bench_function("deposit_fetch_resident", |b| {
        b.iter(|| round_trip(&resident, std::hint::black_box(&body)))
    });
    let spilled = open_store(0);
    g.bench_function("deposit_fetch_spilled", |b| {
        b.iter(|| round_trip(&spilled, std::hint::black_box(&body)))
    });
    g.finish();
}

criterion_group!(benches, bench);

/// Times `f` over `reps` runs (one untimed warmup) and returns ns/run.
fn time_ns(reps: u64, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

fn emit_json(path: &str) {
    let samples: u64 = std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let body = body();
    let op = deposit_op(&body);
    let reps = samples * 200;

    let always = open_wal(SyncMode::Always);
    let always_ns = time_ns(reps, || {
        always.append_durable(std::hint::black_box(&op)).unwrap();
    });
    let grouped = open_wal(SyncMode::GroupCommit {
        flush_batch: FLUSH_BATCH,
        flush_interval: Duration::from_millis(2),
    });
    let grouped_ns = time_ns(reps.div_ceil(FLUSH_BATCH as u64).max(5), || {
        let mut last = 0;
        for _ in 0..FLUSH_BATCH {
            last = grouped.append(std::hint::black_box(&op)).unwrap().lsn;
        }
        grouped.commit(last).unwrap();
    }) / FLUSH_BATCH as f64;

    let log = built_log();
    let replay_ns = time_ns((samples / 2).max(5), || {
        assert_eq!(replay_log(std::hint::black_box(&log)), RECOVERY_RECORDS);
    }) / RECOVERY_RECORDS as f64;

    let resident = open_store(u64::MAX);
    let resident_ns = time_ns(reps, || round_trip(&resident, &body));
    let spilled = open_store(0);
    let spilled_ns = time_ns(reps, || round_trip(&spilled, &body));

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"durability\",\n",
            "  \"samples\": {samples},\n",
            "  \"body_bytes\": {body_bytes},\n",
            "  \"wal\": {{\n",
            "    \"sync_always_ns_per_record\": {always:.1},\n",
            "    \"group_commit_batch{batch}_ns_per_record\": {grouped:.1},\n",
            "    \"group_commit_speedup\": {speedup:.2}\n",
            "  }},\n",
            "  \"recovery\": {{\n",
            "    \"records\": {records},\n",
            "    \"replay_ns_per_record\": {replay:.1}\n",
            "  }},\n",
            "  \"msgbox\": {{\n",
            "    \"deposit_fetch_resident_ns_per_msg\": {resident:.1},\n",
            "    \"deposit_fetch_spilled_ns_per_msg\": {spilled:.1}\n",
            "  }}\n",
            "}}\n"
        ),
        samples = samples,
        body_bytes = BODY_BYTES,
        always = always_ns,
        batch = FLUSH_BATCH,
        grouped = grouped_ns,
        speedup = always_ns / grouped_ns,
        records = RECOVERY_RECORDS,
        replay = replay_ns,
        resident = resident_ns,
        spilled = spilled_ns,
    );
    std::fs::write(path, &json).expect("write BENCH_durability.json");
    println!("wrote {path}");
}

fn main() {
    benches();
    if let Ok(path) = std::env::var("BENCH_DURABILITY_JSON") {
        emit_json(&path);
    }
}
