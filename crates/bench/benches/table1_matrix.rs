//! Table 1: wall-time to simulate each interaction quadrant, plus a
//! one-shot print of the reproduced matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use wsd_bench::BENCH_WINDOW_SECS;
use wsd_experiments::table1::{self, Quadrant};

fn bench(c: &mut Criterion) {
    // Print the reproduced table once, so the bench run doubles as a
    // regeneration of the artifact.
    table1::print(&table1::run(BENCH_WINDOW_SECS));

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    for quadrant in [
        Quadrant::RpcToRpc,
        Quadrant::RpcToMsg,
        Quadrant::MsgToRpc,
        Quadrant::MsgToMsg,
    ] {
        g.bench_function(format!("{quadrant:?}"), |b| {
            b.iter(|| std::hint::black_box(table1::run_one(quadrant, BENCH_WINDOW_SECS)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
