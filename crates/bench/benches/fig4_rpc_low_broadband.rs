//! Figure 4: wall-time to simulate the low-broadband RPC series at
//! representative client counts, plus a one-shot print of the series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsd_bench::BENCH_WINDOW_SECS;
use wsd_experiments::fig4;

fn bench(c: &mut Criterion) {
    fig4::print(&fig4::run(BENCH_WINDOW_SECS, &[10, 100, 500, 2000]));

    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for &clients in &[10usize, 100, 500] {
        g.bench_with_input(
            BenchmarkId::new("direct", clients),
            &clients,
            |b, &clients| {
                b.iter(|| std::hint::black_box(fig4::run_one(clients, false, BENCH_WINDOW_SECS)))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("dispatched", clients),
            &clients,
            |b, &clients| {
                b.iter(|| std::hint::black_box(fig4::run_one(clients, true, BENCH_WINDOW_SECS)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
