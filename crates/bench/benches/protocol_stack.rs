//! Per-layer micro-benches on the paper's 483-byte echo message: the
//! costs the dispatcher pays on every single message — XML parsing,
//! envelope interpretation, WS-Addressing rewrite, HTTP framing — for
//! both SOAP versions.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use wsd_core::url::Url;
use wsd_http::{parse_request_bytes, request_bytes, Request};
use wsd_soap::{rpc, Envelope, SoapVersion};
use wsd_wsa::{rewrite_for_forward, EndpointReference, WsaHeaders};

fn addressed_request(version: SoapVersion) -> Envelope {
    let mut env = rpc::echo_request(version, "benchmark payload");
    WsaHeaders::new()
        .to("http://dispatcher/svc/Echo")
        .reply_to(EndpointReference::new("http://client:9000/cb"))
        .message_id("uuid:bench-1")
        .action("urn:wsd:echo:echo")
        .apply(&mut env);
    env
}

fn bench(c: &mut Criterion) {
    // --- XML layer ---
    let xml_text = rpc::paper_echo_request().to_xml();
    let mut g = c.benchmark_group("xml");
    g.throughput(Throughput::Bytes(xml_text.len() as u64));
    g.bench_function("parse_463b_envelope", |b| {
        b.iter(|| wsd_xml::parse(std::hint::black_box(&xml_text)).unwrap())
    });
    let doc = wsd_xml::parse(&xml_text).unwrap();
    g.bench_function("write_463b_envelope", |b| {
        b.iter(|| wsd_xml::write(std::hint::black_box(&doc)))
    });
    g.finish();

    // --- SOAP layer ---
    let mut g = c.benchmark_group("soap");
    for version in [SoapVersion::V11, SoapVersion::V12] {
        let env = addressed_request(version);
        let text = env.to_xml();
        g.bench_function(format!("parse_envelope_{version:?}"), |b| {
            b.iter(|| Envelope::parse(std::hint::black_box(&text)).unwrap())
        });
        g.bench_function(format!("serialize_envelope_{version:?}"), |b| {
            b.iter(|| std::hint::black_box(&env).to_xml())
        });
    }
    g.finish();

    // --- WSA layer: the dispatcher's per-message rewrite ---
    let mut g = c.benchmark_group("wsa");
    let env = addressed_request(SoapVersion::V11);
    g.bench_function("read_headers", |b| {
        b.iter(|| WsaHeaders::from_envelope(std::hint::black_box(&env)).unwrap())
    });
    g.bench_function("rewrite_for_forward", |b| {
        b.iter_batched(
            || env.clone(),
            |mut e| {
                rewrite_for_forward(&mut e, "http://ws:8888/echo", "http://dispatcher/msg")
                    .unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();

    // --- HTTP layer ---
    let mut g = c.benchmark_group("http");
    let req = Request::soap_post(
        "dispatcher:8080",
        "/msg",
        SoapVersion::V11.content_type(),
        addressed_request(SoapVersion::V11).to_xml().into_bytes(),
    );
    let wire = request_bytes(&req);
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("parse_request", |b| {
        b.iter(|| parse_request_bytes(std::hint::black_box(&wire)).unwrap())
    });
    g.bench_function("serialize_request", |b| {
        b.iter(|| request_bytes(std::hint::black_box(&req)))
    });
    g.finish();

    // --- Full dispatcher decision (registry + rewrite) ---
    let registry = std::sync::Arc::new(wsd_core::registry::Registry::new());
    registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
    let core = wsd_core::msg::MsgCore::new(registry, "http://dispatcher/msg", 1);
    let mut g = c.benchmark_group("dispatcher");
    let mut n = 0u64;
    g.bench_function("route_one_message", |b| {
        b.iter_batched(
            || {
                n += 1;
                let mut e = rpc::echo_request(SoapVersion::V11, "x");
                WsaHeaders::new()
                    .to("http://dispatcher/svc/Echo")
                    .message_id(format!("uuid:{n}"))
                    .apply(&mut e);
                e
            },
            |e| core.route(e, 483, 0).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
