//! Connection scaling: thread-per-connection vs the reactor front end.
//!
//! The paper's threaded runtime pins one CxThread per open socket, so
//! thread count — and with it stack memory and scheduler load — grows
//! linearly with *open* connections even when almost all of them are
//! idle. The reactor front end multiplexes every parked connection onto
//! one event-loop thread and runs handlers on a fixed pool, so thread
//! count tracks *in-flight requests* instead.
//!
//! Criterion measures one echo round-trip while N-1 connections sit
//! idle (N = 64, 512) for both front ends. Set
//! `BENCH_CONNSCALE_JSON=<path>` to emit a machine-readable sweep over
//! 64/512/4096 mostly-idle connections recording peak thread count and
//! p50/p99 request latency per front end; `CONNSCALE_SMOKE=1` runs the
//! 64-connection sweep only and asserts the reactor's peak handler
//! thread count never exceeds the pool size (used by
//! `scripts/verify.sh connscale-smoke`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use wsd_concurrent::{PoolConfig, RejectionPolicy, ThreadPool};
use wsd_core::rt::{ReactorFrontEnd, RequestHandler};
use wsd_http::{
    duplex, serve_connection, HttpClient, Limits, PipeStream, Request, Response, Status,
};

/// Handler threads backing the reactor — the whole point is that this
/// stays fixed while connection counts grow by orders of magnitude.
const POOL_SIZE: usize = 8;
/// Stack size for baseline per-connection threads, matching the paper's
/// small-stack CxThread configuration (and keeping 4096 spawns cheap).
const CONN_STACK: usize = 64 * 1024;
/// Per-direction pipe buffering for benchmark connections.
const PIPE_CAP: usize = 16 * 1024;

fn echo_handler() -> RequestHandler {
    Arc::new(|req: Request| Response::new(Status::OK, "text/xml", req.body))
}

fn echo_request(i: usize) -> Request {
    Request::soap_post("ws:8888", "/echo", "text/xml", format!("<m>{i}</m>").into_bytes())
}

/// The paper's shape: one blocking serve thread per accepted connection.
struct ThreadPerConnRig {
    clients: Vec<HttpClient<PipeStream>>,
    live: Arc<AtomicUsize>,
    peak: Arc<AtomicUsize>,
}

impl ThreadPerConnRig {
    fn open(n: usize) -> Self {
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut clients = Vec::with_capacity(n);
        for i in 0..n {
            let (client, server) = duplex(PIPE_CAP);
            let live2 = Arc::clone(&live);
            let peak2 = Arc::clone(&peak);
            std::thread::Builder::new()
                .name(format!("conn-{i}"))
                .stack_size(CONN_STACK)
                .spawn(move || {
                    let now = live2.fetch_add(1, Ordering::SeqCst) + 1;
                    peak2.fetch_max(now, Ordering::SeqCst);
                    let _ = serve_connection(server, &Limits::default(), |req| {
                        Response::new(Status::OK, "text/xml", req.body)
                    });
                    live2.fetch_sub(1, Ordering::SeqCst);
                })
                .expect("spawn conn thread");
            clients.push(HttpClient::new(client));
        }
        ThreadPerConnRig { clients, live, peak }
    }

    fn peak_threads(&self) -> usize {
        self.peak.load(Ordering::SeqCst)
    }

    fn close(self) {
        drop(self.clients);
        // Serve threads exit on EOF; wait so rigs don't stack up.
        for _ in 0..5000 {
            if self.live.load(Ordering::SeqCst) == 0 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("thread-per-conn rig failed to drain");
    }
}

/// The reactor shape: one event loop plus a fixed handler pool.
struct ReactorRig {
    clients: Vec<HttpClient<PipeStream>>,
    fe: ReactorFrontEnd,
    pool: Arc<ThreadPool>,
    reg: wsd_telemetry::Registry,
}

impl ReactorRig {
    fn open(n: usize) -> Self {
        let reg = wsd_telemetry::Registry::new();
        let scope = reg.scope("cs");
        let pool = Arc::new(
            ThreadPool::new(
                PoolConfig::fixed("handler", POOL_SIZE)
                    .rejection(RejectionPolicy::Block)
                    .telemetry(scope.child("pool")),
            )
            .expect("pool"),
        );
        let fe = ReactorFrontEnd::start("connscale", Arc::clone(&pool), &scope.child("reactor"));
        let mut clients = Vec::with_capacity(n);
        for _ in 0..n {
            let (client, server) = duplex(PIPE_CAP);
            fe.serve(server, Limits::default(), echo_handler());
            clients.push(HttpClient::new(client));
        }
        ReactorRig { clients, fe, pool, reg }
    }

    /// Event-loop thread + peak pool workers.
    fn peak_threads(&self) -> usize {
        1 + self.reg.snapshot().gauge_peak("cs.pool.workers") as usize
    }

    fn close(self) {
        drop(self.clients);
        self.fe.shutdown();
        self.pool.shutdown();
    }
}

/// One request per round, rotated across the connections: every
/// connection is mostly idle, exactly the paper's many-clients /
/// low-rate workload.
fn measure_latencies(clients: &mut [HttpClient<PipeStream>], rounds: usize) -> Vec<f64> {
    let n = clients.len();
    let mut lat_us = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let c = &mut clients[r % n];
        let req = echo_request(r);
        let t0 = Instant::now();
        let resp = c.call(&req).expect("echo call");
        lat_us.push(t0.elapsed().as_nanos() as f64 / 1000.0);
        assert_eq!(resp.status, Status::OK);
    }
    lat_us
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("connscale");
    for n in [64usize, 512] {
        let mut rig = ThreadPerConnRig::open(n);
        let mut i = 0usize;
        g.bench_function(format!("thread_per_conn/{n}"), |b| {
            b.iter(|| {
                i += 1;
                let req = echo_request(i);
                rig.clients[i % n].call(&req).unwrap()
            })
        });
        rig.close();

        let mut rig = ReactorRig::open(n);
        let mut i = 0usize;
        g.bench_function(format!("reactor/{n}"), |b| {
            b.iter(|| {
                i += 1;
                let req = echo_request(i);
                rig.clients[i % n].call(&req).unwrap()
            })
        });
        rig.close();
    }
    g.finish();
}

criterion_group!(benches, bench);

struct Sweep {
    conns: usize,
    baseline_peak: usize,
    baseline_p50: f64,
    baseline_p99: f64,
    reactor_peak: usize,
    reactor_p50: f64,
    reactor_p99: f64,
}

fn run_sweep(conns: &[usize], rounds: usize) -> Vec<Sweep> {
    conns
        .iter()
        .map(|&n| {
            let mut rig = ThreadPerConnRig::open(n);
            let mut lat = measure_latencies(&mut rig.clients, rounds);
            lat.sort_by(|a, b| a.total_cmp(b));
            let baseline_peak = rig.peak_threads();
            let (baseline_p50, baseline_p99) =
                (percentile(&lat, 0.50), percentile(&lat, 0.99));
            rig.close();

            let mut rig = ReactorRig::open(n);
            let mut lat = measure_latencies(&mut rig.clients, rounds);
            lat.sort_by(|a, b| a.total_cmp(b));
            let reactor_peak = rig.peak_threads();
            let (reactor_p50, reactor_p99) = (percentile(&lat, 0.50), percentile(&lat, 0.99));
            rig.close();

            eprintln!(
                "connscale n={n}: baseline peak={baseline_peak} p99={baseline_p99:.1}us | \
                 reactor peak={reactor_peak} p99={reactor_p99:.1}us"
            );
            Sweep {
                conns: n,
                baseline_peak,
                baseline_p50,
                baseline_p99,
                reactor_peak,
                reactor_p50,
                reactor_p99,
            }
        })
        .collect()
}

fn emit_json(path: &str, sweeps: &[Sweep], rounds: usize) {
    let rows: Vec<String> = sweeps
        .iter()
        .map(|s| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"connections\": {conns},\n",
                    "      \"thread_per_conn\": {{ \"peak_threads\": {bp}, ",
                    "\"p50_us\": {bp50:.1}, \"p99_us\": {bp99:.1} }},\n",
                    "      \"reactor\": {{ \"peak_threads\": {rp}, ",
                    "\"p50_us\": {rp50:.1}, \"p99_us\": {rp99:.1} }}\n",
                    "    }}"
                ),
                conns = s.conns,
                bp = s.baseline_peak,
                bp50 = s.baseline_p50,
                bp99 = s.baseline_p99,
                rp = s.reactor_peak,
                rp50 = s.reactor_p50,
                rp99 = s.reactor_p99,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"connection_scaling\",\n",
            "  \"requests_per_sweep\": {rounds},\n",
            "  \"reactor_pool_size\": {pool},\n",
            "  \"sweeps\": [\n{rows}\n  ]\n",
            "}}\n"
        ),
        rounds = rounds,
        pool = POOL_SIZE,
        rows = rows.join(",\n"),
    );
    std::fs::write(path, &json).expect("write BENCH_connscale.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::var("CONNSCALE_SMOKE").is_ok_and(|v| v == "1");
    if !smoke {
        benches();
    }
    let json_path = std::env::var("BENCH_CONNSCALE_JSON").ok();
    if smoke || json_path.is_some() {
        let conns: &[usize] = if smoke { &[64] } else { &[64, 512, 4096] };
        let rounds = if smoke { 128 } else { 512 };
        let sweeps = run_sweep(conns, rounds);
        if let Some(path) = &json_path {
            emit_json(path, &sweeps, rounds);
        }
        if smoke {
            for s in &sweeps {
                assert!(
                    s.reactor_peak <= POOL_SIZE + 1,
                    "reactor used {} threads at {} conns (pool size {POOL_SIZE} + 1 loop)",
                    s.reactor_peak,
                    s.conns,
                );
                assert!(
                    s.baseline_peak >= s.conns,
                    "thread-per-conn baseline should pin one thread per connection"
                );
            }
            println!("connscale-smoke PASS: reactor peak <= pool size + 1 event loop");
        }
    }
}
