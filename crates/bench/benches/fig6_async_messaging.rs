//! Figure 6: wall-time to simulate each asynchronous-messaging series,
//! plus the WS-MsgBox OOM reproduction, plus a one-shot series print.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsd_bench::BENCH_WINDOW_SECS;
use wsd_experiments::fig6::{self, Series};

fn bench(c: &mut Criterion) {
    fig6::print(&fig6::run(BENCH_WINDOW_SECS, &[1, 10, 30, 50]));
    fig6::print_oom(&fig6::run_oom(60, BENCH_WINDOW_SECS));

    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    for series in [
        Series::DirectBlocked,
        Series::Dispatcher,
        Series::DispatcherWithMsgBox,
    ] {
        for &clients in &[10usize, 50] {
            g.bench_with_input(
                BenchmarkId::new(format!("{series:?}"), clients),
                &clients,
                |b, &clients| {
                    b.iter(|| {
                        std::hint::black_box(fig6::run_one(series, clients, BENCH_WINDOW_SECS))
                    })
                },
            );
        }
    }
    g.bench_function("oom_reproduction", |b| {
        b.iter(|| std::hint::black_box(fig6::run_oom(60, BENCH_WINDOW_SECS)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
