//! Ablations of the design choices DESIGN.md calls out:
//!
//! * per-destination connection reuse vs reconnect-per-batch (the
//!   paper's "multiple messages delivered over one connection" claim),
//! * `WsThread` pool size under blocked destinations,
//! * WS-MsgBox pooled worker count,
//! * security-policy chain cost on the RPC forwarding path,
//! * registry balance strategies.
//!
//! Each ablation prints the measured outcome once (throughput etc.) and
//! benchmarks the wall time of the underlying run.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsd_core::config::{MsgBoxConfig, MsgBoxStrategy};
use wsd_core::msg::MsgCore;
use wsd_core::registry::{BalanceStrategy, Registry};
use wsd_core::security::{attach_token, MaxSize, PolicyChain, TokenAuth};
use wsd_core::sim::{EchoMode, SimEchoService, SimMsgBox, SimMsgDispatcher, WsThreadConfig};
use wsd_core::url::Url;
use wsd_loadgen::ramp::ClientPlacement;
use wsd_loadgen::{spawn_msg_fleet, MsgClientConfig, ReplyMode};
use wsd_netsim::{FirewallPolicy, HostConfig, SimDuration, SimTime, Simulation};

const WINDOW: u64 = 5;

/// One msgbox-style run with a parameterized dispatcher; returns WS
/// messages processed.
fn msg_run(ws_config: WsThreadConfig, clients: usize) -> u64 {
    let mut sim = Simulation::new(0xAB1A);
    let ws_host = sim.add_host(HostConfig::named("ws"));
    let disp_host = sim.add_host(HostConfig::named("dispatcher"));
    let mb_host = sim.add_host(HostConfig::named("msgbox"));
    let client_host =
        sim.add_host(HostConfig::named("clients").firewall(FirewallPolicy::OutboundOnly));
    let svc = SimEchoService::new(
        EchoMode::OneWay {
            workers: 16,
            connect_timeout: SimDuration::from_secs(3),
        },
        SimDuration::from_millis(5),
    );
    let svc_stats = svc.stats();
    let p = sim.spawn(ws_host, Box::new(svc));
    sim.listen(p, 8888);
    let registry = Arc::new(Registry::new());
    registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
    let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 5);
    let disp = SimMsgDispatcher::new(core, SimDuration::from_millis(2), ws_config);
    let p = sim.spawn(disp_host, Box::new(disp));
    sim.listen(p, 8080);
    let mbox = SimMsgBox::new(MsgBoxConfig::default(), SimDuration::from_millis(1), 5);
    let p = sim.spawn(mb_host, Box::new(mbox));
    sim.listen(p, 8082);
    let _fleet = spawn_msg_fleet(
        &mut sim,
        ClientPlacement::SharedHost(client_host),
        clients,
        &MsgClientConfig {
            target_host: "dispatcher".into(),
            target_port: 8080,
            path: "/msg".into(),
            to_address: "http://dispatcher/svc/Echo".into(),
            reply_mode: ReplyMode::Mailbox {
                host: "msgbox".into(),
                port: 8082,
                poll_interval: SimDuration::from_secs(1),
            },
            connect_timeout: SimDuration::from_secs(3),
            retry_backoff: SimDuration::from_millis(100),
            run_for: SimDuration::from_secs(WINDOW),
            client_name: "abl".into(),
        },
        SimDuration::from_millis(500),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(WINDOW));
    svc_stats.processed()
}

fn bench_connection_reuse(c: &mut Criterion) {
    // The paper's efficiency claim: a kept-open connection per
    // destination beats short-lived connections.
    let reuse = WsThreadConfig {
        linger: SimDuration::from_secs(15),
        ..WsThreadConfig::default()
    };
    let no_reuse = WsThreadConfig {
        linger: SimDuration::ZERO,
        ..WsThreadConfig::default()
    };
    let with = msg_run(reuse.clone(), 20);
    let without = msg_run(no_reuse.clone(), 20);
    println!("# ablation: connection reuse — processed with={with} without={without}");

    let mut g = c.benchmark_group("ablation_connection_reuse");
    g.sample_size(10);
    g.bench_function("kept_open", |b| {
        b.iter(|| std::hint::black_box(msg_run(reuse.clone(), 20)))
    });
    g.bench_function("reconnect_each_batch", |b| {
        b.iter(|| std::hint::black_box(msg_run(no_reuse.clone(), 20)))
    });
    g.finish();
}

fn bench_ws_pool_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ws_pool_size");
    g.sample_size(10);
    for threads in [2usize, 8, 32] {
        let cfg = WsThreadConfig {
            threads,
            ..WsThreadConfig::default()
        };
        let processed = msg_run(cfg.clone(), 30);
        println!("# ablation: ws_threads={threads} processed={processed}");
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| std::hint::black_box(msg_run(cfg.clone(), 30)))
        });
    }
    g.finish();
}

fn bench_msgbox_workers(c: &mut Criterion) {
    let run = |workers: usize| -> u64 {
        let mut sim = Simulation::new(0xAB1B);
        let mb_host = sim.add_host(HostConfig::named("msgbox"));
        let client_host = sim.add_host(HostConfig::named("clients"));
        let mbox = SimMsgBox::new(
            MsgBoxConfig {
                strategy: MsgBoxStrategy::Pooled { workers },
                ..MsgBoxConfig::default()
            },
            SimDuration::from_millis(5),
            5,
        );
        let stats = mbox.stats();
        let p = sim.spawn(mb_host, Box::new(mbox));
        sim.listen(p, 8082);
        // Saturating RPC load from 20 closed-loop clients.
        let _fleet = spawn_msg_fleet(
            &mut sim,
            ClientPlacement::SharedHost(client_host),
            20,
            &MsgClientConfig {
                target_host: "msgbox".into(),
                target_port: 8082,
                path: "/msgbox".into(),
                to_address: "http://msgbox:8082/msgbox".into(),
                reply_mode: ReplyMode::Callback {
                    url: "http://clients:{port}/cb".into(),
                },
                connect_timeout: SimDuration::from_secs(3),
                retry_backoff: SimDuration::from_millis(100),
                run_for: SimDuration::from_secs(WINDOW),
                client_name: "mb".into(),
            },
            SimDuration::from_millis(200),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(WINDOW));
        stats.rpc_calls()
    };
    let mut g = c.benchmark_group("ablation_msgbox_workers");
    g.sample_size(10);
    for workers in [1usize, 4, 16] {
        let served = run(workers);
        println!("# ablation: msgbox workers={workers} rpc_calls={served}");
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| std::hint::black_box(run(w)))
        });
    }
    g.finish();
}

fn bench_security_chain(c: &mut Criterion) {
    // Cost added per message by the firewall-for-Web-Services checks.
    let registry = Arc::new(Registry::new());
    registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
    let plain = PolicyChain::new();
    let checked = PolicyChain::new()
        .with(MaxSize(64 * 1024))
        .with(TokenAuth::new(["sso"]));
    let mut env = wsd_soap::rpc::echo_request(wsd_soap::SoapVersion::V11, "x");
    attach_token(&mut env, "sso");
    let req = wsd_http::Request::soap_post(
        "dispatcher",
        "/svc/Echo",
        wsd_soap::SoapVersion::V11.content_type(),
        env.to_xml().into_bytes(),
    );
    let mut g = c.benchmark_group("ablation_security");
    g.bench_function("plan_forward_no_policies", |b| {
        b.iter(|| wsd_core::rpc::plan_forward(&registry, &plain, &req).unwrap())
    });
    g.bench_function("plan_forward_with_sso_chain", |b| {
        b.iter(|| wsd_core::rpc::plan_forward(&registry, &checked, &req).unwrap())
    });
    g.finish();
}

fn bench_balance_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_balance");
    for strategy in [
        BalanceStrategy::First,
        BalanceStrategy::RoundRobin,
        BalanceStrategy::LeastPending,
    ] {
        let registry = Registry::new().with_strategy(strategy);
        registry.register_many(
            "S",
            (0..8)
                .map(|i| Url::parse(&format!("http://w{i}/s")).unwrap())
                .collect(),
            None,
        );
        g.bench_function(format!("{strategy:?}"), |b| {
            b.iter(|| registry.lookup("S").unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_connection_reuse,
    bench_ws_pool_size,
    bench_msgbox_workers,
    bench_security_chain,
    bench_balance_strategies
);
criterion_main!(benches);
