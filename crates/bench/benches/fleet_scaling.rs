//! Fleet scaling: delivered throughput vs instance count, plus the
//! kill-one failover invariants.
//!
//! The sweep reruns `wsd_experiments::fleet` — N sharded dispatcher
//! instances at a fixed offered load far above one instance's durable
//! ack rate. Delivered throughput is deterministic (virtual time), so
//! what this bench *times* is the simulator itself: wall-clock
//! nanoseconds per delivered message, a proxy for the whole
//! envelope/netsim/store pipeline the fleet exercises.
//!
//! Set `BENCH_FLEET_JSON=<path>` to emit a machine-readable summary
//! (checked in as `BENCH_fleet.json`, gated by `bench_gate` on the
//! `sim_ns_per_delivered` keys); `FLEET_SMOKE=1` runs a shortened
//! 1-vs-4-instance sweep and asserts the scale-out acceptance floor
//! (>=3x delivered 1→4) plus the failover invariants (zero acked loss,
//! zero duplicates) — used by `scripts/verify.sh fleet-smoke`.

use std::time::Instant;

use criterion::{criterion_group, Criterion, Throughput};
use wsd_experiments::fleet;

/// Virtual seconds of offered load per sweep point.
const SWEEP_SECONDS: u64 = 10;
/// Shortened window for the smoke mode.
const SMOKE_SECONDS: u64 = 6;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet");
    // One short single-instance run: the per-delivered-message cost of
    // the full deposit→WAL→drain→sink pipeline in the simulator.
    let probe = fleet::run_scaling(4, &[1], fleet::SCALING_CLIENTS);
    g.throughput(Throughput::Elements(probe[0].delivered));
    g.bench_function("sim_run_1_instance_4s", |b| {
        b.iter(|| fleet::run_scaling(4, std::hint::black_box(&[1]), fleet::SCALING_CLIENTS))
    });
    g.finish();
}

criterion_group!(benches, bench);

struct TimedRow {
    row: fleet::FleetScaleRow,
    sim_ns_per_delivered: f64,
}

fn timed_sweep(seconds: u64, counts: &[usize]) -> Vec<TimedRow> {
    counts
        .iter()
        .map(|&n| {
            let start = Instant::now();
            let mut rows = fleet::run_scaling(seconds, &[n], fleet::SCALING_CLIENTS);
            let elapsed = start.elapsed().as_nanos() as f64;
            let row = rows.remove(0);
            TimedRow {
                sim_ns_per_delivered: elapsed / row.delivered.max(1) as f64,
                row,
            }
        })
        .collect()
}

fn emit_json(path: &str, seconds: u64, rows: &[TimedRow], failover: &fleet::FailoverOutcome) {
    let base = rows.first().map(|t| t.row.delivered).unwrap_or(0);
    let sweep: Vec<String> = rows
        .iter()
        .map(|t| {
            format!(
                "    {{ \"instances\": {}, \"delivered\": {}, \"delivered_per_sec\": {:.1}, \
                 \"speedup_vs_1\": {:.2}, \"sim_ns_per_delivered\": {:.0} }}",
                t.row.instances,
                t.row.delivered,
                t.row.delivered_per_sec,
                t.row.delivered as f64 / base.max(1) as f64,
                t.sim_ns_per_delivered,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fleet_scaling\",\n",
            "  \"seconds\": {seconds},\n",
            "  \"clients\": {clients},\n",
            "  \"scaling\": [\n{sweep}\n  ],\n",
            "  \"failover\": {{\n",
            "    \"instances\": {fi}, \"killed\": {killed},\n",
            "    \"acked\": {acked}, \"delivered\": {delivered},\n",
            "    \"acked_lost\": {lost}, \"duplicates\": {dups},\n",
            "    \"recovered\": {recovered}, \"resent\": {resent},\n",
            "    \"rebalance_latency_us\": {rebalance}\n",
            "  }}\n",
            "}}\n"
        ),
        seconds = seconds,
        clients = fleet::SCALING_CLIENTS,
        sweep = sweep.join(",\n"),
        fi = failover.instances,
        killed = failover.killed,
        acked = failover.acked,
        delivered = failover.delivered,
        lost = failover.acked_lost,
        dups = failover.duplicates,
        recovered = failover.recovered,
        resent = failover.resent,
        rebalance = failover.rebalance_latency_us,
    );
    std::fs::write(path, &json).expect("write BENCH_fleet.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::var("FLEET_SMOKE").is_ok_and(|v| v == "1");
    if !smoke {
        benches();
    }
    let json_path = std::env::var("BENCH_FLEET_JSON").ok();
    if smoke || json_path.is_some() {
        let (seconds, counts): (u64, &[usize]) = if smoke {
            (SMOKE_SECONDS, &[1, 4])
        } else {
            (SWEEP_SECONDS, fleet::INSTANCE_COUNTS)
        };
        let rows = timed_sweep(seconds, counts);
        let failover = fleet::run_failover(seconds.max(8));
        if let Some(path) = &json_path {
            emit_json(path, seconds, &rows, &failover);
        }
        let one = rows.first().expect("sweep has a 1-instance point");
        let four = rows
            .iter()
            .find(|t| t.row.instances == 4)
            .expect("sweep has a 4-instance point");
        assert!(
            four.row.delivered as f64 >= one.row.delivered as f64 * 3.0,
            "4 instances delivered {} vs {} for 1 — below the 3x floor",
            four.row.delivered,
            one.row.delivered,
        );
        assert_eq!(failover.acked_lost, 0, "kill lost an acked message");
        assert_eq!(failover.duplicates, 0, "recovery double-delivered");
        assert!(failover.recovered > 0, "victim stranded no acked mail");
        println!(
            "fleet{} PASS: 1->4 speedup {:.2}x, failover acked_lost=0 duplicates=0 recovered={}",
            if smoke { "-smoke" } else { "" },
            four.row.delivered as f64 / one.row.delivered as f64,
            failover.recovered,
        );
    }
}
