//! Figure 5: wall-time to simulate the high-connectivity RPC series,
//! plus a one-shot print of the series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsd_bench::BENCH_WINDOW_SECS;
use wsd_experiments::fig5;

fn bench(c: &mut Criterion) {
    fig5::print(&fig5::run(BENCH_WINDOW_SECS, &[25, 100, 200, 300]));

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for &clients in &[25usize, 100, 300] {
        g.bench_with_input(
            BenchmarkId::new("direct", clients),
            &clients,
            |b, &clients| {
                b.iter(|| std::hint::black_box(fig5::run_one(clients, false, BENCH_WINDOW_SECS)))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("dispatched", clients),
            &clients,
            |b, &clients| {
                b.iter(|| std::hint::black_box(fig5::run_one(clients, true, BENCH_WINDOW_SECS)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
