//! Zero-copy dispatch hot path: the two costs the splice/batching work
//! attacks, measured head-to-head.
//!
//! * `rewrite`: the per-message WS-Addressing forward rewrite — tree path
//!   (`Envelope::parse` + `rewrite_for_forward` + `to_xml`) vs splice path
//!   (`scan` + `splice_forward`), on the same canonical envelope.
//! * `drain`: delivering 16 queued envelopes over one kept-open
//!   connection with drain-batch sizes 1/4/16 — each batch is one
//!   `pop_batch`, one serialization buffer, one pipelined write + flush.
//!
//! Set `BENCH_HOTPATH_JSON=<path>` to also emit a machine-readable
//! summary (used by `scripts/verify.sh bench-smoke`); `CRITERION_SAMPLES`
//! scales both the criterion run and the JSON measurement.

use std::thread;
use std::time::Instant;

use criterion::{criterion_group, Criterion, Throughput};
use wsd_concurrent::FifoQueue;
use wsd_http::{
    duplex, serve_connection, HttpClient, Limits, PipeStream, Request, Response, Status,
};
use wsd_soap::{rpc, Envelope, SoapVersion};
use wsd_wsa::{rewrite_for_forward, EndpointReference, WsaHeaders};

/// Counting global allocator (`--features alloc-count`): every heap
/// acquisition — alloc, alloc_zeroed, realloc — is tallied while a
/// [`count`](alloc_count::count) window is open. Frees are not counted;
/// the metric is "allocations performed per operation".
#[cfg(feature = "alloc-count")]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    struct CountingAlloc;

    // SAFETY: every operation delegates to `System` unchanged; only a
    // counter is layered on top.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            if ENABLED.load(Ordering::Relaxed) {
                ALLOCS.fetch_add(1, Ordering::Relaxed);
            }
            unsafe { System.alloc(layout) }
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            if ENABLED.load(Ordering::Relaxed) {
                ALLOCS.fetch_add(1, Ordering::Relaxed);
            }
            unsafe { System.alloc_zeroed(layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            if ENABLED.load(Ordering::Relaxed) {
                ALLOCS.fetch_add(1, Ordering::Relaxed);
            }
            unsafe { System.realloc(ptr, layout, new_size) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Runs `f` with counting enabled, returning how many allocations it
    /// performed. Process-global: call only while no other thread is
    /// allocating.
    pub fn count(f: impl FnOnce()) -> u64 {
        let before = ALLOCS.load(Ordering::SeqCst);
        ENABLED.store(true, Ordering::SeqCst);
        f();
        ENABLED.store(false, Ordering::SeqCst);
        ALLOCS.load(Ordering::SeqCst) - before
    }
}

const DISPATCHER: &str = "http://dispatcher/msg";
const PHYSICAL: &str = "http://ws:8888/echo";
/// Messages delivered per drain iteration (one full WsThread backlog).
const DRAIN_TOTAL: usize = 16;

/// The paper's addressed echo request, in the writer's canonical form —
/// exactly what `MsgCore::route_raw` sees on the wire.
fn forwarded_request() -> String {
    let mut env = rpc::echo_request(SoapVersion::V11, "benchmark payload");
    WsaHeaders::new()
        .to("http://dispatcher/svc/Echo")
        .reply_to(EndpointReference::new("http://client:9000/cb"))
        .message_id("uuid:bench-1")
        .action("urn:wsd:echo:echo")
        .apply(&mut env);
    env.to_xml()
}

/// A correlated service reply for the canonical request above — what the
/// dispatcher's reply splice path sees on the wire.
#[cfg(feature = "alloc-count")]
fn service_reply() -> String {
    let mut env = rpc::echo_response(SoapVersion::V11, "benchmark payload");
    WsaHeaders::new()
        .to(DISPATCHER)
        .relates_to("uuid:bench-1")
        .message_id("uuid:bench-reply-1")
        .apply(&mut env);
    env.to_xml()
}

/// Steady-state allocs/op through `route_raw_into` with a pooled
/// scratch buffer: each iteration forwards the canonical request
/// (seeding the route table) and routes the correlated reply (consuming
/// it), counting each direction separately. The reply figure is the
/// gated one — on the splice path its only remaining allocations are
/// the two `String`s inside the parsed destination `Url`.
#[cfg(feature = "alloc-count")]
fn route_raw_allocs_per_op() -> (f64, f64) {
    use wsd_core::{MsgCore, Registry, Url};

    let registry = std::sync::Arc::new(Registry::new());
    registry.register("Echo", Url::parse(PHYSICAL).unwrap());
    let core = MsgCore::new(registry, DISPATCHER, 7);
    let request = forwarded_request();
    let reply = service_reply();
    let mut scratch = wsd_soap::checkout();
    // Warm scratch capacity, shard maps and the splice atoms before
    // counting: one-time setup allocations are not per-op cost.
    for _ in 0..8 {
        scratch.out.clear();
        core.route_raw_into(&request, request.len(), 0, &mut scratch.out).unwrap();
        scratch.out.clear();
        core.route_raw_into(&reply, reply.len(), 0, &mut scratch.out).unwrap();
    }
    const OPS: u64 = 256;
    let (mut forward, mut reply_allocs) = (0u64, 0u64);
    for _ in 0..OPS {
        scratch.out.clear();
        forward += alloc_count::count(|| {
            let m = core.route_raw_into(&request, request.len(), 0, &mut scratch.out).unwrap();
            std::hint::black_box(&m);
        });
        scratch.out.clear();
        reply_allocs += alloc_count::count(|| {
            let m = core.route_raw_into(&reply, reply.len(), 0, &mut scratch.out).unwrap();
            std::hint::black_box(&m);
        });
    }
    (
        reply_allocs as f64 / OPS as f64,
        forward as f64 / OPS as f64,
    )
}

fn tree_rewrite(xml: &str) -> String {
    let mut env = Envelope::parse(xml).unwrap();
    rewrite_for_forward(&mut env, PHYSICAL, DISPATCHER).unwrap();
    env.to_xml()
}

fn splice_rewrite(xml: &str) -> String {
    wsd_wsa::scan(xml).unwrap().splice_forward(PHYSICAL, DISPATCHER, None).0
}

/// A WsThread in miniature: a destination queue, a kept-open connection
/// to an accepting server, and the reusable serialization buffer.
struct DrainRig {
    client: HttpClient<PipeStream>,
    queue: FifoQueue<Request>,
    buf: Vec<u8>,
    /// The envelope as refcounted bytes — enqueueing shares it instead
    /// of copying the body per message, like the rt drain does.
    body: wsd_http::Bytes,
}

impl DrainRig {
    fn new(xml: &str) -> Self {
        let (client, server) = duplex(1 << 20);
        thread::spawn(move || {
            let _ = serve_connection(server, &Limits::default(), |_req| {
                Response::empty(Status::ACCEPTED)
            });
        });
        DrainRig {
            client: HttpClient::new(client),
            queue: FifoQueue::bounded(DRAIN_TOTAL * 2),
            buf: Vec::with_capacity(1 << 14),
            body: wsd_http::Bytes::from(xml.to_string()),
        }
    }

    /// Enqueues `DRAIN_TOTAL` envelopes, then drains them in batches of
    /// `batch` — the exact pop + pipelined-write shape of the rt drain.
    fn deliver(&mut self, batch: usize) {
        for _ in 0..DRAIN_TOTAL {
            let req = Request::soap_post(
                "ws:8888",
                "/echo",
                SoapVersion::V11.content_type(),
                self.body.clone(),
            );
            self.queue.try_push(req).unwrap();
        }
        while let Ok(taken) = self.queue.pop_batch(batch) {
            let resps = self.client.call_pipelined(taken.iter(), &mut self.buf).unwrap();
            assert_eq!(resps.len(), taken.len());
        }
    }
}

fn bench(c: &mut Criterion) {
    let xml = forwarded_request();
    // The fast path's whole claim: same bytes out.
    assert_eq!(tree_rewrite(&xml), splice_rewrite(&xml));

    let mut g = c.benchmark_group("rewrite");
    g.throughput(Throughput::Bytes(xml.len() as u64));
    g.bench_function("tree_parse_rewrite_serialize", |b| {
        b.iter(|| tree_rewrite(std::hint::black_box(&xml)))
    });
    g.bench_function("splice_scan_forward", |b| {
        b.iter(|| splice_rewrite(std::hint::black_box(&xml)))
    });
    g.finish();

    let mut g = c.benchmark_group("drain");
    g.throughput(Throughput::Elements(DRAIN_TOTAL as u64));
    for batch in [1usize, 4, 16] {
        let mut rig = DrainRig::new(&xml);
        g.bench_function(format!("deliver_{DRAIN_TOTAL}_batch_{batch}"), |b| {
            b.iter(|| rig.deliver(batch))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

/// Times `f` over `reps` runs (one untimed warmup) and returns ns/run.
fn time_ns(reps: u64, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

fn emit_json(path: &str) {
    let samples: u64 = std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    // Alloc counting runs first, while no drain-rig threads are live.
    #[cfg(feature = "alloc-count")]
    let route_raw_section = {
        let (reply_allocs, forward_allocs) = route_raw_allocs_per_op();
        println!("route_raw allocs/op: reply {reply_allocs:.2}, forward {forward_allocs:.2}");
        format!(
            concat!(
                "  \"route_raw\": {{\n",
                "    \"reply_allocs_per_op\": {reply:.2},\n",
                "    \"forward_allocs_per_op\": {forward:.2}\n",
                "  }},\n"
            ),
            reply = reply_allocs,
            forward = forward_allocs,
        )
    };
    #[cfg(not(feature = "alloc-count"))]
    let route_raw_section = String::new();
    let xml = forwarded_request();
    let reps = samples * 100;
    let tree = time_ns(reps, || {
        std::hint::black_box(tree_rewrite(std::hint::black_box(&xml)));
    });
    let splice = time_ns(reps, || {
        std::hint::black_box(splice_rewrite(std::hint::black_box(&xml)));
    });
    let drain_reps = (samples * 5).max(5);
    let mut drain = [0.0f64; 3];
    for (slot, batch) in drain.iter_mut().zip([1usize, 4, 16]) {
        let mut rig = DrainRig::new(&xml);
        *slot = time_ns(drain_reps, || rig.deliver(batch)) / DRAIN_TOTAL as f64;
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"dispatch_hotpath\",\n",
            "  \"samples\": {samples},\n",
            "  \"envelope_bytes\": {bytes},\n",
            "  \"rewrite\": {{\n",
            "    \"tree_ns_per_op\": {tree:.1},\n",
            "    \"splice_ns_per_op\": {splice:.1},\n",
            "    \"speedup\": {speedup:.2}\n",
            "  }},\n",
            "{route_raw}",
            "  \"drain_ns_per_msg\": {{\n",
            "    \"batch_1\": {d1:.1},\n",
            "    \"batch_4\": {d4:.1},\n",
            "    \"batch_16\": {d16:.1}\n",
            "  }}\n",
            "}}\n"
        ),
        samples = samples,
        route_raw = route_raw_section,
        bytes = xml.len(),
        tree = tree,
        splice = splice,
        speedup = tree / splice,
        d1 = drain[0],
        d4 = drain[1],
        d16 = drain[2],
    );
    std::fs::write(path, &json).expect("write BENCH_hotpath.json");
    println!("wrote {path}");
}

fn main() {
    benches();
    if let Ok(path) = std::env::var("BENCH_HOTPATH_JSON") {
        emit_json(&path);
    }
}
