//! Virtual time: microsecond-resolution instants and durations.

use std::ops::{Add, AddAssign, Sub};

/// A simulated instant, microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A simulated duration in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// From whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// From fractional seconds (rounds to microseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(o.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(o.0))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Time to serialize `bytes` onto a link of `kbps` kilobits per second.
pub fn transmission_time(bytes: usize, kbps: u32) -> SimDuration {
    if kbps == 0 {
        return SimDuration(u64::MAX / 4); // an unusable link
    }
    let bits = bytes as u64 * 8;
    // kbps = 1000 bits/s ⇒ micros = bits / (kbps * 1000) * 1e6 = bits * 1000 / kbps
    SimDuration(bits.saturating_mul(1000) / kbps as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(5));
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO); // saturates
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert!((SimTime(1_500_000).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn transmission_time_matches_hand_calc() {
        // 483 bytes at 288 kbps: 3864 bits / 288000 bps ≈ 13.42 ms.
        let t = transmission_time(483, 288);
        assert!((t.as_secs_f64() - 0.013_416).abs() < 1e-4, "{t}");
        // Double the bandwidth, half the time.
        assert_eq!(transmission_time(1000, 1000).0, 2 * transmission_time(1000, 2000).0);
    }

    #[test]
    fn zero_bandwidth_is_effectively_infinite() {
        assert!(transmission_time(1, 0) > SimDuration::from_secs(1_000_000));
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
