//! The actor interface protocol code implements, and the context through
//! which it acts on the simulated world.

use crate::conn::{ConnId, RefuseReason};
use crate::time::{SimDuration, SimTime};
use crate::{Payload, SimRng};

/// Identifies a process within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub usize);

/// Events delivered to a [`Process`].
#[derive(Debug)]
pub enum ProcEvent {
    /// Delivered once, right after spawn.
    Start,
    /// A timer set with [`Ctx::set_timer`] fired.
    Timer {
        /// The token passed to `set_timer`.
        token: u64,
    },
    /// An outbound `connect` completed.
    ConnEstablished {
        /// The connection, now usable.
        conn: ConnId,
    },
    /// An outbound `connect` failed.
    ConnRefused {
        /// The failed connection id.
        conn: ConnId,
        /// Why.
        reason: RefuseReason,
    },
    /// An inbound connection was accepted on a listening port.
    ConnAccepted {
        /// The new connection.
        conn: ConnId,
        /// The local port it arrived on.
        port: u16,
    },
    /// A framed message arrived.
    Message {
        /// Connection it arrived on.
        conn: ConnId,
        /// The payload.
        bytes: Payload,
    },
    /// The peer closed (or the connection failed) — no more events for
    /// this connection.
    ConnClosed {
        /// The closed connection.
        conn: ConnId,
    },
}

/// A simulated actor. One `on_event` call runs at a time (the simulator
/// is single-threaded); reentrancy is impossible.
pub trait Process {
    /// Reacts to one event. Use `ctx` to read the clock, set timers,
    /// connect, send and close.
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent);
}

/// Error returned by [`Ctx::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The connection is closed (or was never established).
    Closed,
    /// The connection id is not this process's.
    NotYours,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Closed => f.write_str("connection closed"),
            SendError::NotYours => f.write_str("connection belongs to another process"),
        }
    }
}

impl std::error::Error for SendError {}

/// Deferred operations a process requested during `on_event`; the engine
/// applies them after the callback returns.
pub(crate) enum Op {
    SetTimer { delay: SimDuration, token: u64 },
    Connect {
        conn: ConnId,
        host: String,
        port: u16,
        timeout: SimDuration,
    },
    Send { conn: ConnId, bytes: Payload },
    Close { conn: ConnId },
}

/// The process's handle onto the simulation during one event callback.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) me: ProcId,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) ops: Vec<Op>,
    pub(crate) next_conn_id: &'a mut u64,
    /// Connection table, read-only, for immediate send validation.
    pub(crate) conns: &'a std::collections::HashMap<ConnId, crate::conn::Connection>,
}

impl<'a> Ctx<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's id.
    pub fn me(&self) -> ProcId {
        self.me
    }

    /// Deterministic per-simulation RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Schedules a [`ProcEvent::Timer`] with `token` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.ops.push(Op::SetTimer { delay, token });
    }

    /// Starts a connection to `host:port`. The outcome arrives later as
    /// [`ProcEvent::ConnEstablished`] or [`ProcEvent::ConnRefused`]; if
    /// nothing answers within `timeout`, the refusal reason is
    /// [`RefuseReason::TimedOut`].
    pub fn connect(&mut self, host: &str, port: u16, timeout: SimDuration) -> ConnId {
        let conn = ConnId(*self.next_conn_id);
        *self.next_conn_id += 1;
        self.ops.push(Op::Connect {
            conn,
            host: host.to_string(),
            port,
            timeout,
        });
        conn
    }

    /// Sends one framed message. Delivery time reflects both endpoints'
    /// link bandwidth, propagation latency and the receiver's CPU cost.
    pub fn send(&mut self, conn: ConnId, bytes: Payload) -> Result<(), SendError> {
        use crate::conn::ConnPhase;
        let record = self.conns.get(&conn).ok_or(SendError::NotYours)?;
        let my_side_closed = if record.client_proc == self.me {
            record.close_seen[0]
        } else if record.server_proc == Some(self.me) {
            record.close_seen[1]
        } else {
            return Err(SendError::NotYours);
        };
        if record.phase != ConnPhase::Established || my_side_closed {
            return Err(SendError::Closed);
        }
        self.ops.push(Op::Send { conn, bytes });
        Ok(())
    }

    /// Closes a connection; the peer sees [`ProcEvent::ConnClosed`] after
    /// one propagation delay. Closing twice is a no-op.
    pub fn close(&mut self, conn: ConnId) {
        self.ops.push(Op::Close { conn });
    }
}
