//! Deterministic pseudo-random numbers (xorshift64*), so simulations
//! replay identically for a fixed seed. Not cryptographic.

/// A small, fast, seedable RNG.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates an RNG; a zero seed is remapped (xorshift cannot hold 0).
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Forks an independent stream (seeded from this one).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() | 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn floats_in_unit_interval_and_spread() {
        let mut r = SimRng::new(11);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean}");
    }

    #[test]
    fn forked_streams_differ() {
        let mut r = SimRng::new(5);
        let mut f1 = r.fork();
        let mut f2 = r.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }
}
