//! The simulation's event queue: a time-ordered heap with FIFO
//! tie-breaking, which is what makes runs deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::conn::{ConnId, RefuseReason, Side};
use crate::process::ProcId;
use crate::time::SimTime;
use crate::Payload;

/// Internal events the engine schedules.
#[derive(Debug)]
pub(crate) enum SimEvent {
    /// Deliver `Start` to a newly spawned process.
    ProcStart(ProcId),
    /// Fire a process timer.
    Timer(ProcId, u64),
    /// A SYN reaches the destination host.
    SynArrives { conn: ConnId },
    /// The SYN-ACK reaches the client: connection usable.
    EstablishedAtClient { conn: ConnId },
    /// Tell the client its attempt failed.
    RefusedAtClient { conn: ConnId, reason: RefuseReason },
    /// The client's connect timeout expires (ignored if established).
    ConnectTimeout { conn: ConnId },
    /// A framed message is fully received by `to`.
    Deliver {
        conn: ConnId,
        to: Side,
        bytes: Payload,
    },
    /// A FIN reaches `to`.
    CloseArrives { conn: ConnId, to: Side },
}

struct Entry {
    at: SimTime,
    seq: u64,
    event: SimEvent,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Time-ordered, insertion-stable event queue.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    pub fn push(&mut self, at: SimTime, event: SimEvent) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    pub fn pop(&mut self) -> Option<(SimTime, SimEvent)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    #[allow(dead_code)] // used by tests and kept for symmetry
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), SimEvent::Timer(ProcId(0), 3));
        q.push(SimTime(10), SimEvent::Timer(ProcId(0), 1));
        q.push(SimTime(20), SimEvent::Timer(ProcId(0), 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                SimEvent::Timer(_, t) => t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime(5), SimEvent::Timer(ProcId(0), i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                SimEvent::Timer(_, t) => t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(9), SimEvent::Timer(ProcId(0), 0));
        q.push(SimTime(4), SimEvent::Timer(ProcId(0), 0));
        assert_eq!(q.peek_time(), Some(SimTime(4)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
