//! Simulated hosts: access links, firewalls, accept limits, CPU speed.

use crate::time::{transmission_time, SimDuration, SimTime};

/// Identifies a host within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

/// Coarse geography: traffic between different regions crosses the
/// simulated Atlantic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Region {
    /// United States (Indiana University, the cable modem).
    #[default]
    Us,
    /// Europe (INRIA Sophia Antipolis).
    Eu,
}

/// Inbound-connection firewall policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FirewallPolicy {
    /// Inbound connections reach listeners normally.
    #[default]
    Open,
    /// Only outgoing connections are allowed; inbound SYNs are silently
    /// dropped (the paper's institutional firewall).
    OutboundOnly,
}

/// What happens to an inbound connection attempt when the host is already
/// at its accept limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverLimit {
    /// SYN silently dropped — the client times out (models a full SYN
    /// backlog; this is the Figure-4 loss mechanism).
    #[default]
    Drop,
    /// Active refusal — the client fails fast with `Refused`.
    Refuse,
}

/// Host construction parameters.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Host name (the simulator's DNS: connect by name).
    pub name: String,
    /// Uplink bandwidth, kilobits/second.
    pub up_kbps: u32,
    /// Downlink bandwidth, kilobits/second.
    pub down_kbps: u32,
    /// One-way latency from this host to its regional core.
    pub access_latency: SimDuration,
    /// Region (inter-region traffic pays the trans-Atlantic latency).
    pub region: Region,
    /// Firewall policy for inbound connections.
    pub firewall: FirewallPolicy,
    /// Maximum concurrently established inbound connections.
    pub accept_limit: usize,
    /// Behaviour when `accept_limit` is reached.
    pub over_limit: OverLimit,
    /// Maximum concurrently open *outbound* connections (file
    /// descriptors / ephemeral ports); attempts beyond it fail locally
    /// and instantly.
    pub outbound_limit: usize,
    /// CPU cost to process one received message, per kilobyte, at this
    /// host's speed (already divided by the machine's clock factor).
    pub cpu_per_kb: SimDuration,
}

impl HostConfig {
    /// A fast, open host with LAN-ish defaults — override what matters.
    pub fn named(name: impl Into<String>) -> Self {
        HostConfig {
            name: name.into(),
            up_kbps: 100_000,
            down_kbps: 100_000,
            access_latency: SimDuration::from_millis(1),
            region: Region::Us,
            firewall: FirewallPolicy::Open,
            accept_limit: 10_000,
            over_limit: OverLimit::Drop,
            outbound_limit: 1_000_000,
            cpu_per_kb: SimDuration::from_micros(10),
        }
    }

    /// Sets bandwidth (kbps, up/down).
    pub fn bandwidth(mut self, up_kbps: u32, down_kbps: u32) -> Self {
        self.up_kbps = up_kbps;
        self.down_kbps = down_kbps;
        self
    }

    /// Sets access latency.
    pub fn latency(mut self, l: SimDuration) -> Self {
        self.access_latency = l;
        self
    }

    /// Sets the region.
    pub fn region(mut self, r: Region) -> Self {
        self.region = r;
        self
    }

    /// Sets the firewall policy.
    pub fn firewall(mut self, f: FirewallPolicy) -> Self {
        self.firewall = f;
        self
    }

    /// Sets the accept limit and overflow behaviour.
    pub fn accept_limit(mut self, limit: usize, over: OverLimit) -> Self {
        self.accept_limit = limit;
        self.over_limit = over;
        self
    }

    /// Sets the local outbound-socket limit.
    pub fn outbound_limit(mut self, limit: usize) -> Self {
        self.outbound_limit = limit;
        self
    }

    /// Sets the per-kilobyte message-processing CPU cost.
    pub fn cpu_per_kb(mut self, c: SimDuration) -> Self {
        self.cpu_per_kb = c;
        self
    }
}

/// Runtime host state.
#[derive(Debug)]
pub(crate) struct Host {
    pub config: HostConfig,
    /// Uplink serialization queue: next instant the uplink is free.
    pub up_busy_until: SimTime,
    /// Downlink serialization queue.
    pub down_busy_until: SimTime,
    /// Currently established inbound connections.
    pub inbound_established: usize,
    /// Currently open outbound connections (including in-progress
    /// attempts).
    pub outbound_open: usize,
}

impl Host {
    pub fn new(config: HostConfig) -> Self {
        Host {
            config,
            up_busy_until: SimTime::ZERO,
            down_busy_until: SimTime::ZERO,
            inbound_established: 0,
            outbound_open: 0,
        }
    }

    /// Reserves the uplink for `bytes` starting no earlier than `now`;
    /// returns when the last bit leaves.
    pub fn reserve_uplink(&mut self, now: SimTime, bytes: usize) -> SimTime {
        let start = self.up_busy_until.max(now);
        let done = start + transmission_time(bytes, self.config.up_kbps);
        self.up_busy_until = done;
        done
    }

    /// Reserves the downlink for `bytes` arriving at `arrival`.
    pub fn reserve_downlink(&mut self, arrival: SimTime, bytes: usize) -> SimTime {
        let start = self.down_busy_until.max(arrival);
        let done = start + transmission_time(bytes, self.config.down_kbps);
        self.down_busy_until = done;
        done
    }

    /// CPU time to process a `bytes`-sized message on this host.
    pub fn processing_time(&self, bytes: usize) -> SimDuration {
        // Round up to at least one KB-equivalent so small messages still
        // cost something on slow machines.
        let kb = (bytes.max(1) as u64).div_ceil(1024);
        SimDuration(self.config.cpu_per_kb.0.saturating_mul(kb))
    }
}

/// One-way propagation latency between two hosts.
pub(crate) fn propagation(a: &HostConfig, b: &HostConfig) -> SimDuration {
    let base = a.access_latency + b.access_latency;
    if a.region != b.region {
        base + crate::profiles::TRANSATLANTIC_ONE_WAY
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplink_serializes_back_to_back() {
        let mut h = Host::new(HostConfig::named("h").bandwidth(288, 2333));
        let t1 = h.reserve_uplink(SimTime::ZERO, 483);
        let t2 = h.reserve_uplink(SimTime::ZERO, 483);
        // Second message waits for the first: twice the single time.
        assert_eq!(t2.0, 2 * t1.0);
    }

    #[test]
    fn uplink_idle_gap_not_charged() {
        let mut h = Host::new(HostConfig::named("h").bandwidth(1000, 1000));
        let t1 = h.reserve_uplink(SimTime::ZERO, 125); // 1 ms at 1 Mbps
        let later = t1 + SimDuration::from_secs(1);
        let t2 = h.reserve_uplink(later, 125);
        assert_eq!(t2.since(later), t1.since(SimTime::ZERO));
    }

    #[test]
    fn processing_time_scales_with_size_and_speed() {
        let slow = Host::new(HostConfig::named("s").cpu_per_kb(SimDuration::from_micros(400)));
        let fast = Host::new(HostConfig::named("f").cpu_per_kb(SimDuration::from_micros(100)));
        assert!(slow.processing_time(483) > fast.processing_time(483));
        assert!(slow.processing_time(10_000) > slow.processing_time(100));
    }

    #[test]
    fn propagation_adds_atlantic_between_regions() {
        let us = HostConfig::named("us").region(Region::Us);
        let eu = HostConfig::named("eu").region(Region::Eu);
        let same = propagation(&us, &us.clone());
        let cross = propagation(&us, &eu);
        assert!(cross > same);
        assert_eq!(cross - crate::profiles::TRANSATLANTIC_ONE_WAY, same);
    }
}
