//! The simulation engine: owns hosts, processes and connections, and runs
//! the event loop.

use std::collections::HashMap;

use wsd_telemetry::{Counter, Scope, VirtualClock};

use crate::conn::{ConnId, ConnPhase, Connection, RefuseReason, Side};
use crate::event::{EventQueue, SimEvent};
use crate::host::{propagation, FirewallPolicy, Host, HostConfig, HostId, OverLimit};
use crate::process::{Ctx, Op, ProcEvent, ProcId, Process};
use crate::rand::SimRng;
use crate::time::{SimDuration, SimTime};

/// Wire size charged for SYN / SYN-ACK / FIN segments.
const CONTROL_SEGMENT_BYTES: usize = 60;

struct ProcSlot {
    host: HostId,
    process: Option<Box<dyn Process>>,
}

/// A deterministic discrete-event simulation.
pub struct Simulation {
    now: SimTime,
    queue: EventQueue,
    rng: SimRng,
    hosts: Vec<Host>,
    host_names: HashMap<String, HostId>,
    procs: Vec<ProcSlot>,
    listeners: HashMap<(HostId, u16), ProcId>,
    conns: HashMap<ConnId, Connection>,
    next_conn: u64,
    events_processed: u64,
    messages_delivered: u64,
    tele: Option<NetTelemetry>,
}

/// Network-level instruments bound by [`Simulation::bind_telemetry`]: the
/// accept/refuse/timeout outcomes of the TCP-like handshake model, plus a
/// [`VirtualClock`] the event loop advances so registry snapshots and the
/// trace ring stamp virtual (not wall) time.
struct NetTelemetry {
    clock: VirtualClock,
    connect_attempts: Counter,
    conns_established: Counter,
    syn_dropped_firewall: Counter,
    syn_dropped_backlog: Counter,
    refused_backlog: Counter,
    refused_no_listener: Counter,
    refused_local_limit: Counter,
    refused_no_host: Counter,
    connect_timeouts: Counter,
    messages_delivered: Counter,
    bytes_delivered: Counter,
}

impl Simulation {
    /// Creates an empty simulation with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng: SimRng::new(seed),
            hosts: Vec::new(),
            host_names: HashMap::new(),
            procs: Vec::new(),
            listeners: HashMap::new(),
            conns: HashMap::new(),
            next_conn: 0,
            events_processed: 0,
            messages_delivered: 0,
            tele: None,
        }
    }

    /// Binds network-level instruments under `scope` and hands the event
    /// loop the [`VirtualClock`] to advance as virtual time progresses.
    /// Pass the clock the owning registry was built with
    /// ([`wsd_telemetry::Registry::with_clock`]) so snapshot and trace
    /// timestamps are in virtual microseconds.
    pub fn bind_telemetry(&mut self, scope: &Scope, clock: VirtualClock) {
        self.tele = Some(NetTelemetry {
            clock,
            connect_attempts: scope.counter("connect_attempts"),
            conns_established: scope.counter("conns_established"),
            syn_dropped_firewall: scope.counter("syn_dropped_firewall"),
            syn_dropped_backlog: scope.counter("syn_dropped_backlog"),
            refused_backlog: scope.counter("refused_backlog"),
            refused_no_listener: scope.counter("refused_no_listener"),
            refused_local_limit: scope.counter("refused_local_limit"),
            refused_no_host: scope.counter("refused_no_host"),
            connect_timeouts: scope.counter("connect_timeouts"),
            messages_delivered: scope.counter("messages_delivered"),
            bytes_delivered: scope.counter("bytes_delivered"),
        });
    }

    fn tele_count(&self, pick: impl Fn(&NetTelemetry) -> &Counter) {
        if let Some(t) = &self.tele {
            pick(t).inc();
        }
    }

    /// Adds a host.
    ///
    /// # Panics
    ///
    /// Panics if another host already carries the same name.
    pub fn add_host(&mut self, config: HostConfig) -> HostId {
        let id = HostId(self.hosts.len());
        let prev = self.host_names.insert(config.name.clone(), id);
        assert!(prev.is_none(), "duplicate host name {:?}", config.name);
        self.hosts.push(Host::new(config));
        id
    }

    /// Spawns a process on a host; it receives [`ProcEvent::Start`] at the
    /// current time.
    pub fn spawn(&mut self, host: HostId, process: Box<dyn Process>) -> ProcId {
        self.spawn_at(host, process, self.now)
    }

    /// Spawns a process whose `Start` event fires at `at` (for ramped
    /// workloads).
    pub fn spawn_at(&mut self, host: HostId, process: Box<dyn Process>, at: SimTime) -> ProcId {
        assert!(host.0 < self.hosts.len(), "unknown host");
        let id = ProcId(self.procs.len());
        self.procs.push(ProcSlot {
            host,
            process: Some(process),
        });
        self.queue.push(at.max(self.now), SimEvent::ProcStart(id));
        id
    }

    /// Registers `proc` as the listener on its host's `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port is taken.
    pub fn listen(&mut self, proc: ProcId, port: u16) {
        let host = self.procs[proc.0].host;
        let prev = self.listeners.insert((host, port), proc);
        assert!(prev.is_none(), "port {port} already bound on host {host:?}");
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total messages delivered to processes so far.
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// The id of the host named `name`.
    pub fn host_id(&self, name: &str) -> Option<HostId> {
        self.host_names.get(name).copied()
    }

    /// Number of currently established inbound connections on a host.
    pub fn inbound_established(&self, host: HostId) -> usize {
        self.hosts[host.0].inbound_established
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue drains or virtual time would pass `deadline`;
    /// events at exactly `deadline` still run.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
        if let Some(t) = &self.tele {
            t.clock.advance_to(self.now.as_micros());
        }
    }

    /// Processes one event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        if let Some(t) = &self.tele {
            t.clock.advance_to(at.as_micros());
        }
        self.events_processed += 1;
        self.handle(event);
        true
    }

    fn handle(&mut self, event: SimEvent) {
        match event {
            SimEvent::ProcStart(p) => self.dispatch(p, ProcEvent::Start),
            SimEvent::Timer(p, token) => self.dispatch(p, ProcEvent::Timer { token }),
            SimEvent::SynArrives { conn } => self.on_syn(conn),
            SimEvent::EstablishedAtClient { conn } => {
                let Some(c) = self.conns.get_mut(&conn) else {
                    return;
                };
                if c.phase == ConnPhase::Established && !c.client_notified {
                    c.client_notified = true;
                    let client = c.client_proc;
                    self.tele_count(|t| &t.conns_established);
                    self.dispatch(client, ProcEvent::ConnEstablished { conn });
                }
            }
            SimEvent::RefusedAtClient { conn, reason } => {
                let Some(c) = self.conns.get_mut(&conn) else {
                    return;
                };
                if !c.client_notified && c.phase != ConnPhase::Closed {
                    c.client_notified = true;
                    c.phase = ConnPhase::Closed;
                    let client = c.client_proc;
                    self.release_outbound(conn);
                    self.dispatch(client, ProcEvent::ConnRefused { conn, reason });
                }
            }
            SimEvent::ConnectTimeout { conn } => {
                let Some(c) = self.conns.get_mut(&conn) else {
                    return;
                };
                if !c.client_notified && c.phase != ConnPhase::Closed {
                    c.client_notified = true;
                    c.phase = ConnPhase::Closed;
                    let client = c.client_proc;
                    let server = c.server_proc;
                    self.release_inbound(conn);
                    self.release_outbound(conn);
                    self.tele_count(|t| &t.connect_timeouts);
                    if let Some(server) = server {
                        self.dispatch(server, ProcEvent::ConnClosed { conn });
                    }
                    self.dispatch(
                        client,
                        ProcEvent::ConnRefused {
                            conn,
                            reason: RefuseReason::TimedOut,
                        },
                    );
                }
            }
            SimEvent::Deliver { conn, to, bytes } => {
                let Some(c) = self.conns.get(&conn) else {
                    return;
                };
                // Data already serialized onto the wire is delivered
                // unless the *receiving* side closed by its own call —
                // a sender's FIN never outruns its data, as in TCP.
                if c.locally_closed[side_ix(to)] {
                    return;
                }
                if let (_, Some(proc)) = c.endpoint(to) {
                    self.messages_delivered += 1;
                    if let Some(t) = &self.tele {
                        t.messages_delivered.inc();
                        t.bytes_delivered.add(bytes.len() as u64);
                    }
                    self.dispatch(proc, ProcEvent::Message { conn, bytes });
                }
            }
            SimEvent::CloseArrives { conn, to } => {
                let Some(c) = self.conns.get_mut(&conn) else {
                    return;
                };
                if c.close_seen[side_ix(to)] {
                    return; // this side already closed
                }
                c.phase = ConnPhase::Closed;
                c.close_seen[side_ix(to)] = true;
                let target = c.endpoint(to).1;
                self.release_inbound(conn);
                self.release_outbound(conn);
                if let Some(proc) = target {
                    self.dispatch(proc, ProcEvent::ConnClosed { conn });
                }
            }
        }
    }

    fn on_syn(&mut self, conn: ConnId) {
        let Some(c) = self.conns.get(&conn) else {
            return;
        };
        if c.phase != ConnPhase::Connecting {
            return; // already timed out
        }
        let server_host = c.server_host;
        let port = c.server_port;
        let client_host = c.client_host;
        let host_cfg = self.hosts[server_host.0].config.clone();
        let back_prop = propagation(
            &self.hosts[server_host.0].config,
            &self.hosts[client_host.0].config,
        );
        // Firewalls drop inbound SYNs silently: the client just times out.
        if host_cfg.firewall == FirewallPolicy::OutboundOnly {
            self.tele_count(|t| &t.syn_dropped_firewall);
            return;
        }
        let listener = self.listeners.get(&(server_host, port)).copied();
        let Some(listener) = listener else {
            // Active refusal: RST travels back.
            self.tele_count(|t| &t.refused_no_listener);
            self.queue.push(
                self.now + back_prop,
                SimEvent::RefusedAtClient {
                    conn,
                    reason: RefuseReason::Refused,
                },
            );
            return;
        };
        // Accept-limit check (the SYN backlog).
        let host = &self.hosts[server_host.0];
        if host.inbound_established >= host.config.accept_limit {
            let over_limit = host.config.over_limit;
            match over_limit {
                OverLimit::Drop => {
                    // Silence — client times out.
                    self.tele_count(|t| &t.syn_dropped_backlog);
                }
                OverLimit::Refuse => {
                    self.tele_count(|t| &t.refused_backlog);
                    self.queue.push(
                        self.now + back_prop,
                        SimEvent::RefusedAtClient {
                            conn,
                            reason: RefuseReason::Refused,
                        },
                    );
                }
            }
            return;
        }
        self.hosts[server_host.0].inbound_established += 1;
        let c = self.conns.get_mut(&conn).expect("conn vanished");
        c.counted_inbound = true;
        c.server_proc = Some(listener);
        c.phase = ConnPhase::Established;
        // SYN-ACK travels back; charge it like a control segment.
        let established_at =
            self.path_delivery_time(server_host, client_host, CONTROL_SEGMENT_BYTES, false);
        self.queue
            .push(established_at, SimEvent::EstablishedAtClient { conn });
        self.dispatch(listener, ProcEvent::ConnAccepted { conn, port });
    }

    /// Time at which `bytes` sent now from `src` finish arriving at `dst`
    /// (optionally including the receiver's CPU cost).
    fn path_delivery_time(
        &mut self,
        src: HostId,
        dst: HostId,
        bytes: usize,
        charge_cpu: bool,
    ) -> SimTime {
        let up_done = self.hosts[src.0].reserve_uplink(self.now, bytes);
        let prop = propagation(&self.hosts[src.0].config, &self.hosts[dst.0].config);
        let arrive = up_done + prop;
        let down_done = self.hosts[dst.0].reserve_downlink(arrive, bytes);
        if charge_cpu {
            down_done + self.hosts[dst.0].processing_time(bytes)
        } else {
            down_done
        }
    }

    fn release_inbound(&mut self, conn: ConnId) {
        if let Some(c) = self.conns.get_mut(&conn) {
            if c.counted_inbound {
                c.counted_inbound = false;
                let h = &mut self.hosts[c.server_host.0];
                h.inbound_established = h.inbound_established.saturating_sub(1);
            }
        }
    }

    fn release_outbound(&mut self, conn: ConnId) {
        if let Some(c) = self.conns.get_mut(&conn) {
            if c.counted_outbound {
                c.counted_outbound = false;
                let h = &mut self.hosts[c.client_host.0];
                h.outbound_open = h.outbound_open.saturating_sub(1);
            }
        }
    }

    fn dispatch(&mut self, proc: ProcId, event: ProcEvent) {
        let Some(mut process) = self.procs[proc.0].process.take() else {
            return; // process was stopped
        };
        let mut ctx = Ctx {
            now: self.now,
            me: proc,
            rng: &mut self.rng,
            ops: Vec::new(),
            next_conn_id: &mut self.next_conn,
            conns: &self.conns,
        };
        process.on_event(&mut ctx, event);
        let ops = ctx.ops;
        self.procs[proc.0].process = Some(process);
        for op in ops {
            self.apply(proc, op);
        }
    }

    fn apply(&mut self, proc: ProcId, op: Op) {
        match op {
            Op::SetTimer { delay, token } => {
                self.queue.push(self.now + delay, SimEvent::Timer(proc, token));
            }
            Op::Connect {
                conn,
                host,
                port,
                timeout,
            } => {
                let client_host = self.procs[proc.0].host;
                self.tele_count(|t| &t.connect_attempts);
                // Local socket exhaustion fails before any packet moves.
                {
                    let h = &self.hosts[client_host.0];
                    if h.outbound_open >= h.config.outbound_limit {
                        self.conns.insert(
                            conn,
                            Connection {
                                client_host,
                                client_proc: proc,
                                server_host: client_host, // placeholder
                                server_port: port,
                                server_proc: None,
                                phase: ConnPhase::Connecting,
                                counted_inbound: false,
                                counted_outbound: false,
                                client_notified: false,
                                close_seen: [false; 2],
                                locally_closed: [false; 2],
                            },
                        );
                        self.tele_count(|t| &t.refused_local_limit);
                        self.queue.push(
                            self.now + SimDuration::from_micros(10),
                            SimEvent::RefusedAtClient {
                                conn,
                                reason: RefuseReason::LocalLimit,
                            },
                        );
                        return;
                    }
                }
                let Some(server_host) = self.host_id(&host) else {
                    self.conns.insert(
                        conn,
                        Connection {
                            client_host,
                            client_proc: proc,
                            server_host: client_host, // placeholder
                            server_port: port,
                            server_proc: None,
                            phase: ConnPhase::Connecting,
                            counted_inbound: false,
                            counted_outbound: false,
                            client_notified: false,
                            close_seen: [false; 2],
                            locally_closed: [false; 2],
                        },
                    );
                    self.tele_count(|t| &t.refused_no_host);
                    self.queue.push(
                        self.now + SimDuration::from_micros(1),
                        SimEvent::RefusedAtClient {
                            conn,
                            reason: RefuseReason::NoSuchHost,
                        },
                    );
                    return;
                };
                self.conns.insert(
                    conn,
                    Connection {
                        client_host,
                        client_proc: proc,
                        server_host,
                        server_port: port,
                        server_proc: None,
                        phase: ConnPhase::Connecting,
                        counted_inbound: false,
                        counted_outbound: true,
                        client_notified: false,
                        close_seen: [false; 2],
                        locally_closed: [false; 2],
                    },
                );
                self.hosts[client_host.0].outbound_open += 1;
                let syn_at = self.path_delivery_time(
                    client_host,
                    server_host,
                    CONTROL_SEGMENT_BYTES,
                    false,
                );
                self.queue.push(syn_at, SimEvent::SynArrives { conn });
                self.queue
                    .push(self.now + timeout, SimEvent::ConnectTimeout { conn });
            }
            Op::Send { conn, bytes } => {
                let Some(c) = self.conns.get(&conn) else {
                    return;
                };
                let from_side = if c.client_proc == proc {
                    Side::Client
                } else {
                    Side::Server
                };
                if c.phase != ConnPhase::Established || c.close_seen[side_ix(from_side)] {
                    return;
                }
                let (src, _) = c.endpoint(from_side);
                let (dst, _) = c.endpoint(from_side.other());
                let to = from_side.other();
                let deliver_at = self.path_delivery_time(src, dst, bytes.len(), true);
                self.queue
                    .push(deliver_at, SimEvent::Deliver { conn, to, bytes });
            }
            Op::Close { conn } => {
                let Some(c) = self.conns.get_mut(&conn) else {
                    return;
                };
                let from_side = if c.client_proc == proc {
                    Side::Client
                } else {
                    Side::Server
                };
                let ix = side_ix(from_side);
                if c.close_seen[ix] {
                    return; // already closed locally
                }
                c.close_seen[ix] = true;
                c.locally_closed[ix] = true;
                let established = c.phase == ConnPhase::Established;
                let both_closed = c.close_seen[side_ix(from_side.other())];
                let (src, _) = c.endpoint(from_side);
                let (dst, _) = c.endpoint(from_side.other());
                let to = from_side.other();
                if !established || both_closed {
                    // Aborting an unestablished attempt, or completing a
                    // mutual close: tear down now.
                    c.phase = ConnPhase::Closed;
                    self.release_inbound(conn);
                    self.release_outbound(conn);
                    return;
                }
                // Graceful close: the FIN serializes onto the same links
                // *behind* any data already queued, so in-flight sends
                // still arrive (TCP semantics).
                let fin_at = self.path_delivery_time(src, dst, CONTROL_SEGMENT_BYTES, false);
                self.queue.push(fin_at, SimEvent::CloseArrives { conn, to });
            }
        }
    }

    /// Stops a process: it receives no further events. Its connections
    /// stay open until closed by peers or timeouts (a crashed JVM's
    /// sockets linger similarly).
    pub fn stop_process(&mut self, proc: ProcId) {
        self.procs[proc.0].process = None;
    }

    /// Immutable access to a live process (for reading stats mid-run).
    pub fn process_ref(&self, proc: ProcId) -> Option<&dyn Process> {
        self.procs[proc.0].process.as_deref()
    }
}

fn side_ix(side: Side) -> usize {
    match side {
        Side::Client => 0,
        Side::Server => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Payload;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Records everything that happens to it.
    struct Recorder {
        log: Rc<RefCell<Vec<String>>>,
        /// On Start, connect here (host, port) if set.
        target: Option<(String, u16)>,
        /// Payload to send once established.
        send_on_establish: Option<Payload>,
        /// Echo received messages back.
        echo: bool,
        /// Close after receiving this many messages.
        close_after: Option<usize>,
        received: usize,
        /// Arrival times of received messages.
        msg_times: Rc<RefCell<Vec<SimTime>>>,
    }

    impl Recorder {
        fn new(log: Rc<RefCell<Vec<String>>>) -> Self {
            Recorder {
                log,
                target: None,
                send_on_establish: None,
                echo: false,
                close_after: None,
                received: 0,
                msg_times: Rc::new(RefCell::new(Vec::new())),
            }
        }
    }

    impl Process for Recorder {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
            match event {
                ProcEvent::Start => {
                    self.log.borrow_mut().push("start".into());
                    if let Some((host, port)) = self.target.clone() {
                        ctx.connect(&host, port, SimDuration::from_secs(3));
                    }
                }
                ProcEvent::Timer { token } => {
                    self.log.borrow_mut().push(format!("timer:{token}"));
                }
                ProcEvent::ConnEstablished { conn } => {
                    self.log.borrow_mut().push("established".into());
                    if let Some(p) = self.send_on_establish.take() {
                        ctx.send(conn, p).unwrap();
                    }
                }
                ProcEvent::ConnRefused { reason, .. } => {
                    self.log.borrow_mut().push(format!("refused:{reason:?}"));
                }
                ProcEvent::ConnAccepted { .. } => {
                    self.log.borrow_mut().push("accepted".into());
                }
                ProcEvent::Message { conn, bytes } => {
                    self.received += 1;
                    self.msg_times.borrow_mut().push(ctx.now());
                    self.log
                        .borrow_mut()
                        .push(format!("msg:{}", String::from_utf8_lossy(&bytes)));
                    if self.echo {
                        let _ = ctx.send(conn, bytes);
                    }
                    if self.close_after == Some(self.received) {
                        ctx.close(conn);
                    }
                }
                ProcEvent::ConnClosed { .. } => {
                    self.log.borrow_mut().push("closed".into());
                }
            }
        }
    }

    fn two_host_sim() -> (Simulation, HostId, HostId) {
        let mut sim = Simulation::new(1);
        let a = sim.add_host(HostConfig::named("a"));
        let b = sim.add_host(HostConfig::named("b"));
        (sim, a, b)
    }

    #[test]
    fn echo_round_trip_works() {
        let (mut sim, a, b) = two_host_sim();
        let slog = Rc::new(RefCell::new(vec![]));
        let clog = Rc::new(RefCell::new(vec![]));
        let mut server = Recorder::new(slog.clone());
        server.echo = true;
        let sp = sim.spawn(b, Box::new(server));
        sim.listen(sp, 80);
        let mut client = Recorder::new(clog.clone());
        client.target = Some(("b".into(), 80));
        client.send_on_establish = Some(Payload::from_static(b"hello"));
        sim.spawn(a, Box::new(client));
        sim.run();
        assert_eq!(
            clog.borrow().as_slice(),
            ["start", "established", "msg:hello"]
        );
        assert_eq!(slog.borrow().as_slice(), ["start", "accepted", "msg:hello"]);
        assert!(sim.now() > SimTime::ZERO);
    }

    #[test]
    fn connect_to_missing_host_refused() {
        let (mut sim, a, _) = two_host_sim();
        let log = Rc::new(RefCell::new(vec![]));
        let mut client = Recorder::new(log.clone());
        client.target = Some(("nowhere".into(), 80));
        sim.spawn(a, Box::new(client));
        sim.run();
        assert_eq!(log.borrow().as_slice(), ["start", "refused:NoSuchHost"]);
    }

    #[test]
    fn connect_to_closed_port_refused() {
        let (mut sim, a, _b) = two_host_sim();
        let log = Rc::new(RefCell::new(vec![]));
        let mut client = Recorder::new(log.clone());
        client.target = Some(("b".into(), 81));
        sim.spawn(a, Box::new(client));
        sim.run();
        assert_eq!(log.borrow().as_slice(), ["start", "refused:Refused"]);
    }

    #[test]
    fn firewall_drops_syn_then_client_times_out() {
        let mut sim = Simulation::new(1);
        let a = sim.add_host(HostConfig::named("a"));
        let b = sim.add_host(HostConfig::named("b").firewall(FirewallPolicy::OutboundOnly));
        let slog = Rc::new(RefCell::new(vec![]));
        let sp = sim.spawn(b, Box::new(Recorder::new(slog.clone())));
        sim.listen(sp, 80);
        let log = Rc::new(RefCell::new(vec![]));
        let mut client = Recorder::new(log.clone());
        client.target = Some(("b".into(), 80));
        sim.spawn(a, Box::new(client));
        sim.run();
        assert_eq!(log.borrow().as_slice(), ["start", "refused:TimedOut"]);
        // The server never saw anything.
        assert_eq!(slog.borrow().as_slice(), ["start"]);
        // And the timeout took the configured 3 seconds.
        assert!(sim.now() >= SimTime::ZERO + SimDuration::from_secs(3));
    }

    #[test]
    fn outbound_through_firewall_still_works() {
        let mut sim = Simulation::new(1);
        let inria = sim.add_host(HostConfig::named("inria").firewall(FirewallPolicy::OutboundOnly));
        let us = sim.add_host(HostConfig::named("us"));
        let slog = Rc::new(RefCell::new(vec![]));
        let mut server = Recorder::new(slog.clone());
        server.echo = true;
        let sp = sim.spawn(us, Box::new(server));
        sim.listen(sp, 80);
        let clog = Rc::new(RefCell::new(vec![]));
        let mut client = Recorder::new(clog.clone());
        client.target = Some(("us".into(), 80));
        client.send_on_establish = Some(Payload::from_static(b"out"));
        sim.spawn(inria, Box::new(client));
        sim.run();
        assert_eq!(clog.borrow().last().unwrap(), "msg:out");
    }

    #[test]
    fn accept_limit_drop_causes_timeouts() {
        let mut sim = Simulation::new(1);
        let a = sim.add_host(HostConfig::named("a"));
        let b = sim.add_host(HostConfig::named("b").accept_limit(2, OverLimit::Drop));
        let slog = Rc::new(RefCell::new(vec![]));
        let sp = sim.spawn(b, Box::new(Recorder::new(slog.clone())));
        sim.listen(sp, 80);
        let mut logs = vec![];
        for _ in 0..5 {
            let log = Rc::new(RefCell::new(vec![]));
            let mut client = Recorder::new(log.clone());
            client.target = Some(("b".into(), 80));
            sim.spawn(a, Box::new(client));
            logs.push(log);
        }
        sim.run();
        let established = logs
            .iter()
            .filter(|l| l.borrow().iter().any(|e| e == "established"))
            .count();
        let timed_out = logs
            .iter()
            .filter(|l| l.borrow().iter().any(|e| e == "refused:TimedOut"))
            .count();
        assert_eq!(established, 2);
        assert_eq!(timed_out, 3);
        assert_eq!(sim.inbound_established(sim.host_id("b").unwrap()), 2);
    }

    #[test]
    fn accept_limit_refuse_fails_fast() {
        let mut sim = Simulation::new(1);
        let a = sim.add_host(HostConfig::named("a"));
        let b = sim.add_host(HostConfig::named("b").accept_limit(1, OverLimit::Refuse));
        let sp = sim.spawn(b, Box::new(Recorder::new(Rc::new(RefCell::new(vec![])))));
        sim.listen(sp, 80);
        let mut logs = vec![];
        for _ in 0..3 {
            let log = Rc::new(RefCell::new(vec![]));
            let mut client = Recorder::new(log.clone());
            client.target = Some(("b".into(), 80));
            sim.spawn(a, Box::new(client));
            logs.push(log);
        }
        // Refusals must arrive long before the 3 s connect timeout.
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        let refused = logs
            .iter()
            .filter(|l| l.borrow().iter().any(|e| e == "refused:Refused"))
            .count();
        assert_eq!(refused, 2);
    }

    #[test]
    fn close_notifies_peer_and_releases_inbound_slot() {
        let mut sim = Simulation::new(1);
        let a = sim.add_host(HostConfig::named("a"));
        let b = sim.add_host(HostConfig::named("b").accept_limit(1, OverLimit::Refuse));
        let slog = Rc::new(RefCell::new(vec![]));
        let mut server = Recorder::new(slog.clone());
        server.echo = false;
        server.close_after = Some(1);
        let sp = sim.spawn(b, Box::new(server));
        sim.listen(sp, 80);
        let clog = Rc::new(RefCell::new(vec![]));
        let mut client = Recorder::new(clog.clone());
        client.target = Some(("b".into(), 80));
        client.send_on_establish = Some(Payload::from_static(b"x"));
        sim.spawn(a, Box::new(client));
        sim.run();
        assert!(clog.borrow().iter().any(|e| e == "closed"));
        assert_eq!(sim.inbound_established(sim.host_id("b").unwrap()), 0);
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed {
            log: Rc<RefCell<Vec<String>>>,
        }
        impl Process for Timed {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
                match event {
                    ProcEvent::Start => {
                        ctx.set_timer(SimDuration::from_millis(20), 2);
                        ctx.set_timer(SimDuration::from_millis(10), 1);
                        ctx.set_timer(SimDuration::from_millis(30), 3);
                    }
                    ProcEvent::Timer { token } => {
                        self.log.borrow_mut().push(format!("t{token}@{}", ctx.now()));
                    }
                    _ => {}
                }
            }
        }
        let (mut sim, a, _) = two_host_sim();
        let log = Rc::new(RefCell::new(vec![]));
        sim.spawn(a, Box::new(Timed { log: log.clone() }));
        sim.run();
        let entries = log.borrow();
        assert!(entries[0].starts_with("t1"));
        assert!(entries[1].starts_with("t2"));
        assert!(entries[2].starts_with("t3"));
    }

    #[test]
    fn bandwidth_shapes_delivery_time() {
        // Same payload over a fast vs slow uplink: slow arrives later.
        let run = |up_kbps: u32| -> SimTime {
            let mut sim = Simulation::new(1);
            let a = sim.add_host(HostConfig::named("a").bandwidth(up_kbps, 100_000));
            let b = sim.add_host(HostConfig::named("b"));
            let slog = Rc::new(RefCell::new(vec![]));
            let server = Recorder::new(slog);
            let arrival = server.msg_times.clone();
            let sp = sim.spawn(b, Box::new(server));
            sim.listen(sp, 80);
            let clog = Rc::new(RefCell::new(vec![]));
            let mut client = Recorder::new(clog);
            client.target = Some(("b".into(), 80));
            client.send_on_establish = Some(Payload::from(vec![0u8; 10_000]));
            sim.spawn(a, Box::new(client));
            sim.run();
            let t = arrival.borrow()[0];
            t
        };
        assert!(run(288) > run(2739));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let (mut sim, a, b) = two_host_sim();
            let slog = Rc::new(RefCell::new(vec![]));
            let mut server = Recorder::new(slog.clone());
            server.echo = true;
            let sp = sim.spawn(b, Box::new(server));
            sim.listen(sp, 80);
            for _ in 0..10 {
                let log = Rc::new(RefCell::new(vec![]));
                let mut client = Recorder::new(log);
                client.target = Some(("b".into(), 80));
                client.send_on_establish = Some(Payload::from_static(b"m"));
                sim.spawn(a, Box::new(client));
            }
            sim.run();
            (sim.events_processed(), sim.messages_delivered(), sim.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        struct Ticker;
        impl Process for Ticker {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
                match event {
                    ProcEvent::Start | ProcEvent::Timer { .. } => {
                        ctx.set_timer(SimDuration::from_millis(10), 0);
                    }
                    _ => {}
                }
            }
        }
        let (mut sim, a, _) = two_host_sim();
        sim.spawn(a, Box::new(Ticker));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(1));
        // ~100 ticks, not unbounded.
        assert!(sim.events_processed() <= 102);
    }

    #[test]
    fn stopped_process_gets_no_events() {
        let (mut sim, a, b) = two_host_sim();
        let slog = Rc::new(RefCell::new(vec![]));
        let sp = sim.spawn(b, Box::new(Recorder::new(slog.clone())));
        sim.listen(sp, 80);
        sim.stop_process(sp);
        let clog = Rc::new(RefCell::new(vec![]));
        let mut client = Recorder::new(clog.clone());
        client.target = Some(("b".into(), 80));
        sim.spawn(a, Box::new(client));
        sim.run();
        // Stopped listener: accept still happens at the host level? No —
        // the process is gone, so dispatch is a no-op; the client still
        // sees TCP establish (the OS accepts), which mirrors a hung JVM.
        assert!(slog.borrow().len() <= 1);
    }

    #[test]
    fn telemetry_clock_tracks_virtual_time_and_counts_outcomes() {
        let clock = wsd_telemetry::VirtualClock::new();
        let reg = wsd_telemetry::Registry::with_clock(std::sync::Arc::new(clock.clone()));
        let mut sim = Simulation::new(1);
        sim.bind_telemetry(&reg.scope("net"), clock);
        let a = sim.add_host(HostConfig::named("a"));
        let b = sim.add_host(HostConfig::named("b").firewall(FirewallPolicy::OutboundOnly));
        let sp = sim.spawn(b, Box::new(Recorder::new(Rc::new(RefCell::new(vec![])))));
        sim.listen(sp, 80);
        let mut blocked = Recorder::new(Rc::new(RefCell::new(vec![])));
        blocked.target = Some(("b".into(), 80));
        sim.spawn(a, Box::new(blocked));
        let mut lost = Recorder::new(Rc::new(RefCell::new(vec![])));
        lost.target = Some(("nowhere".into(), 80));
        sim.spawn(a, Box::new(lost));
        sim.run();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("net.connect_attempts"), 2);
        assert_eq!(snap.counter("net.syn_dropped_firewall"), 1);
        assert_eq!(snap.counter("net.refused_no_host"), 1);
        assert_eq!(snap.counter("net.connect_timeouts"), 1);
        // The registry clock advanced with virtual time: the blocked
        // connect timed out at 3 virtual seconds.
        assert_eq!(snap.at_us(), sim.now().as_micros());
        assert!(snap.at_us() >= 3_000_000);
    }

    #[test]
    fn send_on_unknown_conn_is_not_yours() {
        struct BadSender {
            result: Rc<RefCell<Option<Result<(), crate::process::SendError>>>>,
        }
        impl Process for BadSender {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
                if let ProcEvent::Start = event {
                    let r = ctx.send(ConnId(999), Payload::from_static(b"x"));
                    *self.result.borrow_mut() = Some(r);
                }
            }
        }
        let (mut sim, a, _) = two_host_sim();
        let result = Rc::new(RefCell::new(None));
        sim.spawn(a, Box::new(BadSender { result: result.clone() }));
        sim.run();
        assert_eq!(
            *result.borrow(),
            Some(Err(crate::process::SendError::NotYours))
        );
    }
}
