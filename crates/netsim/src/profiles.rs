//! Site profiles calibrated to the paper's §4.3 measurements.
//!
//! Link speeds come straight from the paper's broadband-test numbers;
//! CPU costs scale inversely with the machines' clocks, anchored so the
//! fast-path experiment (Figure 5) plateaus in the paper's 5000–6000
//! messages/minute range (≈10 ms of 2004-era Java SOAP processing per
//! message on the P4).

use crate::host::{FirewallPolicy, HostConfig, Region};
use crate::time::SimDuration;

/// One-way latency added between hosts in different regions (the
/// Atlantic: France ↔ Indiana).
pub const TRANSATLANTIC_ONE_WAY: SimDuration = SimDuration(45_000);

/// Per-message CPU anchor: microseconds per KB on a 1 GHz machine.
pub const CPU_US_PER_KB_AT_1GHZ: u64 = 34_000;

/// CPU cost per KB for a machine of `ghz` effective clock.
pub fn cpu_per_kb(ghz: f64) -> SimDuration {
    SimDuration((CPU_US_PER_KB_AT_1GHZ as f64 / ghz.max(0.01)) as u64)
}

/// `iuLow`: the Bloomington cable modem — 2333 kbps down / 288 kbps up,
/// P3 @ 850 MHz (paper §4.3).
pub fn iu_low(name: &str) -> HostConfig {
    HostConfig::named(name)
        .bandwidth(288, 2333)
        .latency(SimDuration::from_millis(15))
        .region(Region::Us)
        .cpu_per_kb(cpu_per_kb(0.85))
}

/// `iuHight`: Indiana University backbone — 3655 kbps down / 2739 kbps up,
/// SunFire 280R 2×1200 MHz (two CPUs ≈ 2.4 GHz effective for a
/// multi-threaded server).
pub fn iu_high(name: &str) -> HostConfig {
    HostConfig::named(name)
        .bandwidth(2739, 3655)
        .latency(SimDuration::from_millis(5))
        .region(Region::Us)
        .cpu_per_kb(cpu_per_kb(2.4))
}

/// `inriaFast`: P4 @ 3.4 GHz on the INRIA institutional network —
/// 1335 kbps down / 1262 kbps up, behind the institutional firewall.
pub fn inria_fast(name: &str) -> HostConfig {
    HostConfig::named(name)
        .bandwidth(1262, 1335)
        .latency(SimDuration::from_millis(10))
        .region(Region::Eu)
        .firewall(FirewallPolicy::OutboundOnly)
        .cpu_per_kb(cpu_per_kb(3.4))
}

/// `inriaSlow`: P3 @ 1 GHz, same INRIA network and firewall.
pub fn inria_slow(name: &str) -> HostConfig {
    HostConfig::named(name)
        .bandwidth(1262, 1335)
        .latency(SimDuration::from_millis(10))
        .region(Region::Eu)
        .firewall(FirewallPolicy::OutboundOnly)
        .cpu_per_kb(cpu_per_kb(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_speeds_match_the_paper() {
        let low = iu_low("x");
        assert_eq!((low.up_kbps, low.down_kbps), (288, 2333));
        let high = iu_high("x");
        assert_eq!((high.up_kbps, high.down_kbps), (2739, 3655));
        let inria = inria_fast("x");
        assert_eq!((inria.up_kbps, inria.down_kbps), (1262, 1335));
    }

    #[test]
    fn inria_is_behind_a_firewall() {
        assert_eq!(inria_fast("x").firewall, FirewallPolicy::OutboundOnly);
        assert_eq!(inria_slow("x").firewall, FirewallPolicy::OutboundOnly);
        assert_eq!(iu_low("x").firewall, FirewallPolicy::Open);
    }

    #[test]
    fn faster_clock_means_cheaper_processing() {
        assert!(inria_slow("a").cpu_per_kb > inria_fast("b").cpu_per_kb);
        assert!(iu_low("a").cpu_per_kb > iu_high("b").cpu_per_kb);
    }

    #[test]
    fn fig5_plateau_anchor_is_5k_to_6k_per_minute() {
        // One message/KB on the P4 costs cpu_per_kb(3.4); the per-minute
        // service ceiling must land in the paper's plateau band.
        let per_msg = cpu_per_kb(3.4).as_secs_f64();
        let per_minute = 60.0 / per_msg;
        assert!(
            (4_500.0..7_500.0).contains(&per_minute),
            "service ceiling {per_minute}/min"
        );
    }

    #[test]
    fn regions_differ_across_the_atlantic() {
        assert_eq!(iu_low("x").region, Region::Us);
        assert_eq!(inria_fast("x").region, Region::Eu);
    }
}
