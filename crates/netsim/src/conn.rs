//! TCP-like connection records.

use crate::host::HostId;
use crate::process::ProcId;

/// Identifies a connection within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// Why a connection attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefuseReason {
    /// Nothing listening (or accept-limit overflow with
    /// [`OverLimit::Refuse`](crate::host::OverLimit::Refuse)): active RST.
    Refused,
    /// No SYN-ACK before the connect timeout — firewall drop or SYN
    /// backlog overflow.
    TimedOut,
    /// The named host does not exist.
    NoSuchHost,
    /// The *local* host is out of sockets (file-descriptor / ephemeral-
    /// port exhaustion): the attempt fails instantly without touching
    /// the network.
    LocalLimit,
}

/// Which endpoint of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Side {
    /// The endpoint that called `connect`.
    Client,
    /// The endpoint that accepted.
    Server,
}

impl Side {
    pub fn other(self) -> Side {
        match self {
            Side::Client => Side::Server,
            Side::Server => Side::Client,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnPhase {
    /// SYN sent, nothing heard back.
    Connecting,
    /// Both endpoints usable.
    Established,
    /// Fully closed or failed.
    Closed,
}

#[derive(Debug)]
pub(crate) struct Connection {
    pub client_host: HostId,
    pub client_proc: ProcId,
    pub server_host: HostId,
    pub server_port: u16,
    /// Set on acceptance.
    pub server_proc: Option<ProcId>,
    pub phase: ConnPhase,
    /// Whether the server side counted against the host's accept limit
    /// (and must be released on close).
    pub counted_inbound: bool,
    /// Whether the client side counted against its host's outbound
    /// socket limit.
    pub counted_outbound: bool,
    /// Whether the client has been told the connection outcome
    /// (established/refused/timed out).
    pub client_notified: bool,
    /// Whether each side (client=0, server=1) has observed the close
    /// (its own `close()` call or the peer's FIN).
    pub close_seen: [bool; 2],
    /// Whether each side closed by its *own* `close()` call — only this
    /// drops data still in flight toward that side.
    pub locally_closed: [bool; 2],
}

impl Connection {
    pub(crate) fn endpoint(&self, side: Side) -> (HostId, Option<ProcId>) {
        match side {
            Side::Client => (self.client_host, Some(self.client_proc)),
            Side::Server => (self.server_host, self.server_proc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_other_flips() {
        assert_eq!(Side::Client.other(), Side::Server);
        assert_eq!(Side::Server.other(), Side::Client);
    }

    #[test]
    fn endpoint_lookup() {
        let c = Connection {
            client_host: HostId(0),
            client_proc: ProcId(1),
            server_host: HostId(2),
            server_port: 80,
            server_proc: None,
            phase: ConnPhase::Connecting,
            counted_inbound: false,
            counted_outbound: false,
            client_notified: false,
            close_seen: [false; 2],
            locally_closed: [false; 2],
        };
        assert_eq!(c.endpoint(Side::Client), (HostId(0), Some(ProcId(1))));
        assert_eq!(c.endpoint(Side::Server), (HostId(2), None));
    }
}
