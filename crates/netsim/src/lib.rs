//! Deterministic discrete-event network simulator.
//!
//! The paper's evaluation ran over real trans-Atlantic links (INRIA ↔
//! Indiana University ↔ a Bloomington cable modem). This crate is the
//! substitution (see `DESIGN.md`): a virtual-time simulator modeling the
//! properties those experiments actually exercise —
//!
//! * **asymmetric access links** with finite bandwidth (a 288 kbps cable
//!   uplink serializes messages one at a time),
//! * **propagation latency** within and across regions (the Atlantic),
//! * **TCP-like connections** with a handshake, accept limits whose
//!   overflow silently drops connection attempts (SYN backlog), connect
//!   timeouts and half-duplex close,
//! * **firewalls** that allow only outbound connections — the premise of
//!   the whole paper,
//! * **host speed** as a per-byte CPU cost scaling with the paper's
//!   machine clocks.
//!
//! Protocol code runs as [`Process`] actors reacting to [`ProcEvent`]s;
//! everything is single-threaded and deterministic for a fixed seed, so
//! every figure regenerates bit-identically (parallelism lives one level
//! up: experiment sweeps run one simulation per thread).
//!
//! # Example
//!
//! ```
//! use wsd_netsim::{Simulation, HostConfig, Process, ProcEvent, Ctx, Payload};
//!
//! struct EchoServer;
//! impl Process for EchoServer {
//!     fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
//!         if let ProcEvent::Message { conn, bytes } = ev {
//!             let _ = ctx.send(conn, bytes); // echo back
//!         }
//!     }
//! }
//!
//! struct Client { done: std::rc::Rc<std::cell::Cell<bool>> }
//! impl Process for Client {
//!     fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
//!         match ev {
//!             ProcEvent::Start => { ctx.connect("server", 80, wsd_netsim::SimDuration::from_secs(5)); }
//!             ProcEvent::ConnEstablished { conn } => { let _ = ctx.send(conn, Payload::from_static(b"ping")); }
//!             ProcEvent::Message { .. } => self.done.set(true),
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let s = sim.add_host(HostConfig::named("server"));
//! let c = sim.add_host(HostConfig::named("client"));
//! let server = sim.spawn(s, Box::new(EchoServer));
//! sim.listen(server, 80);
//! let done = std::rc::Rc::new(std::cell::Cell::new(false));
//! sim.spawn(c, Box::new(Client { done: done.clone() }));
//! sim.run();
//! assert!(done.get());
//! ```

#![warn(missing_docs)]

pub mod conn;
pub mod event;
pub mod host;
pub mod process;
pub mod profiles;
pub mod rand;
pub mod sim;
pub mod time;

pub use conn::{ConnId, RefuseReason};
pub use host::{FirewallPolicy, HostConfig, HostId, OverLimit, Region};
pub use process::{Ctx, ProcEvent, ProcId, Process, SendError};
pub use rand::SimRng;
pub use sim::Simulation;
pub use time::{SimDuration, SimTime};

/// Message payload carried over simulated connections.
pub type Payload = bytes::Bytes;
