//! Conservation and resource-accounting invariants of the simulator.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use wsd_netsim::{
    Ctx, FirewallPolicy, HostConfig, OverLimit, Payload, ProcEvent, Process, SimDuration,
    SimTime, Simulation,
};

/// A sender that opens `conns` connections and pushes `per_conn`
/// messages down each, closing the connection afterwards.
struct Sender {
    conns: usize,
    per_conn: usize,
    opened: usize,
    outcomes: Rc<RefCell<(usize, usize)>>, // (established, refused)
}

impl Process for Sender {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Start => {
                for _ in 0..self.conns {
                    ctx.connect("sink", 80, SimDuration::from_secs(2));
                    self.opened += 1;
                }
            }
            ProcEvent::ConnEstablished { conn } => {
                self.outcomes.borrow_mut().0 += 1;
                for i in 0..self.per_conn {
                    let _ = ctx.send(conn, Payload::from(vec![i as u8; 64]));
                }
                ctx.close(conn);
            }
            ProcEvent::ConnRefused { .. } => {
                self.outcomes.borrow_mut().1 += 1;
            }
            _ => {}
        }
    }
}

struct Sink {
    received: Rc<RefCell<usize>>,
}

impl Process for Sink {
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, ev: ProcEvent) {
        if let ProcEvent::Message { .. } = ev {
            *self.received.borrow_mut() += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every connection attempt resolves exactly once (established or
    /// refused), and the resource counters return to zero after closes.
    #[test]
    fn attempts_resolve_exactly_once_and_slots_drain(
        senders in 1usize..5,
        conns in 1usize..6,
        per_conn in 0usize..5,
        accept_limit in 1usize..20,
    ) {
        let mut sim = Simulation::new(42);
        let sink_host =
            sim.add_host(HostConfig::named("sink").accept_limit(accept_limit, OverLimit::Refuse));
        let received = Rc::new(RefCell::new(0));
        let sp = sim.spawn(sink_host, Box::new(Sink { received: received.clone() }));
        sim.listen(sp, 80);
        let mut outcome_handles = Vec::new();
        for s in 0..senders {
            let host = sim.add_host(HostConfig::named(format!("sender-{s}")));
            let outcomes = Rc::new(RefCell::new((0, 0)));
            outcome_handles.push(outcomes.clone());
            sim.spawn(
                host,
                Box::new(Sender {
                    conns,
                    per_conn,
                    opened: 0,
                    outcomes,
                }),
            );
        }
        sim.run();
        let mut established = 0;
        let mut refused = 0;
        for o in &outcome_handles {
            let (e, r) = *o.borrow();
            established += e;
            refused += r;
        }
        // Exactly-once resolution.
        prop_assert_eq!(established + refused, senders * conns);
        // Messages sent on established connections before close all
        // arrive (send happens-before close in the same event).
        prop_assert_eq!(*received.borrow(), established * per_conn);
        // All inbound slots released after the closes propagate.
        prop_assert_eq!(sim.inbound_established(sim.host_id("sink").unwrap()), 0);
    }

    /// Firewalled destinations never deliver and never leak slots; the
    /// senders all time out.
    #[test]
    fn firewall_blocks_everything(senders in 1usize..4, conns in 1usize..5) {
        let mut sim = Simulation::new(7);
        let sink_host = sim.add_host(
            HostConfig::named("sink").firewall(FirewallPolicy::OutboundOnly),
        );
        let received = Rc::new(RefCell::new(0));
        let sp = sim.spawn(sink_host, Box::new(Sink { received: received.clone() }));
        sim.listen(sp, 80);
        let mut outcome_handles = Vec::new();
        for s in 0..senders {
            let host = sim.add_host(HostConfig::named(format!("sender-{s}")));
            let outcomes = Rc::new(RefCell::new((0, 0)));
            outcome_handles.push(outcomes.clone());
            sim.spawn(host, Box::new(Sender { conns, per_conn: 3, opened: 0, outcomes }));
        }
        sim.run();
        prop_assert_eq!(*received.borrow(), 0);
        for o in &outcome_handles {
            let (e, r) = *o.borrow();
            prop_assert_eq!(e, 0);
            prop_assert_eq!(r, conns);
        }
        prop_assert_eq!(sim.inbound_established(sim.host_id("sink").unwrap()), 0);
    }

    /// The outbound socket limit caps concurrent attempts; the excess
    /// fail instantly with LocalLimit and release nothing at the server.
    #[test]
    fn outbound_limit_enforced(limit in 1usize..6, attempts in 6usize..12) {
        let mut sim = Simulation::new(3);
        let sink_host = sim.add_host(HostConfig::named("sink"));
        let received = Rc::new(RefCell::new(0));
        let sp = sim.spawn(sink_host, Box::new(Sink { received: received.clone() }));
        sim.listen(sp, 80);
        let host = sim.add_host(HostConfig::named("sender").outbound_limit(limit));
        let outcomes = Rc::new(RefCell::new((0, 0)));
        sim.spawn(
            host,
            Box::new(Sender {
                conns: attempts,
                per_conn: 1,
                opened: 0,
                outcomes: outcomes.clone(),
            }),
        );
        // All attempts fire in one Start event, before any close frees a
        // slot: exactly `limit` can be in flight.
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let (established, refused) = *outcomes.borrow();
        prop_assert_eq!(established, limit.min(attempts));
        prop_assert_eq!(refused, attempts.saturating_sub(limit));
    }
}
