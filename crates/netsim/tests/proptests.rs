//! Property-based invariants of the simulator.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use wsd_netsim::{
    Ctx, HostConfig, Payload, ProcEvent, Process, SimDuration, SimTime, Simulation,
};

/// A client that opens one connection and sends `count` messages of
/// `size` bytes, recording arrival times on the echo server side.
struct Pusher {
    count: usize,
    size: usize,
}

impl Process for Pusher {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        match ev {
            ProcEvent::Start => {
                ctx.connect("server", 80, SimDuration::from_secs(10));
            }
            ProcEvent::ConnEstablished { conn } => {
                for _ in 0..self.count {
                    ctx.send(conn, Payload::from(vec![0u8; self.size])).unwrap();
                }
            }
            _ => {}
        }
    }
}

struct Sink {
    arrivals: Rc<RefCell<Vec<SimTime>>>,
}

impl Process for Sink {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
        if let ProcEvent::Message { .. } = ev {
            self.arrivals.borrow_mut().push(ctx.now());
        }
    }
}

fn run_transfer(seed: u64, up_kbps: u32, count: usize, size: usize) -> Vec<SimTime> {
    let mut sim = Simulation::new(seed);
    let server_host = sim.add_host(HostConfig::named("server"));
    let client_host = sim.add_host(HostConfig::named("client").bandwidth(up_kbps, 100_000));
    let arrivals = Rc::new(RefCell::new(Vec::new()));
    let server = sim.spawn(
        server_host,
        Box::new(Sink {
            arrivals: arrivals.clone(),
        }),
    );
    sim.listen(server, 80);
    sim.spawn(client_host, Box::new(Pusher { count, size }));
    sim.run();
    let result = arrivals.borrow().clone();
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed and workload → bit-identical event trace.
    #[test]
    fn deterministic_replay(seed in 1u64..1000, count in 1usize..20, size in 1usize..2000) {
        let a = run_transfer(seed, 1000, count, size);
        let b = run_transfer(seed, 1000, count, size);
        prop_assert_eq!(a, b);
    }

    /// Every message is delivered, in FIFO order (non-decreasing times).
    #[test]
    fn fifo_delivery_no_loss(count in 1usize..30, size in 1usize..1500) {
        let arrivals = run_transfer(7, 1000, count, size);
        prop_assert_eq!(arrivals.len(), count);
        for w in arrivals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// More bandwidth never makes the last byte arrive later.
    #[test]
    fn bandwidth_monotonicity(count in 1usize..10, size in 100usize..2000) {
        let slow = run_transfer(3, 288, count, size);
        let fast = run_transfer(3, 2739, count, size);
        prop_assert!(fast.last().unwrap() <= slow.last().unwrap());
    }

    /// Bigger payloads never arrive earlier than smaller ones.
    #[test]
    fn size_monotonicity(small in 1usize..1000, extra in 1usize..5000) {
        let a = run_transfer(5, 500, 1, small);
        let b = run_transfer(5, 500, 1, small + extra);
        prop_assert!(a[0] <= b[0]);
    }
}
