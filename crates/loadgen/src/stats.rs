//! Load-run statistics.

/// Latency distribution summary over recorded samples (µs).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Mean, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// Maximum, µs.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes a sample set (consumed; sorted internally). Returns a
    /// zero summary for an empty set.
    pub fn of(mut samples: Vec<u64>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                mean_us: 0.0,
                p50_us: 0,
                p95_us: 0,
                max_us: 0,
            };
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: u128 = samples.iter().map(|&v| v as u128).sum();
        LatencySummary {
            count,
            mean_us: sum as f64 / count as f64,
            p50_us: samples[percentile_index(count, 50.0)],
            p95_us: samples[percentile_index(count, 95.0)],
            max_us: samples[count - 1],
        }
    }
}

fn percentile_index(len: usize, pct: f64) -> usize {
    (((len as f64) * pct / 100.0).ceil() as usize)
        .saturating_sub(1)
        .min(len - 1)
}

/// Totals across a fleet of clients for one run window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTotals {
    /// Messages successfully completed (the paper's "packets
    /// transmitted").
    pub transmitted: u64,
    /// Attempts that failed (the paper's "packets not sent").
    pub not_sent: u64,
    /// Latency summary over completed messages.
    pub latency: Option<LatencySummary>,
}

impl RunTotals {
    /// Transmitted messages per minute of run time.
    pub fn per_minute(&self, run_secs: f64) -> f64 {
        if run_secs <= 0.0 {
            0.0
        } else {
            self.transmitted as f64 * 60.0 / run_secs
        }
    }

    /// Fraction of attempts that failed.
    pub fn loss_rate(&self) -> f64 {
        let attempts = self.transmitted + self.not_sent;
        if attempts == 0 {
            0.0
        } else {
            self.not_sent as f64 / attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencySummary::of(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_us, 0);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let s = LatencySummary::of((1..=100).collect());
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.max_us, 100);
        assert!((s.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample() {
        let s = LatencySummary::of(vec![42]);
        assert_eq!((s.p50_us, s.p95_us, s.max_us), (42, 42, 42));
    }

    #[test]
    fn unsorted_input_handled() {
        let s = LatencySummary::of(vec![30, 10, 20]);
        assert_eq!(s.p50_us, 20);
        assert_eq!(s.max_us, 30);
    }

    #[test]
    fn per_minute_and_loss() {
        let t = RunTotals {
            transmitted: 300,
            not_sent: 100,
            latency: None,
        };
        assert!((t.per_minute(30.0) - 600.0).abs() < 1e-9);
        assert!((t.loss_rate() - 0.25).abs() < 1e-9);
        assert_eq!(RunTotals::default().loss_rate(), 0.0);
        assert_eq!(t.per_minute(0.0), 0.0);
    }
}
