//! Load-run statistics.

use wsd_telemetry::Histogram;

/// Latency distribution summary over recorded samples (µs).
///
/// Backed by the shared [`wsd_telemetry::Histogram`]: `count`, `mean_us`
/// and `max_us` are exact; the percentiles are log-bucket lower bounds
/// (≤12.5% relative error), which is plenty for the paper's figures.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Mean, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// Maximum, µs.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes a sample set. Returns a zero summary for an empty set.
    pub fn of(samples: Vec<u64>) -> LatencySummary {
        let hist = Histogram::new();
        for v in samples {
            hist.record(v);
        }
        Self::from_histogram(&hist)
    }

    /// Summarizes an already-populated latency histogram.
    pub fn from_histogram(hist: &Histogram) -> LatencySummary {
        LatencySummary {
            count: hist.count() as usize,
            mean_us: hist.mean(),
            p50_us: hist.percentile(50.0),
            p95_us: hist.percentile(95.0),
            max_us: hist.max(),
        }
    }
}

/// Totals across a fleet of clients for one run window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTotals {
    /// Messages successfully completed (the paper's "packets
    /// transmitted").
    pub transmitted: u64,
    /// Attempts that failed (the paper's "packets not sent").
    pub not_sent: u64,
    /// Latency summary over completed messages.
    pub latency: Option<LatencySummary>,
}

impl RunTotals {
    /// Transmitted messages per minute of run time.
    pub fn per_minute(&self, run_secs: f64) -> f64 {
        if run_secs <= 0.0 {
            0.0
        } else {
            self.transmitted as f64 * 60.0 / run_secs
        }
    }

    /// Fraction of attempts that failed.
    pub fn loss_rate(&self) -> f64 {
        let attempts = self.transmitted + self.not_sent;
        if attempts == 0 {
            0.0
        } else {
            self.not_sent as f64 / attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencySummary::of(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_us, 0);
    }

    #[test]
    fn percentiles_are_bucket_lower_bounds() {
        let s = LatencySummary::of((1..=100).collect());
        assert_eq!(s.count, 100);
        // The 50th/95th order statistics are 50 and 95; the histogram
        // reports their log-bucket lower bounds.
        assert_eq!(s.p50_us, 48);
        assert_eq!(s.p95_us, 88);
        // Count, max and mean stay exact.
        assert_eq!(s.max_us, 100);
        assert!((s.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn from_histogram_matches_of() {
        let hist = wsd_telemetry::Histogram::new();
        for v in 1..=100u64 {
            hist.record(v);
        }
        assert_eq!(LatencySummary::from_histogram(&hist), LatencySummary::of((1..=100).collect()));
    }

    #[test]
    fn single_sample() {
        let s = LatencySummary::of(vec![42]);
        assert_eq!((s.p50_us, s.p95_us, s.max_us), (42, 42, 42));
    }

    #[test]
    fn unsorted_input_handled() {
        let s = LatencySummary::of(vec![30, 10, 20]);
        assert_eq!(s.p50_us, 20);
        assert_eq!(s.max_us, 30);
    }

    #[test]
    fn per_minute_and_loss() {
        let t = RunTotals {
            transmitted: 300,
            not_sent: 100,
            latency: None,
        };
        assert!((t.per_minute(30.0) - 600.0).abs() < 1e-9);
        assert!((t.loss_rate() - 0.25).abs() < 1e-9);
        assert_eq!(RunTotals::default().loss_rate(), 0.0);
        assert_eq!(t.per_minute(0.0), 0.0);
    }
}
