//! Wall-clock load generation against the threaded runtime (used by the
//! Criterion benches and the overhead examples).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wsd_concurrent::{PoolConfig, ThreadPool};
use wsd_core::rt::Network;
use wsd_http::{HttpClient, Request};
use wsd_soap::{rpc as soap_rpc, SoapVersion};
use wsd_telemetry::{Clock, WallClock};

use crate::stats::{LatencySummary, RunTotals};

/// Runs `clients` pool workers, each ping-ponging the paper's echo
/// message to `host:port``path` for `duration`, over one keep-alive
/// connection each. Workers come from a fixed [`ThreadPool`] and all
/// timing flows through one shared [`WallClock`], so the load generator
/// observes the same thread and clock disciplines as the system under
/// test.
pub fn run_rpc_load(
    net: &Arc<Network>,
    host: &str,
    port: u16,
    path: &str,
    clients: usize,
    duration: Duration,
) -> RunTotals {
    let transmitted = Arc::new(AtomicU64::new(0));
    let not_sent = Arc::new(AtomicU64::new(0));
    let latencies = Arc::new(parking_lot_stub::Mutex::new(Vec::new()));
    let env = soap_rpc::paper_echo_request();
    let body = env.to_xml().into_bytes();
    let clock = Arc::new(WallClock::new());
    let deadline_us = clock.now_us().saturating_add(duration.as_micros() as u64);
    let pool = ThreadPool::new(PoolConfig::fixed("rpc-load", clients.max(1)))
        .expect("load generator pool");
    for _ in 0..clients {
        let net = Arc::clone(net);
        let host = host.to_string();
        let path = path.to_string();
        let body = body.clone();
        let transmitted = Arc::clone(&transmitted);
        let not_sent = Arc::clone(&not_sent);
        let latencies = Arc::clone(&latencies);
        let clock = Arc::clone(&clock);
        let submitted = pool.execute(move || {
            let mut client: Option<HttpClient<wsd_http::PipeStream>> = None;
            let mut local_lat = Vec::new();
            while clock.now_us() < deadline_us {
                if client.is_none() {
                    match net.connect(&host, port) {
                        Ok(s) => client = Some(HttpClient::new(s)),
                        Err(_) => {
                            not_sent.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    }
                }
                let Some(c) = client.as_mut() else { break };
                let req = Request::soap_post(
                    &format!("{host}:{port}"),
                    &path,
                    SoapVersion::V11.content_type(),
                    body.clone(),
                );
                let t0 = clock.now_us();
                match c.call(&req) {
                    Ok(resp) if resp.status.is_success() => {
                        transmitted.fetch_add(1, Ordering::Relaxed);
                        local_lat.push(clock.now_us().saturating_sub(t0));
                    }
                    _ => {
                        not_sent.fetch_add(1, Ordering::Relaxed);
                        client = None;
                    }
                }
            }
            latencies.lock().extend(local_lat);
        });
        if submitted.is_err() {
            break; // pool rejected the worker; run with fewer clients
        }
    }
    // Runs every queued worker to completion and joins the pool.
    pool.shutdown();
    let samples = std::mem::take(&mut *latencies.lock());
    RunTotals {
        transmitted: transmitted.load(Ordering::Relaxed),
        not_sent: not_sent.load(Ordering::Relaxed),
        latency: Some(LatencySummary::of(samples)),
    }
}

// Tiny internal alias so this crate does not re-export parking_lot in its
// public API surface.
mod parking_lot_stub {
    pub use parking_lot::Mutex;
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsd_core::rt::EchoServer;

    #[test]
    fn load_run_counts_round_trips() {
        let net = Network::new();
        let server = EchoServer::start(&net, "ws", 8888, 4, Duration::ZERO);
        let totals = run_rpc_load(&net, "ws", 8888, "/echo", 4, Duration::from_millis(200));
        assert!(totals.transmitted > 10, "{}", totals.transmitted);
        assert_eq!(totals.not_sent, 0);
        assert_eq!(server.served(), totals.transmitted);
        let lat = totals.latency.unwrap();
        assert_eq!(lat.count as u64, totals.transmitted);
        server.shutdown();
    }

    #[test]
    fn load_against_nothing_counts_failures() {
        let net = Network::new();
        let totals = run_rpc_load(&net, "ghost", 1, "/", 2, Duration::from_millis(50));
        assert_eq!(totals.transmitted, 0);
        assert!(totals.not_sent > 0);
    }
}
