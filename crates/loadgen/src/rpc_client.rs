//! The closed-loop RPC echo client of Figures 4–5.
//!
//! Each client keeps one connection open and ping-pongs the paper's
//! 483-byte echo message for the run duration. Failed connection
//! attempts and timed-out responses count as "packets not sent"; the
//! client retries after a short backoff, as the paper's ramping test
//! client does.

use std::cell::RefCell;
use std::rc::Rc;

use wsd_http::Request;
use wsd_netsim::{ConnId, Ctx, Payload, ProcEvent, Process, SimDuration, SimTime};
use wsd_soap::{rpc as soap_rpc, SoapVersion};

/// Timer tokens.
const STOP: u64 = 0;
const RETRY: u64 = 1;
const THINK: u64 = 2;
/// Response-timeout tokens are `RESP_BASE + generation`.
const RESP_BASE: u64 = 10;

/// Client parameters.
#[derive(Debug, Clone)]
pub struct RpcClientConfig {
    /// Server (or dispatcher) to talk to.
    pub target_host: String,
    /// Target port.
    pub target_port: u16,
    /// Request path (`/echo` direct, `/svc/Echo` through the
    /// dispatcher).
    pub path: String,
    /// TCP connect timeout.
    pub connect_timeout: SimDuration,
    /// Per-request response timeout (the HTTP/TCP timeout of the paper).
    pub response_timeout: SimDuration,
    /// Backoff before retrying after a failure.
    pub retry_backoff: SimDuration,
    /// How long to keep sending (the paper's one minute).
    pub run_for: SimDuration,
    /// Client-side pause between receiving a response and sending the
    /// next request (client stack processing / think time).
    pub think_time: SimDuration,
}

impl Default for RpcClientConfig {
    fn default() -> Self {
        RpcClientConfig {
            target_host: "dispatcher".into(),
            target_port: 8081,
            path: "/svc/Echo".into(),
            connect_timeout: SimDuration::from_secs(3),
            response_timeout: SimDuration::from_secs(10),
            retry_backoff: SimDuration::from_millis(50),
            run_for: SimDuration::from_secs(60),
            think_time: SimDuration::ZERO,
        }
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    transmitted: u64,
    not_sent: u64,
    latencies_us: Vec<u64>,
}

/// Shared view of one client's counters.
#[derive(Debug, Clone, Default)]
pub struct RpcClientStats {
    inner: Rc<RefCell<StatsInner>>,
}

impl RpcClientStats {
    /// Completed request/response round trips.
    pub fn transmitted(&self) -> u64 {
        self.inner.borrow().transmitted
    }
    /// Failed attempts (refused, timed out, connection lost).
    pub fn not_sent(&self) -> u64 {
        self.inner.borrow().not_sent
    }
    /// Recorded round-trip latencies (µs).
    pub fn latencies(&self) -> Vec<u64> {
        self.inner.borrow().latencies_us.clone()
    }
}

/// The client process.
pub struct SimRpcClient {
    config: RpcClientConfig,
    stats: RpcClientStats,
    payload: Payload,
    conn: Option<ConnId>,
    sent_at: Option<SimTime>,
    /// Increments per request; stale response-timeout timers are
    /// recognized by generation mismatch.
    generation: u64,
    stopped: bool,
}

impl SimRpcClient {
    /// Creates a client sending the paper's 483-byte echo message.
    pub fn new(config: RpcClientConfig) -> Self {
        let env = soap_rpc::paper_echo_request();
        let req = Request::soap_post(
            &format!("{}:{}", config.target_host, config.target_port),
            &config.path,
            SoapVersion::V11.content_type(),
            env.to_xml().into_bytes(),
        );
        SimRpcClient {
            config,
            stats: RpcClientStats::default(),
            payload: Payload::from(wsd_http::request_bytes(&req)),
            conn: None,
            sent_at: None,
            generation: 0,
            stopped: false,
        }
    }

    /// A handle to the live counters.
    pub fn stats(&self) -> RpcClientStats {
        self.stats.clone()
    }

    fn connect(&mut self, ctx: &mut Ctx<'_>) {
        let conn = ctx.connect(
            &self.config.target_host,
            self.config.target_port,
            self.config.connect_timeout,
        );
        self.conn = Some(conn);
    }

    fn send_next(&mut self, ctx: &mut Ctx<'_>) {
        let Some(conn) = self.conn else { return };
        self.generation += 1;
        if ctx.send(conn, self.payload.clone()).is_err() {
            self.fail_and_retry(ctx);
            return;
        }
        self.sent_at = Some(ctx.now());
        ctx.set_timer(self.config.response_timeout, RESP_BASE + self.generation);
    }

    fn fail_and_retry(&mut self, ctx: &mut Ctx<'_>) {
        self.stats.inner.borrow_mut().not_sent += 1;
        self.sent_at = None;
        if let Some(conn) = self.conn.take() {
            ctx.close(conn);
        }
        if !self.stopped {
            ctx.set_timer(self.config.retry_backoff, RETRY);
        }
    }
}

impl Process for SimRpcClient {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                ctx.set_timer(self.config.run_for, STOP);
                self.connect(ctx);
            }
            ProcEvent::ConnEstablished { conn } => {
                if self.conn == Some(conn) && !self.stopped {
                    self.send_next(ctx);
                }
            }
            ProcEvent::ConnRefused { conn, .. } => {
                if self.conn == Some(conn) {
                    self.conn = None;
                    self.stats.inner.borrow_mut().not_sent += 1;
                    if !self.stopped {
                        ctx.set_timer(self.config.retry_backoff, RETRY);
                    }
                }
            }
            ProcEvent::Message { conn, bytes } => {
                if self.conn == Some(conn) {
                    let status = wsd_http::parse_response_bytes(&bytes)
                        .map(|r| r.status.0)
                        .unwrap_or(0);
                    if status == 202 {
                        // A one-way ack, not the RPC response: keep
                        // waiting (Table 1 quadrant 2 — the real reply
                        // may never come).
                        return;
                    }
                    if let Some(sent_at) = self.sent_at.take() {
                        {
                            let mut s = self.stats.inner.borrow_mut();
                            if status == 200 {
                                s.transmitted += 1;
                                s.latencies_us.push(ctx.now().since(sent_at).as_micros());
                            } else {
                                // 4xx/5xx: the dispatcher or service
                                // refused — a lost packet.
                                s.not_sent += 1;
                            }
                        }
                        if !self.stopped {
                            if self.config.think_time > SimDuration::ZERO {
                                ctx.set_timer(self.config.think_time, THINK);
                            } else {
                                self.send_next(ctx);
                            }
                        } else if let Some(conn) = self.conn.take() {
                            ctx.close(conn);
                        }
                    }
                }
            }
            ProcEvent::ConnClosed { conn } => {
                if self.conn == Some(conn) {
                    self.conn = None;
                    if self.sent_at.take().is_some() {
                        self.stats.inner.borrow_mut().not_sent += 1;
                    }
                    if !self.stopped {
                        ctx.set_timer(self.config.retry_backoff, RETRY);
                    }
                }
            }
            ProcEvent::Timer { token } => match token {
                STOP => {
                    self.stopped = true;
                    if self.sent_at.is_none() {
                        if let Some(conn) = self.conn.take() {
                            ctx.close(conn);
                        }
                    }
                }
                RETRY
                    if !self.stopped && self.conn.is_none() => {
                        self.connect(ctx);
                    }
                THINK
                    if !self.stopped && self.conn.is_some() && self.sent_at.is_none() => {
                        self.send_next(ctx);
                    }
                g if g > RESP_BASE
                    // Response timeout for generation g-RESP_BASE.
                    && self.generation == g - RESP_BASE && self.sent_at.is_some() => {
                        self.fail_and_retry(ctx);
                    }
                _ => {}
            },
            ProcEvent::ConnAccepted { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wsd_core::registry::Registry;
    use wsd_core::sim::{EchoMode, SimEchoService};
    use wsd_core::url::Url;
    use wsd_netsim::{FirewallPolicy, HostConfig, Simulation};

    fn client_config(host: &str, port: u16, path: &str, secs: u64) -> RpcClientConfig {
        RpcClientConfig {
            target_host: host.into(),
            target_port: port,
            path: path.into(),
            run_for: SimDuration::from_secs(secs),
            ..RpcClientConfig::default()
        }
    }

    #[test]
    fn direct_echo_loop_counts_round_trips() {
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let c_host = sim.add_host(HostConfig::named("client"));
        let svc = SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(5));
        let svc_stats = svc.stats();
        let sp = sim.spawn(ws_host, Box::new(svc));
        sim.listen(sp, 8888);
        let client = SimRpcClient::new(client_config("ws", 8888, "/echo", 2));
        let stats = client.stats();
        sim.spawn(c_host, Box::new(client));
        sim.run();
        assert!(stats.transmitted() > 10, "{}", stats.transmitted());
        assert_eq!(stats.not_sent(), 0);
        assert_eq!(svc_stats.responses_sent(), stats.transmitted());
        assert_eq!(stats.latencies().len() as u64, stats.transmitted());
    }

    #[test]
    fn unreachable_service_counts_not_sent() {
        let mut sim = Simulation::new(1);
        let _ws = sim.add_host(HostConfig::named("ws")); // no listener
        let c_host = sim.add_host(HostConfig::named("client"));
        let mut cfg = client_config("ws", 8888, "/echo", 1);
        cfg.retry_backoff = SimDuration::from_millis(100);
        let client = SimRpcClient::new(cfg);
        let stats = client.stats();
        sim.spawn(c_host, Box::new(client));
        sim.run();
        assert_eq!(stats.transmitted(), 0);
        assert!(stats.not_sent() > 2, "{}", stats.not_sent());
    }

    #[test]
    fn firewalled_service_times_out_slowly() {
        let mut sim = Simulation::new(1);
        let ws_host =
            sim.add_host(HostConfig::named("ws").firewall(FirewallPolicy::OutboundOnly));
        let c_host = sim.add_host(HostConfig::named("client"));
        let svc = SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(1));
        let sp = sim.spawn(ws_host, Box::new(svc));
        sim.listen(sp, 8888);
        let mut cfg = client_config("ws", 8888, "/echo", 10);
        cfg.connect_timeout = SimDuration::from_secs(3);
        let client = SimRpcClient::new(cfg);
        let stats = client.stats();
        sim.spawn(c_host, Box::new(client));
        sim.run();
        assert_eq!(stats.transmitted(), 0);
        // ~10s / (3s timeout + 50ms backoff) ≈ 3 attempts.
        assert!((2..=5).contains(&stats.not_sent()), "{}", stats.not_sent());
    }

    #[test]
    fn slow_response_times_out_and_counts_lost() {
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let c_host = sim.add_host(HostConfig::named("client"));
        // Service takes 30 s; client allows 2 s.
        let svc = SimEchoService::new(EchoMode::Rpc, SimDuration::from_secs(30));
        let sp = sim.spawn(ws_host, Box::new(svc));
        sim.listen(sp, 8888);
        let mut cfg = client_config("ws", 8888, "/echo", 8);
        cfg.response_timeout = SimDuration::from_secs(2);
        let client = SimRpcClient::new(cfg);
        let stats = client.stats();
        sim.spawn(c_host, Box::new(client));
        sim.run_until(wsd_netsim::SimTime::ZERO + SimDuration::from_secs(12));
        assert_eq!(stats.transmitted(), 0);
        assert!(stats.not_sent() >= 2, "{}", stats.not_sent());
    }

    #[test]
    fn through_dispatcher_round_trips() {
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let d_host = sim.add_host(HostConfig::named("dispatcher"));
        let c_host = sim.add_host(HostConfig::named("client"));
        let svc = SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(5));
        let sp = sim.spawn(ws_host, Box::new(svc));
        sim.listen(sp, 8888);
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let disp = wsd_core::sim::SimRpcDispatcher::new(
            registry,
            SimDuration::from_millis(2),
            SimDuration::from_secs(3),
            SimDuration::from_secs(10),
        );
        let dp = sim.spawn(d_host, Box::new(disp));
        sim.listen(dp, 8081);
        let client = SimRpcClient::new(client_config("dispatcher", 8081, "/svc/Echo", 2));
        let stats = client.stats();
        sim.spawn(c_host, Box::new(client));
        sim.run();
        assert!(stats.transmitted() > 5, "{}", stats.transmitted());
        assert_eq!(stats.not_sent(), 0);
    }
}
