//! The one-way messaging client of Figure 6, in all three
//! configurations: direct to the WS, through the MSG-Dispatcher with a
//! direct callback, and through the MSG-Dispatcher with a WS-MsgBox
//! mailbox the client polls over RPC.

use std::cell::RefCell;
use std::rc::Rc;

use wsd_core::msgbox::ops;
use wsd_http::{parse_request_bytes, parse_response_bytes, Request, Response, Status};
use wsd_netsim::{ConnId, Ctx, Payload, ProcEvent, Process, SimDuration};
use wsd_soap::{rpc as soap_rpc, Envelope, SoapVersion};
use wsd_wsa::{EndpointReference, WsaHeaders};

const STOP: u64 = 0;
const RETRY_TARGET: u64 = 1;
const RETRY_MBOX: u64 = 2;
const POLL: u64 = 3;

/// Where the client asks for replies.
#[derive(Debug, Clone)]
pub enum ReplyMode {
    /// `wsa:ReplyTo` is a callback URL on the client's own host (works
    /// only if the client is reachable from outside).
    Callback {
        /// The callback URL.
        url: String,
    },
    /// `wsa:ReplyTo` is a WS-MsgBox mailbox the client creates at start
    /// and polls over RPC.
    Mailbox {
        /// Mailbox service host.
        host: String,
        /// Mailbox service port.
        port: u16,
        /// Poll period.
        poll_interval: SimDuration,
    },
}

/// Client parameters.
#[derive(Debug, Clone)]
pub struct MsgClientConfig {
    /// Host accepting the one-way messages (the WS itself or the
    /// MSG-Dispatcher).
    pub target_host: String,
    /// Target port.
    pub target_port: u16,
    /// POST path at the target.
    pub path: String,
    /// The `wsa:To` address (logical through the dispatcher, physical
    /// when direct).
    pub to_address: String,
    /// Reply routing.
    pub reply_mode: ReplyMode,
    /// Connect timeout.
    pub connect_timeout: SimDuration,
    /// Backoff before reconnecting after failures.
    pub retry_backoff: SimDuration,
    /// Sending window (the paper's minute).
    pub run_for: SimDuration,
    /// Unique name mixed into message ids.
    pub client_name: String,
}

#[derive(Debug, Default)]
struct StatsInner {
    sent: u64,
    send_failures: u64,
    responses_received: u64,
    mailbox_created: bool,
}

/// Shared view of one messaging client's counters.
#[derive(Debug, Clone, Default)]
pub struct MsgClientStats {
    inner: Rc<RefCell<StatsInner>>,
}

impl MsgClientStats {
    /// One-way messages accepted (`202`) by the target.
    pub fn sent(&self) -> u64 {
        self.inner.borrow().sent
    }
    /// Failed sends / connects.
    pub fn send_failures(&self) -> u64 {
        self.inner.borrow().send_failures
    }
    /// Responses observed (mailbox fetches; callback arrivals are
    /// counted by the [`CallbackSink`]).
    pub fn responses_received(&self) -> u64 {
        self.inner.borrow().responses_received
    }
    /// Whether the mailbox was created successfully.
    pub fn mailbox_created(&self) -> bool {
        self.inner.borrow().mailbox_created
    }
}

enum MboxPhase {
    NotUsed,
    Connecting,
    AwaitingCreate,
    Ready { box_id: String, key: String },
    AwaitingFetch { box_id: String, key: String },
}

/// The one-way messaging client process.
pub struct SimMsgClient {
    config: MsgClientConfig,
    stats: MsgClientStats,
    target_conn: Option<ConnId>,
    mbox_conn: Option<ConnId>,
    mbox: MboxPhase,
    seq: u64,
    stopped: bool,
}

impl SimMsgClient {
    /// Creates the client.
    pub fn new(config: MsgClientConfig) -> Self {
        SimMsgClient {
            config,
            stats: MsgClientStats::default(),
            target_conn: None,
            mbox_conn: None,
            mbox: MboxPhase::NotUsed,
            seq: 0,
            stopped: false,
        }
    }

    /// A handle to the live counters.
    pub fn stats(&self) -> MsgClientStats {
        self.stats.clone()
    }

    fn reply_address(&self) -> Option<String> {
        match (&self.config.reply_mode, &self.mbox) {
            (ReplyMode::Callback { url }, _) => Some(url.clone()),
            (ReplyMode::Mailbox { host, port, .. }, MboxPhase::Ready { box_id, .. })
            | (ReplyMode::Mailbox { host, port, .. }, MboxPhase::AwaitingFetch { box_id, .. }) => {
                Some(format!("http://{host}:{port}/deposit/{box_id}"))
            }
            _ => None,
        }
    }

    fn next_message(&mut self) -> Payload {
        self.seq += 1;
        let mut env = soap_rpc::paper_echo_request();
        let mut h = WsaHeaders::new()
            .to(self.config.to_address.clone())
            .message_id(format!("uuid:{}-{}", self.config.client_name, self.seq));
        if let Some(addr) = self.reply_address() {
            h = h.reply_to(EndpointReference::new(addr));
        }
        h.apply(&mut env);
        let req = Request::soap_post(
            &format!("{}:{}", self.config.target_host, self.config.target_port),
            &self.config.path,
            SoapVersion::V11.content_type(),
            env.to_xml().into_bytes(),
        );
        Payload::from(wsd_http::request_bytes(&req))
    }

    fn connect_target(&mut self, ctx: &mut Ctx<'_>) {
        let conn = ctx.connect(
            &self.config.target_host,
            self.config.target_port,
            self.config.connect_timeout,
        );
        self.target_conn = Some(conn);
    }

    fn connect_mbox(&mut self, ctx: &mut Ctx<'_>) {
        if let ReplyMode::Mailbox { host, port, .. } = &self.config.reply_mode {
            let conn = ctx.connect(host, *port, self.config.connect_timeout);
            self.mbox_conn = Some(conn);
            self.mbox = MboxPhase::Connecting;
        }
    }

    fn send_one(&mut self, ctx: &mut Ctx<'_>) {
        if self.stopped {
            return;
        }
        let Some(conn) = self.target_conn else { return };
        let msg = self.next_message();
        if ctx.send(conn, msg).is_err() {
            self.stats.inner.borrow_mut().send_failures += 1;
            self.target_conn = None;
            ctx.set_timer(self.config.retry_backoff, RETRY_TARGET);
        }
    }

    fn mbox_rpc(&mut self, ctx: &mut Ctx<'_>, env: &Envelope) {
        let ReplyMode::Mailbox { host, port, .. } = &self.config.reply_mode else {
            return;
        };
        let Some(conn) = self.mbox_conn else { return };
        let req = Request::soap_post(
            &format!("{host}:{port}"),
            "/msgbox",
            SoapVersion::V11.content_type(),
            env.to_xml().into_bytes(),
        );
        if ctx.send(conn, Payload::from(wsd_http::request_bytes(&req))).is_err() {
            self.mbox_conn = None;
            ctx.set_timer(self.config.retry_backoff, RETRY_MBOX);
        }
    }

    fn on_mbox_response(&mut self, ctx: &mut Ctx<'_>, bytes: &Payload) {
        let Ok(resp) = parse_response_bytes(bytes) else {
            return;
        };
        let Ok(env) = Envelope::parse(&resp.body_utf8()) else {
            return;
        };
        match std::mem::replace(&mut self.mbox, MboxPhase::NotUsed) {
            MboxPhase::AwaitingCreate => {
                if let Some((box_id, key)) = ops::parse_create_response(&env) {
                    self.stats.inner.borrow_mut().mailbox_created = true;
                    self.mbox = MboxPhase::Ready { box_id, key };
                    // Mailbox ready: start the sending loop and polling.
                    if self.target_conn.is_none() {
                        self.connect_target(ctx);
                    }
                    if let ReplyMode::Mailbox { poll_interval, .. } = self.config.reply_mode {
                        ctx.set_timer(poll_interval, POLL);
                    }
                } else {
                    self.mbox = MboxPhase::AwaitingCreate;
                }
            }
            MboxPhase::AwaitingFetch { box_id, key } => {
                if let Some(messages) = ops::parse_fetch_response(&env) {
                    self.stats.inner.borrow_mut().responses_received += messages.len() as u64;
                }
                self.mbox = MboxPhase::Ready { box_id, key };
            }
            other => self.mbox = other,
        }
    }
}

impl Process for SimMsgClient {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                ctx.set_timer(self.config.run_for, STOP);
                match self.config.reply_mode {
                    ReplyMode::Callback { .. } => self.connect_target(ctx),
                    ReplyMode::Mailbox { .. } => self.connect_mbox(ctx),
                }
            }
            ProcEvent::ConnEstablished { conn } => {
                if self.target_conn == Some(conn) {
                    self.send_one(ctx);
                } else if self.mbox_conn == Some(conn) {
                    self.mbox = MboxPhase::AwaitingCreate;
                    self.mbox_rpc(ctx, &ops::create(SoapVersion::V11));
                }
            }
            ProcEvent::ConnRefused { conn, .. } => {
                if self.target_conn == Some(conn) {
                    self.target_conn = None;
                    self.stats.inner.borrow_mut().send_failures += 1;
                    if !self.stopped {
                        ctx.set_timer(self.config.retry_backoff, RETRY_TARGET);
                    }
                } else if self.mbox_conn == Some(conn) {
                    self.mbox_conn = None;
                    if !self.stopped {
                        ctx.set_timer(self.config.retry_backoff, RETRY_MBOX);
                    }
                }
            }
            ProcEvent::ConnClosed { conn } => {
                if self.target_conn == Some(conn) {
                    self.target_conn = None;
                    if !self.stopped {
                        ctx.set_timer(self.config.retry_backoff, RETRY_TARGET);
                    }
                } else if self.mbox_conn == Some(conn) {
                    self.mbox_conn = None;
                    if !self.stopped {
                        ctx.set_timer(self.config.retry_backoff, RETRY_MBOX);
                    }
                }
            }
            ProcEvent::Message { conn, bytes } => {
                if self.target_conn == Some(conn) {
                    match parse_response_bytes(&bytes) {
                        Ok(resp) if resp.status == Status::ACCEPTED => {
                            self.stats.inner.borrow_mut().sent += 1;
                            self.send_one(ctx); // closed loop on the ack
                        }
                        _ => {
                            self.stats.inner.borrow_mut().send_failures += 1;
                            self.send_one(ctx);
                        }
                    }
                } else if self.mbox_conn == Some(conn) {
                    self.on_mbox_response(ctx, &bytes);
                }
            }
            ProcEvent::Timer { token } => match token {
                STOP => {
                    self.stopped = true;
                    if let Some(conn) = self.target_conn.take() {
                        ctx.close(conn);
                    }
                    // One final poll below, then the mailbox connection
                    // closes with the simulation.
                }
                RETRY_TARGET
                    if !self.stopped && self.target_conn.is_none()
                        // Only reconnect once the reply address exists.
                        && (self.reply_address().is_some()
                            || matches!(self.config.reply_mode, ReplyMode::Callback { .. }))
                        => {
                            self.connect_target(ctx);
                        }
                RETRY_MBOX
                    if !self.stopped && self.mbox_conn.is_none() => {
                        self.connect_mbox(ctx);
                    }
                POLL => {
                    match std::mem::replace(&mut self.mbox, MboxPhase::NotUsed) {
                        MboxPhase::Ready { box_id, key } => {
                            let fetch = ops::fetch(SoapVersion::V11, &box_id, &key, 100);
                            self.mbox = MboxPhase::AwaitingFetch { box_id, key };
                            self.mbox_rpc(ctx, &fetch);
                        }
                        other => self.mbox = other, // fetch already in flight
                    }
                    if !self.stopped {
                        if let ReplyMode::Mailbox { poll_interval, .. } = self.config.reply_mode {
                            ctx.set_timer(poll_interval, POLL);
                        }
                    }
                }
                _ => {}
            },
            ProcEvent::ConnAccepted { .. } => {}
        }
    }
}

/// A callback listener counting replies POSTed to the client's own
/// endpoint (used by the direct-callback configurations).
pub struct CallbackSink {
    received: Rc<RefCell<u64>>,
}

impl CallbackSink {
    /// Creates the sink; read the count through the returned handle.
    pub fn new() -> (CallbackSink, Rc<RefCell<u64>>) {
        let received = Rc::new(RefCell::new(0));
        (
            CallbackSink {
                received: received.clone(),
            },
            received,
        )
    }
}

impl Process for CallbackSink {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        if let ProcEvent::Message { conn, bytes } = event {
            if parse_request_bytes(&bytes).is_ok() {
                *self.received.borrow_mut() += 1;
                let ack = Response::empty(Status::ACCEPTED);
                let _ = ctx.send(conn, Payload::from(wsd_http::response_bytes(&ack)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wsd_core::config::MsgBoxConfig;
    use wsd_core::msg::MsgCore;
    use wsd_core::registry::Registry;
    use wsd_core::sim::{EchoMode, SimEchoService, SimMsgBox, SimMsgDispatcher, WsThreadConfig};
    use wsd_core::url::Url;
    use wsd_netsim::{FirewallPolicy, HostConfig, Simulation};

    /// Full Figure-6(c) topology: firewalled client + dispatcher + WS +
    /// mailbox.
    #[test]
    fn mailbox_cycle_end_to_end() {
        let mut sim = Simulation::new(1);
        let d_host = sim.add_host(HostConfig::named("dispatcher"));
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let mb_host = sim.add_host(HostConfig::named("msgbox"));
        let c_host =
            sim.add_host(HostConfig::named("client").firewall(FirewallPolicy::OutboundOnly));

        let svc = SimEchoService::new(
            EchoMode::OneWay {
                workers: 8,
                connect_timeout: SimDuration::from_secs(3),
            },
            SimDuration::from_millis(2),
        );
        let svc_stats = svc.stats();
        let sp = sim.spawn(ws_host, Box::new(svc));
        sim.listen(sp, 8888);

        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 7);
        let disp = SimMsgDispatcher::new(
            core,
            SimDuration::from_millis(2),
            WsThreadConfig::default(),
        );
        let dp = sim.spawn(d_host, Box::new(disp));
        sim.listen(dp, 8080);

        let mbox = SimMsgBox::new(MsgBoxConfig::default(), SimDuration::from_millis(1), 5);
        let mbox_stats = mbox.stats();
        let mp = sim.spawn(mb_host, Box::new(mbox));
        sim.listen(mp, 8082);

        let client = SimMsgClient::new(MsgClientConfig {
            target_host: "dispatcher".into(),
            target_port: 8080,
            path: "/msg".into(),
            to_address: "http://dispatcher/svc/Echo".into(),
            reply_mode: ReplyMode::Mailbox {
                host: "msgbox".into(),
                port: 8082,
                poll_interval: SimDuration::from_millis(500),
            },
            connect_timeout: SimDuration::from_secs(3),
            retry_backoff: SimDuration::from_millis(100),
            run_for: SimDuration::from_secs(5),
            client_name: "c1".into(),
        });
        let stats = client.stats();
        sim.spawn(c_host, Box::new(client));

        sim.run_until(wsd_netsim::SimTime::ZERO + SimDuration::from_secs(10));
        assert!(stats.mailbox_created());
        assert!(stats.sent() > 3, "sent {}", stats.sent());
        assert!(svc_stats.accepted() > 3);
        assert!(mbox_stats.deposits() > 3, "deposits {}", mbox_stats.deposits());
        assert!(
            stats.responses_received() > 3,
            "responses {}",
            stats.responses_received()
        );
        assert_eq!(stats.send_failures(), 0);
    }

    /// Figure-6(a): direct one-way to the WS, responses blocked at the
    /// firewalled client.
    #[test]
    fn direct_blocked_callbacks_slow_the_service() {
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let c_host =
            sim.add_host(HostConfig::named("client").firewall(FirewallPolicy::OutboundOnly));
        let svc = SimEchoService::new(
            EchoMode::OneWay {
                workers: 2,
                connect_timeout: SimDuration::from_secs(3),
            },
            SimDuration::from_millis(2),
        );
        let svc_stats = svc.stats();
        let sp = sim.spawn(ws_host, Box::new(svc));
        sim.listen(sp, 8888);
        let (sink, received) = CallbackSink::new();
        let sk = sim.spawn(c_host, Box::new(sink));
        sim.listen(sk, 9000);
        let client = SimMsgClient::new(MsgClientConfig {
            target_host: "ws".into(),
            target_port: 8888,
            path: "/echo".into(),
            to_address: "http://ws:8888/echo".into(),
            reply_mode: ReplyMode::Callback {
                url: "http://client:9000/cb".into(),
            },
            connect_timeout: SimDuration::from_secs(3),
            retry_backoff: SimDuration::from_millis(100),
            run_for: SimDuration::from_secs(10),
            client_name: "c1".into(),
        });
        let stats = client.stats();
        sim.spawn(c_host, Box::new(client));
        sim.run_until(wsd_netsim::SimTime::ZERO + SimDuration::from_secs(15));
        // Some messages were accepted, but every reply is blocked...
        assert!(stats.sent() > 0);
        assert_eq!(*received.borrow(), 0);
        assert!(svc_stats.replies_blocked() > 0);
        // ...and since acceptance is paced by processing and every reply
        // stalls a worker for the 3 s connect timeout, throughput
        // collapses: with 2 workers over ~10 s the service can accept
        // only a handful of messages (an unblocked service would do
        // thousands).
        assert!(stats.sent() < 20, "sent {}", stats.sent());
    }

    /// An open client actually receives direct callbacks.
    #[test]
    fn open_client_receives_callbacks() {
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let c_host = sim.add_host(HostConfig::named("client"));
        let svc = SimEchoService::new(
            EchoMode::OneWay {
                workers: 8,
                connect_timeout: SimDuration::from_secs(3),
            },
            SimDuration::from_millis(2),
        );
        let sp = sim.spawn(ws_host, Box::new(svc));
        sim.listen(sp, 8888);
        let (sink, received) = CallbackSink::new();
        let sk = sim.spawn(c_host, Box::new(sink));
        sim.listen(sk, 9000);
        let client = SimMsgClient::new(MsgClientConfig {
            target_host: "ws".into(),
            target_port: 8888,
            path: "/echo".into(),
            to_address: "http://ws:8888/echo".into(),
            reply_mode: ReplyMode::Callback {
                url: "http://client:9000/cb".into(),
            },
            connect_timeout: SimDuration::from_secs(3),
            retry_backoff: SimDuration::from_millis(100),
            run_for: SimDuration::from_secs(3),
            client_name: "c1".into(),
        });
        let stats = client.stats();
        sim.spawn(c_host, Box::new(client));
        sim.run_until(wsd_netsim::SimTime::ZERO + SimDuration::from_secs(6));
        assert!(stats.sent() > 3);
        assert!(*received.borrow() > 3);
    }
}
