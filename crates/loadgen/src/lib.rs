//! The paper's test client (§4.3): "a test client that can ramp up the
//! number of connections and record statistical data. The test client
//! runs with a specified number of connections (clients) and keeps
//! sending echo messages (packets) for one minute ... essentially very
//! similar to the ping command."
//!
//! * [`stats`] — per-client counters (transmitted / not sent / latency)
//!   and fleet-level summaries.
//! * [`rpc_client`] — the closed-loop RPC echo client used by Figures
//!   4–5 (direct or through the RPC-Dispatcher).
//! * [`msg_client`] — the one-way messaging client used by Figure 6
//!   (direct, through the MSG-Dispatcher, or with a WS-MsgBox mailbox),
//!   plus its callback sink.
//! * [`ramp`] — fleet builders that spawn N clients with staggered
//!   starts.
//! * [`rt_load`] — a thread-based load run against the threaded runtime
//!   (used by benches).

#![warn(missing_docs)]

pub mod msg_client;
pub mod ramp;
pub mod rpc_client;
pub mod rt_load;
pub mod stats;

pub use msg_client::{CallbackSink, MsgClientConfig, MsgClientStats, ReplyMode, SimMsgClient};
pub use ramp::{spawn_msg_fleet, spawn_rpc_fleet, FleetResult};
pub use rpc_client::{RpcClientConfig, RpcClientStats, SimRpcClient};
pub use stats::{LatencySummary, RunTotals};
