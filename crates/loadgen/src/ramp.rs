//! Fleet builders: spawn N clients with staggered starts (the paper's
//! ramp-up) and collect their statistics.

use wsd_netsim::{HostConfig, HostId, SimDuration, SimTime, Simulation};
use wsd_telemetry::Scope;

use crate::msg_client::{MsgClientConfig, MsgClientStats, SimMsgClient};
use crate::rpc_client::{RpcClientConfig, RpcClientStats, SimRpcClient};
use crate::stats::{LatencySummary, RunTotals};

/// Handles to a spawned fleet's statistics.
pub struct FleetResult<S> {
    /// One handle per client.
    pub clients: Vec<S>,
}

impl FleetResult<RpcClientStats> {
    /// Aggregates the fleet's counters.
    pub fn totals(&self) -> RunTotals {
        self.totals_with_telemetry(&Scope::noop())
    }

    /// Aggregates the fleet's counters, publishing a `latency_us`
    /// histogram and `transmitted`/`not_sent` counters under `scope`.
    pub fn totals_with_telemetry(&self, scope: &Scope) -> RunTotals {
        let mut transmitted = 0;
        let mut not_sent = 0;
        let hist = scope.histogram("latency_us");
        for c in &self.clients {
            transmitted += c.transmitted();
            not_sent += c.not_sent();
            for v in c.latencies() {
                hist.record(v);
            }
        }
        scope.counter("transmitted").add(transmitted);
        scope.counter("not_sent").add(not_sent);
        RunTotals {
            transmitted,
            not_sent,
            latency: Some(LatencySummary::from_histogram(&hist)),
        }
    }
}

impl FleetResult<MsgClientStats> {
    /// Aggregates `(sent, failures, responses)` across the fleet.
    pub fn totals(&self) -> (u64, u64, u64) {
        self.totals_with_telemetry(&Scope::noop())
    }

    /// Aggregates `(sent, failures, responses)`, publishing matching
    /// counters under `scope`.
    pub fn totals_with_telemetry(&self, scope: &Scope) -> (u64, u64, u64) {
        let mut sent = 0;
        let mut failures = 0;
        let mut responses = 0;
        for c in &self.clients {
            sent += c.sent();
            failures += c.send_failures();
            responses += c.responses_received();
        }
        scope.counter("sent").add(sent);
        scope.counter("send_failures").add(failures);
        scope.counter("responses").add(responses);
        (sent, failures, responses)
    }
}

/// Where fleet clients live.
pub enum ClientPlacement {
    /// All clients share one existing host (the paper's single test
    /// machine opening N connections).
    SharedHost(HostId),
    /// One new host per client, built from a template (name gets an
    /// index suffix).
    HostPerClient(Box<dyn Fn(usize) -> HostConfig>),
}

/// Spawns `n` RPC clients starting within `ramp_over` of each other.
pub fn spawn_rpc_fleet(
    sim: &mut Simulation,
    placement: ClientPlacement,
    n: usize,
    config: &RpcClientConfig,
    ramp_over: SimDuration,
) -> FleetResult<RpcClientStats> {
    let mut clients = Vec::with_capacity(n);
    for i in 0..n {
        let host = place(sim, &placement, i);
        let client = SimRpcClient::new(config.clone());
        clients.push(client.stats());
        let start = stagger(i, n, ramp_over);
        sim.spawn_at(host, Box::new(client), start);
    }
    FleetResult { clients }
}

/// Spawns `n` one-way messaging clients. Each client's name (used for
/// unique message ids) gets an index suffix.
pub fn spawn_msg_fleet(
    sim: &mut Simulation,
    placement: ClientPlacement,
    n: usize,
    config: &MsgClientConfig,
    ramp_over: SimDuration,
) -> FleetResult<MsgClientStats> {
    let mut clients = Vec::with_capacity(n);
    for i in 0..n {
        let host = place(sim, &placement, i);
        let mut cfg = config.clone();
        cfg.client_name = format!("{}-{i}", cfg.client_name);
        // Each client gets its own callback endpoint: `{port}` in the
        // callback URL expands to a per-client port, so every client is
        // a distinct destination (its own NATed machine).
        if let crate::msg_client::ReplyMode::Callback { url } = &mut cfg.reply_mode {
            *url = url.replace("{port}", &(9000 + i as u32).to_string());
        }
        let client = SimMsgClient::new(cfg);
        clients.push(client.stats());
        let start = stagger(i, n, ramp_over);
        sim.spawn_at(host, Box::new(client), start);
    }
    FleetResult { clients }
}

fn place(sim: &mut Simulation, placement: &ClientPlacement, i: usize) -> HostId {
    match placement {
        ClientPlacement::SharedHost(h) => *h,
        ClientPlacement::HostPerClient(template) => sim.add_host(template(i)),
    }
}

fn stagger(i: usize, n: usize, ramp_over: SimDuration) -> SimTime {
    if n <= 1 {
        return SimTime::ZERO;
    }
    SimTime::ZERO + SimDuration(ramp_over.0 * i as u64 / n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wsd_core::registry::Registry;
    use wsd_core::sim::{EchoMode, SimEchoService};
    use wsd_core::url::Url;

    #[test]
    fn fleet_ramps_and_aggregates() {
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let c_host = sim.add_host(HostConfig::named("client"));
        let svc = SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(2));
        let svc_stats = svc.stats();
        let sp = sim.spawn(ws_host, Box::new(svc));
        sim.listen(sp, 8888);
        let cfg = RpcClientConfig {
            target_host: "ws".into(),
            target_port: 8888,
            path: "/echo".into(),
            run_for: SimDuration::from_secs(2),
            ..RpcClientConfig::default()
        };
        let fleet = spawn_rpc_fleet(
            &mut sim,
            ClientPlacement::SharedHost(c_host),
            5,
            &cfg,
            SimDuration::from_millis(500),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        let reg = wsd_telemetry::Registry::new();
        let totals = fleet.totals_with_telemetry(&reg.scope("loadgen"));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("loadgen.transmitted"), totals.transmitted);
        assert!(matches!(
            snap.get("loadgen.latency_us"),
            Some(wsd_telemetry::MetricValue::Histogram(h)) if h.count == totals.transmitted
        ));
        assert_eq!(fleet.clients.len(), 5);
        assert!(totals.transmitted > 20, "{}", totals.transmitted);
        assert_eq!(totals.not_sent, 0);
        assert_eq!(svc_stats.responses_sent(), totals.transmitted);
        let lat = totals.latency.as_ref().unwrap();
        assert_eq!(lat.count as u64, totals.transmitted);
        assert!(lat.p50_us > 0);
        // The registry-based fleet helpers exist for the dispatcher path
        // too; smoke-check host-per-client placement.
        Arc::new(Registry::new())
            .register("Echo", Url::parse("http://ws:8888/echo").unwrap());
    }

    #[test]
    fn host_per_client_placement_creates_hosts() {
        let mut sim = Simulation::new(2);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let svc = SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(1));
        let sp = sim.spawn(ws_host, Box::new(svc));
        sim.listen(sp, 8888);
        let cfg = RpcClientConfig {
            target_host: "ws".into(),
            target_port: 8888,
            path: "/echo".into(),
            run_for: SimDuration::from_secs(1),
            ..RpcClientConfig::default()
        };
        let fleet = spawn_rpc_fleet(
            &mut sim,
            ClientPlacement::HostPerClient(Box::new(|i| {
                HostConfig::named(format!("client-{i}"))
            })),
            3,
            &cfg,
            SimDuration::ZERO,
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(3));
        assert!(sim.host_id("client-0").is_some());
        assert!(sim.host_id("client-2").is_some());
        assert!(fleet.totals().transmitted > 0);
    }

    #[test]
    fn stagger_spreads_starts() {
        assert_eq!(stagger(0, 10, SimDuration::from_secs(1)), SimTime::ZERO);
        let last = stagger(9, 10, SimDuration::from_secs(1));
        assert_eq!(last, SimTime::ZERO + SimDuration::from_millis(900));
        assert_eq!(stagger(0, 1, SimDuration::from_secs(1)), SimTime::ZERO);
    }
}
