//! Replication command log in the Redis PSYNC shape.
//!
//! The leader appends serialized commands at monotonically increasing
//! offsets and keeps a bounded backlog of the most recent ones. A
//! follower attaches in one of two ways:
//!
//! * **full resync** — the leader hands over a state snapshot plus its
//!   current offset; the follower installs the snapshot and starts a
//!   cursor at that offset;
//! * **partial resync** — if the follower's offset still falls inside
//!   the backlog, the leader replays just the missed commands.
//!
//! After attach the follower tails the stream. Its [`FollowerCursor`]
//! admits exactly the next expected offset: anything older is an
//! **offset regression** and is rejected (replays must never un-apply
//! or double-apply), anything newer is a **gap** that forces a fresh
//! full resync.
//!
//! Commands are opaque strings; `wsd-core` serializes registry
//! mutations into them (same spirit as the paper's text-file registry).

use std::collections::VecDeque;

/// The leader-side bounded command backlog.
#[derive(Debug, Clone)]
pub struct ReplLog {
    /// Offset of the oldest command still in `entries`.
    base: u64,
    entries: VecDeque<String>,
    capacity: usize,
}

impl ReplLog {
    /// An empty log retaining at most `capacity` commands for partial
    /// resync.
    pub fn new(capacity: usize) -> ReplLog {
        assert!(capacity > 0, "a zero-capacity backlog can never catch a follower up");
        ReplLog {
            base: 0,
            entries: VecDeque::new(),
            capacity,
        }
    }

    /// Appends a command, returning its offset.
    pub fn append(&mut self, cmd: impl Into<String>) -> u64 {
        let at = self.base + self.entries.len() as u64;
        self.entries.push_back(cmd.into());
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
            self.base += 1;
        }
        at
    }

    /// The replication offset: one past the newest command (what Redis
    /// calls `master_repl_offset`, counted in commands, not bytes).
    pub fn offset(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// Offset of the oldest command partial resync can still serve.
    pub fn base_offset(&self) -> u64 {
        self.base
    }

    /// Commands retained in the backlog.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the backlog holds no commands.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The commands from `from` (a follower's applied offset) to the
    /// head, each with its offset. `None` means the backlog no longer
    /// reaches that far back — or `from` lies in the future — and the
    /// follower must full-resync.
    pub fn commands_since(&self, from: u64) -> Option<Vec<(u64, &str)>> {
        if from < self.base || from > self.offset() {
            return None;
        }
        let skip = (from - self.base) as usize;
        Some(
            self.entries
                .iter()
                .enumerate()
                .skip(skip)
                .map(|(i, c)| (self.base + i as u64, c.as_str()))
                .collect(),
        )
    }
}

/// Verdict of [`FollowerCursor::admit`] for one incoming command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// The next expected offset: apply the command and advance.
    Apply,
    /// Offset regression: the command (or an older one) was already
    /// applied. Reject it — applying would double-apply.
    StaleRejected,
    /// The stream skipped ahead; the follower missed commands and must
    /// full-resync.
    GapResync,
}

/// Follower-side apply cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowerCursor {
    applied: u64,
}

impl FollowerCursor {
    /// A cursor for a follower whose state matches leader offset
    /// `offset` (the offset handed over with a full-resync snapshot).
    pub fn start_at(offset: u64) -> FollowerCursor {
        FollowerCursor { applied: offset }
    }

    /// Offset of the next command this follower expects.
    pub fn offset(&self) -> u64 {
        self.applied
    }

    /// Classifies a command stamped `offset`; advances only on
    /// [`Admit::Apply`].
    pub fn admit(&mut self, offset: u64) -> Admit {
        use std::cmp::Ordering::*;
        match offset.cmp(&self.applied) {
            Less => Admit::StaleRejected,
            Greater => Admit::GapResync,
            Equal => {
                self.applied += 1;
                Admit::Apply
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_monotonic() {
        let mut log = ReplLog::new(16);
        assert_eq!(log.append("a"), 0);
        assert_eq!(log.append("b"), 1);
        assert_eq!(log.offset(), 2);
        assert_eq!(log.base_offset(), 0);
    }

    #[test]
    fn backlog_trims_to_capacity() {
        let mut log = ReplLog::new(3);
        for i in 0..10 {
            log.append(format!("c{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.base_offset(), 7);
        assert_eq!(log.offset(), 10);
    }

    #[test]
    fn partial_resync_replays_the_missed_tail() {
        let mut log = ReplLog::new(16);
        for i in 0..5 {
            log.append(format!("c{i}"));
        }
        let got = log.commands_since(3).unwrap();
        assert_eq!(got, vec![(3, "c3"), (4, "c4")]);
        assert_eq!(log.commands_since(5).unwrap(), vec![]);
    }

    #[test]
    fn fallen_behind_backlog_forces_full_resync() {
        let mut log = ReplLog::new(2);
        for i in 0..6 {
            log.append(format!("c{i}"));
        }
        assert!(log.commands_since(3).is_none(), "offset 3 left the backlog");
        assert!(log.commands_since(4).is_some());
        assert!(log.commands_since(9).is_none(), "future offsets are a bug");
    }

    #[test]
    fn cursor_applies_in_order_only() {
        let mut cur = FollowerCursor::start_at(5);
        assert_eq!(cur.admit(5), Admit::Apply);
        assert_eq!(cur.admit(6), Admit::Apply);
        assert_eq!(cur.offset(), 7);
    }

    #[test]
    fn cursor_rejects_offset_regression() {
        let mut cur = FollowerCursor::start_at(0);
        assert_eq!(cur.admit(0), Admit::Apply);
        assert_eq!(cur.admit(0), Admit::StaleRejected);
        assert_eq!(cur.admit(1), Admit::Apply);
        // A replayed old batch stays rejected, cursor unmoved.
        assert_eq!(cur.admit(0), Admit::StaleRejected);
        assert_eq!(cur.offset(), 2);
    }

    #[test]
    fn cursor_detects_gaps() {
        let mut cur = FollowerCursor::start_at(2);
        assert_eq!(cur.admit(4), Admit::GapResync);
        // Gap does not advance: the follower resyncs instead.
        assert_eq!(cur.offset(), 2);
    }

    #[test]
    fn follower_converges_through_log_and_cursor() {
        let mut log = ReplLog::new(64);
        for i in 0..10 {
            log.append(format!("c{i}"));
        }
        // Follower snapshotted at offset 4.
        let mut cur = FollowerCursor::start_at(4);
        let mut applied = Vec::new();
        for (off, cmd) in log.commands_since(cur.offset()).unwrap() {
            if cur.admit(off) == Admit::Apply {
                applied.push(cmd.to_string());
            }
        }
        assert_eq!(applied, vec!["c4", "c5", "c6", "c7", "c8", "c9"]);
        assert_eq!(cur.offset(), log.offset());
    }
}
