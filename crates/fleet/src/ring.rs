//! Consistent-hash ring with virtual nodes.
//!
//! Logical service names hash onto a 64-bit circle; each dispatcher
//! instance contributes `vnodes` points, and a name belongs to the
//! instance owning the first point at or after the name's hash
//! (wrapping). Virtual nodes keep the load split close to uniform, and
//! removing an instance moves only the arcs that instance owned — the
//! property that makes failover a bounded handoff instead of a full
//! reshuffle.
//!
//! The whole layout is a pure function of `(seed, vnodes, members)`:
//! no randomness, no addresses, no clocks. Two processes building a
//! ring from the same configuration agree on every owner, and a seeded
//! netsim run replays bit-identically.

use std::collections::BTreeSet;

/// Identifies one dispatcher instance in the fleet (dense small
/// integers; the simulation uses the spawn index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u32);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// One arc of hash space that changed owner after a membership change:
/// keys hashing into `(start, end]` (wrapping past `u64::MAX`) moved
/// from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandoffRange {
    /// Exclusive lower bound of the arc.
    pub start: u64,
    /// Inclusive upper bound (the removed virtual node's point).
    pub end: u64,
    /// The instance that owned the arc.
    pub from: InstanceId,
    /// The instance that owns it now.
    pub to: InstanceId,
}

/// SplitMix64 finalizer: cheap, deterministic, well-mixed.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the bytes, folded through the seed and the SplitMix64
/// finalizer so short names still spread over the whole circle.
fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325 ^ seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

/// The seeded consistent-hash ring.
#[derive(Debug, Clone)]
pub struct ShardRing {
    seed: u64,
    vnodes: u32,
    /// Sorted `(point, owner)` pairs.
    points: Vec<(u64, InstanceId)>,
    members: BTreeSet<InstanceId>,
}

impl ShardRing {
    /// An empty ring. `vnodes` is the number of points each instance
    /// contributes (more points → more uniform split, slower removal).
    pub fn new(seed: u64, vnodes: u32) -> ShardRing {
        assert!(vnodes > 0, "a ring needs at least one virtual node");
        ShardRing {
            seed,
            vnodes,
            points: Vec::new(),
            members: BTreeSet::new(),
        }
    }

    /// A ring pre-populated with instances `0..n`.
    pub fn with_instances(seed: u64, vnodes: u32, n: u32) -> ShardRing {
        let mut ring = ShardRing::new(seed, vnodes);
        for i in 0..n {
            ring.add_instance(InstanceId(i));
        }
        ring
    }

    /// The seed the layout derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Virtual nodes per instance.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The point of virtual node `v` of `id` — a pure function of the
    /// ring seed, so every replica computes the same layout.
    fn vnode_point(&self, id: InstanceId, v: u32) -> u64 {
        mix64(self.seed ^ ((id.0 as u64) << 32 | v as u64))
    }

    /// Adds an instance's virtual nodes. Returns `false` (and changes
    /// nothing) if it is already a member.
    pub fn add_instance(&mut self, id: InstanceId) -> bool {
        if !self.members.insert(id) {
            return false;
        }
        for v in 0..self.vnodes {
            let p = self.vnode_point(id, v);
            let at = self.points.partition_point(|&(q, _)| q < p);
            self.points.insert(at, (p, id));
        }
        true
    }

    /// Removes an instance, returning the arcs that changed owner (one
    /// per removed virtual node; empty if the instance was not a member
    /// or the ring is empty afterwards).
    pub fn remove_instance(&mut self, id: InstanceId) -> Vec<HandoffRange> {
        if !self.members.remove(&id) {
            return Vec::new();
        }
        let old = std::mem::take(&mut self.points);
        self.points = old.iter().copied().filter(|&(_, o)| o != id).collect();
        if self.points.is_empty() {
            return Vec::new();
        }
        let mut moved = Vec::new();
        for (i, &(p, owner)) in old.iter().enumerate() {
            if owner != id {
                continue;
            }
            // The arc this point owned runs from its predecessor
            // (exclusive) to the point itself (inclusive); every key in
            // it now maps to the first surviving point past `p`.
            let start = old[(i + old.len() - 1) % old.len()].0;
            let to = self
                .owner_of_point(p.wrapping_add(1))
                .expect("ring is non-empty");
            moved.push(HandoffRange {
                start,
                end: p,
                from: id,
                to,
            });
        }
        moved
    }

    /// Hashes a logical name onto the circle.
    pub fn key_point(&self, name: &str) -> u64 {
        hash_bytes(self.seed, name.as_bytes())
    }

    /// The instance owning a logical service name (`None` on an empty
    /// ring).
    pub fn owner_of(&self, name: &str) -> Option<InstanceId> {
        self.owner_of_point(self.key_point(name))
    }

    /// The instance owning a raw circle point: the owner of the first
    /// virtual node at or after `h`, wrapping.
    pub fn owner_of_point(&self, h: u64) -> Option<InstanceId> {
        if self.points.is_empty() {
            return None;
        }
        let at = self.points.partition_point(|&(q, _)| q < h);
        let (_, owner) = self.points[at % self.points.len()];
        Some(owner)
    }

    /// Current members, ascending.
    pub fn members(&self) -> Vec<InstanceId> {
        self.members.iter().copied().collect()
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: InstanceId) -> bool {
        self.members.contains(&id)
    }

    /// Number of member instances.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// How many distinct arcs `id` owns (≤ its vnode count; fewer when
    /// it is the only member).
    pub fn owned_ranges(&self, id: InstanceId) -> usize {
        if !self.members.contains(&id) {
            return 0;
        }
        if self.members.len() == 1 {
            return 1; // the whole circle
        }
        let mut arcs = 0;
        for (i, &(_, owner)) in self.points.iter().enumerate() {
            let prev = self.points[(i + self.points.len() - 1) % self.points.len()].1;
            if owner == id && prev != id {
                arcs += 1;
            }
        }
        arcs
    }

    /// The fraction of the circle `id` owns (0.0 for non-members).
    pub fn owned_fraction(&self, id: InstanceId) -> f64 {
        if !self.members.contains(&id) || self.points.is_empty() {
            return 0.0;
        }
        if self.members.len() == 1 {
            return 1.0;
        }
        let mut owned: u128 = 0;
        for (i, &(p, owner)) in self.points.iter().enumerate() {
            if owner != id {
                continue;
            }
            let prev = self.points[(i + self.points.len() - 1) % self.points.len()].0;
            owned += u128::from(p.wrapping_sub(prev));
        }
        owned as f64 / 2f64.powi(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("svc-{i}")).collect()
    }

    #[test]
    fn layout_is_deterministic_for_a_seed() {
        let a = ShardRing::with_instances(42, 64, 4);
        let b = ShardRing::with_instances(42, 64, 4);
        for name in names(500) {
            assert_eq!(a.owner_of(&name), b.owner_of(&name));
        }
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let a = ShardRing::with_instances(1, 64, 4);
        let b = ShardRing::with_instances(2, 64, 4);
        let differing = names(500)
            .iter()
            .filter(|n| a.owner_of(n) != b.owner_of(n))
            .count();
        assert!(differing > 100, "only {differing} names moved");
    }

    #[test]
    fn membership_order_does_not_matter() {
        let mut a = ShardRing::new(7, 32);
        for i in [2u32, 0, 3, 1] {
            a.add_instance(InstanceId(i));
        }
        let b = ShardRing::with_instances(7, 32, 4);
        for name in names(300) {
            assert_eq!(a.owner_of(&name), b.owner_of(&name));
        }
    }

    #[test]
    fn vnodes_balance_the_split() {
        let ring = ShardRing::with_instances(0xF1EE7, 64, 4);
        let mut counts = [0usize; 4];
        for name in names(4000) {
            counts[ring.owner_of(&name).unwrap().0 as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (500..2000).contains(&c),
                "instance {i} owns {c} of 4000: {counts:?}"
            );
        }
        for i in 0..4 {
            let f = ring.owned_fraction(InstanceId(i));
            assert!((0.1..0.45).contains(&f), "fraction {f}");
        }
    }

    #[test]
    fn removal_only_moves_the_dead_instances_keys() {
        let mut ring = ShardRing::with_instances(9, 64, 4);
        let before: Vec<(String, InstanceId)> = names(1000)
            .into_iter()
            .map(|n| {
                let o = ring.owner_of(&n).unwrap();
                (n, o)
            })
            .collect();
        let moved = ring.remove_instance(InstanceId(2));
        assert!(!moved.is_empty());
        assert!(moved.iter().all(|r| r.from == InstanceId(2)));
        for (name, old_owner) in before {
            let new_owner = ring.owner_of(&name).unwrap();
            if old_owner == InstanceId(2) {
                assert_ne!(new_owner, InstanceId(2));
            } else {
                assert_eq!(new_owner, old_owner, "{name} moved needlessly");
            }
        }
    }

    #[test]
    fn handoff_ranges_cover_exactly_the_moved_keys() {
        let mut ring = ShardRing::with_instances(11, 32, 3);
        let probe: Vec<(u64, InstanceId)> = (0..5000u64)
            .map(|i| {
                let h = ring.key_point(&format!("k{i}"));
                (h, ring.owner_of_point(h).unwrap())
            })
            .collect();
        let moved = ring.remove_instance(InstanceId(1));
        let in_range = |h: u64, r: &HandoffRange| {
            if r.start < r.end {
                h > r.start && h <= r.end
            } else {
                // wrapping arc
                h > r.start || h <= r.end
            }
        };
        for (h, old_owner) in probe {
            let covering: Vec<&HandoffRange> =
                moved.iter().filter(|r| in_range(h, r)).collect();
            if old_owner == InstanceId(1) {
                assert_eq!(covering.len(), 1, "point {h:#x} covered {covering:?}");
                assert_eq!(
                    ring.owner_of_point(h).unwrap(),
                    covering[0].to,
                    "range promises the wrong successor"
                );
            } else {
                assert!(covering.is_empty(), "unmoved point {h:#x} in {covering:?}");
            }
        }
    }

    #[test]
    fn add_then_remove_restores_the_layout() {
        let mut ring = ShardRing::with_instances(5, 48, 3);
        let before: Vec<Option<InstanceId>> =
            names(400).iter().map(|n| ring.owner_of(n)).collect();
        ring.add_instance(InstanceId(9));
        ring.remove_instance(InstanceId(9));
        let after: Vec<Option<InstanceId>> =
            names(400).iter().map(|n| ring.owner_of(n)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn single_member_owns_everything() {
        let mut ring = ShardRing::with_instances(3, 16, 1);
        assert_eq!(ring.owned_fraction(InstanceId(0)), 1.0);
        assert_eq!(ring.owned_ranges(InstanceId(0)), 1);
        assert_eq!(ring.owner_of("anything"), Some(InstanceId(0)));
        assert!(ring.remove_instance(InstanceId(0)).is_empty());
        assert_eq!(ring.owner_of("anything"), None);
    }

    #[test]
    fn double_add_and_foreign_remove_are_noops() {
        let mut ring = ShardRing::with_instances(3, 16, 2);
        assert!(!ring.add_instance(InstanceId(0)));
        assert!(ring.remove_instance(InstanceId(7)).is_empty());
        assert_eq!(ring.len(), 2);
    }
}
