//! Fleet scale-out primitives for the dispatcher tier.
//!
//! The paper funnels every asynchronous conversation through a single
//! dispatcher and a single registry; this crate holds the pure data
//! structures that let N dispatcher instances share that load:
//!
//! * [`ring`] — a consistent-hash ring with virtual nodes mapping
//!   logical service names to dispatcher instances. The layout is a
//!   deterministic function of a seed, so simulated fleet runs replay
//!   bit-identically.
//! * [`replog`] — a replication command log in the Redis PSYNC shape:
//!   a leader appends commands at monotonically increasing offsets and
//!   keeps a bounded backlog; a follower attaches with a full snapshot
//!   plus the leader offset, then tails the command stream, and a
//!   cursor rejects offset regressions and detects gaps that force a
//!   full resync.
//! * [`handoff`] — the ownership-handoff ledger: when an instance dies
//!   the ring reassigns its shard arcs and a designated successor
//!   recovers the dead instance's durable mailbox; the ledger tracks
//!   each handoff through announce → recover → complete and yields the
//!   rebalance latency.
//!
//! Everything here is runtime-agnostic and dependency-free: `wsd-core`
//! wires these pieces to the registry, the durable store and both
//! runtimes behind its `FleetConfig`.

#![warn(missing_docs)]

pub mod handoff;
pub mod replog;
pub mod ring;

pub use handoff::{Handoff, HandoffLog, HandoffState};
pub use replog::{Admit, FollowerCursor, ReplLog};
pub use ring::{HandoffRange, InstanceId, ShardRing};
