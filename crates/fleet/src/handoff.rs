//! The msgbox ownership-handoff ledger.
//!
//! When a dispatcher instance dies, its shard arcs reassign on the ring
//! and a designated successor adopts the dead instance's durable
//! mailbox (the WAL makes every acknowledged deposit recoverable). The
//! ledger tracks each handoff through a small state machine:
//!
//! ```text
//! Announced ──begin_recovery──▶ Recovering ──complete──▶ Complete
//! ```
//!
//! `Announced` marks the membership change (the ring has already
//! reassigned the arcs); `Recovering` means the successor has opened
//! the dead instance's store and is draining it; `Complete` records how
//! many messages were recovered and when — the announce→complete span
//! is the rebalance latency the fleet bench reports.

use crate::ring::{HandoffRange, InstanceId};

/// Phase of one ownership handoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffState {
    /// The death is known and the ring reassigned; nobody has opened
    /// the orphaned store yet.
    Announced,
    /// The successor is replaying/draining the orphaned store.
    Recovering,
    /// All recoverable messages are back in flight.
    Complete,
}

/// One instance death being handed off to a successor.
#[derive(Debug, Clone)]
pub struct Handoff {
    /// The instance that died.
    pub dead: InstanceId,
    /// The instance adopting its durable mailbox.
    pub successor: InstanceId,
    /// The ring arcs that changed owner.
    pub ranges: Vec<HandoffRange>,
    state: HandoffState,
    /// Virtual/wall microseconds when the death was announced.
    pub started_at_us: u64,
    /// Set when recovery finishes.
    pub completed_at_us: Option<u64>,
    /// Acknowledged messages recovered from the orphaned store.
    pub recovered: u64,
}

impl Handoff {
    /// Current phase.
    pub fn state(&self) -> HandoffState {
        self.state
    }

    /// Announce → complete span, once complete.
    pub fn rebalance_latency_us(&self) -> Option<u64> {
        self.completed_at_us
            .map(|t| t.saturating_sub(self.started_at_us))
    }
}

/// Fleet-wide ledger of handoffs.
#[derive(Debug, Clone, Default)]
pub struct HandoffLog {
    entries: Vec<Handoff>,
}

impl HandoffLog {
    /// An empty ledger.
    pub fn new() -> HandoffLog {
        HandoffLog::default()
    }

    /// Records an instance death; returns the handoff's index.
    pub fn announce(
        &mut self,
        dead: InstanceId,
        successor: InstanceId,
        ranges: Vec<HandoffRange>,
        now_us: u64,
    ) -> usize {
        self.entries.push(Handoff {
            dead,
            successor,
            ranges,
            state: HandoffState::Announced,
            started_at_us: now_us,
            completed_at_us: None,
            recovered: 0,
        });
        self.entries.len() - 1
    }

    /// The first announced-but-unclaimed handoff assigned to
    /// `successor`, if any. Claiming moves it to `Recovering`.
    pub fn claim_for(&mut self, successor: InstanceId) -> Option<usize> {
        let at = self
            .entries
            .iter()
            .position(|h| h.successor == successor && h.state == HandoffState::Announced)?;
        self.entries[at].state = HandoffState::Recovering;
        Some(at)
    }

    /// Finishes a claimed handoff. Panics if it was never claimed (the
    /// state machine only moves forward).
    pub fn complete(&mut self, at: usize, recovered: u64, now_us: u64) {
        let h = &mut self.entries[at];
        assert_eq!(
            h.state,
            HandoffState::Recovering,
            "complete() on an unclaimed handoff"
        );
        h.state = HandoffState::Complete;
        h.recovered = recovered;
        h.completed_at_us = Some(now_us);
    }

    /// The ledger entries, oldest first.
    pub fn entries(&self) -> &[Handoff] {
        &self.entries
    }

    /// Handoff by index.
    pub fn get(&self, at: usize) -> &Handoff {
        &self.entries[at]
    }

    /// Handoffs not yet complete.
    pub fn in_flight(&self) -> usize {
        self.entries
            .iter()
            .filter(|h| h.state != HandoffState::Complete)
            .count()
    }

    /// Whether every announced handoff has completed.
    pub fn all_complete(&self) -> bool {
        self.in_flight() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn announce_one(log: &mut HandoffLog) -> usize {
        log.announce(InstanceId(1), InstanceId(2), Vec::new(), 1_000)
    }

    #[test]
    fn lifecycle_reaches_complete() {
        let mut log = HandoffLog::new();
        let at = announce_one(&mut log);
        assert_eq!(log.get(at).state(), HandoffState::Announced);
        assert_eq!(log.in_flight(), 1);
        assert_eq!(log.claim_for(InstanceId(2)), Some(at));
        assert_eq!(log.get(at).state(), HandoffState::Recovering);
        log.complete(at, 17, 3_500);
        let h = log.get(at);
        assert_eq!(h.state(), HandoffState::Complete);
        assert_eq!(h.recovered, 17);
        assert_eq!(h.rebalance_latency_us(), Some(2_500));
        assert!(log.all_complete());
    }

    #[test]
    fn claim_matches_successor_only() {
        let mut log = HandoffLog::new();
        announce_one(&mut log);
        assert_eq!(log.claim_for(InstanceId(3)), None);
        assert_eq!(log.claim_for(InstanceId(2)), Some(0));
        // Already claimed: nothing left for the successor.
        assert_eq!(log.claim_for(InstanceId(2)), None);
    }

    #[test]
    #[should_panic(expected = "unclaimed")]
    fn complete_requires_claim() {
        let mut log = HandoffLog::new();
        let at = announce_one(&mut log);
        log.complete(at, 0, 2_000);
    }

    #[test]
    fn latency_is_none_until_complete() {
        let mut log = HandoffLog::new();
        let at = announce_one(&mut log);
        assert_eq!(log.get(at).rebalance_latency_us(), None);
    }
}
