//! SOAP version constants: namespaces, content types and fault code names.

/// The two SOAP versions the dispatcher accepts, as in the paper's XSUL
/// stack ("SOAP 1.1 and 1.2 wrapping/unwrapping").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SoapVersion {
    /// SOAP 1.1 (the note, `http://schemas.xmlsoap.org/soap/envelope/`).
    V11,
    /// SOAP 1.2 (the W3C recommendation,
    /// `http://www.w3.org/2003/05/soap-envelope`).
    V12,
}

impl SoapVersion {
    /// Envelope namespace URI.
    pub fn envelope_ns(self) -> &'static str {
        match self {
            SoapVersion::V11 => "http://schemas.xmlsoap.org/soap/envelope/",
            SoapVersion::V12 => "http://www.w3.org/2003/05/soap-envelope",
        }
    }

    /// HTTP `Content-Type` for this version.
    pub fn content_type(self) -> &'static str {
        match self {
            SoapVersion::V11 => "text/xml; charset=utf-8",
            SoapVersion::V12 => "application/soap+xml; charset=utf-8",
        }
    }

    /// The conventional envelope prefix this crate writes.
    pub fn prefix(self) -> &'static str {
        match self {
            SoapVersion::V11 => "SOAP-ENV",
            SoapVersion::V12 => "env",
        }
    }

    /// Identifies the version from an envelope namespace URI.
    pub fn from_envelope_ns(ns: &str) -> Option<Self> {
        match ns {
            "http://schemas.xmlsoap.org/soap/envelope/" => Some(SoapVersion::V11),
            "http://www.w3.org/2003/05/soap-envelope" => Some(SoapVersion::V12),
            _ => None,
        }
    }

    /// Value an attribute must carry to mean "true" for `mustUnderstand`.
    pub fn must_understand_true(self, value: &str) -> bool {
        match self {
            SoapVersion::V11 => value == "1",
            SoapVersion::V12 => value == "1" || value == "true",
        }
    }

    /// The local name of the sender-side fault code
    /// (`Client` in 1.1, `Sender` in 1.2).
    pub fn sender_fault_code(self) -> &'static str {
        match self {
            SoapVersion::V11 => "Client",
            SoapVersion::V12 => "Sender",
        }
    }

    /// The local name of the receiver-side fault code
    /// (`Server` in 1.1, `Receiver` in 1.2).
    pub fn receiver_fault_code(self) -> &'static str {
        match self {
            SoapVersion::V11 => "Server",
            SoapVersion::V12 => "Receiver",
        }
    }
}

impl std::fmt::Display for SoapVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoapVersion::V11 => f.write_str("SOAP 1.1"),
            SoapVersion::V12 => f.write_str("SOAP 1.2"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_are_distinct_and_recognized() {
        for v in [SoapVersion::V11, SoapVersion::V12] {
            assert_eq!(SoapVersion::from_envelope_ns(v.envelope_ns()), Some(v));
        }
        assert_eq!(SoapVersion::from_envelope_ns("urn:other"), None);
    }

    #[test]
    fn content_types_match_specs() {
        assert!(SoapVersion::V11.content_type().starts_with("text/xml"));
        assert!(SoapVersion::V12
            .content_type()
            .starts_with("application/soap+xml"));
    }

    #[test]
    fn must_understand_lexical_space() {
        assert!(SoapVersion::V11.must_understand_true("1"));
        assert!(!SoapVersion::V11.must_understand_true("true"));
        assert!(SoapVersion::V12.must_understand_true("true"));
        assert!(SoapVersion::V12.must_understand_true("1"));
        assert!(!SoapVersion::V12.must_understand_true("0"));
    }

    #[test]
    fn fault_code_names_differ_between_versions() {
        assert_eq!(SoapVersion::V11.sender_fault_code(), "Client");
        assert_eq!(SoapVersion::V12.sender_fault_code(), "Sender");
        assert_eq!(SoapVersion::V11.receiver_fault_code(), "Server");
        assert_eq!(SoapVersion::V12.receiver_fault_code(), "Receiver");
    }
}
