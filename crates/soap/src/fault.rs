//! SOAP faults, in both the 1.1 (`faultcode`/`faultstring`) and 1.2
//! (`Code`/`Reason`) shapes.

use wsd_xml::{Element, Node};

use crate::version::SoapVersion;
use crate::SoapError;

/// Version-independent fault category. Serialized to the right local name
/// per version (`Sender` ⇄ `Client`, `Receiver` ⇄ `Server`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultCode {
    /// Envelope namespace not understood.
    VersionMismatch,
    /// A `mustUnderstand` header was not understood.
    MustUnderstand,
    /// The message was malformed or otherwise the sender's fault.
    Sender,
    /// The receiver failed to process a well-formed message.
    Receiver,
    /// Any other code, by local name.
    Custom(String),
}

impl FaultCode {
    fn local_str(&self, version: SoapVersion) -> &str {
        match self {
            FaultCode::VersionMismatch => "VersionMismatch",
            FaultCode::MustUnderstand => "MustUnderstand",
            FaultCode::Sender => version.sender_fault_code(),
            FaultCode::Receiver => version.receiver_fault_code(),
            FaultCode::Custom(name) => name,
        }
    }

    fn local_name(&self, version: SoapVersion) -> String {
        self.local_str(version).to_string()
    }

    fn from_local_name(local: &str) -> FaultCode {
        match local {
            "VersionMismatch" => FaultCode::VersionMismatch,
            "MustUnderstand" => FaultCode::MustUnderstand,
            "Client" | "Sender" => FaultCode::Sender,
            "Server" | "Receiver" => FaultCode::Receiver,
            other => FaultCode::Custom(other.to_string()),
        }
    }
}

/// A SOAP fault: code, human-readable reason, optional acting role and
/// application-defined detail elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Fault category.
    pub code: FaultCode,
    /// Human-readable explanation (`faultstring` / `Reason/Text`).
    pub reason: String,
    /// The node that faulted (`faultactor` / `Role`).
    pub role: Option<String>,
    /// Application detail elements (`detail` / `Detail` children).
    pub detail: Vec<Element>,
}

impl Fault {
    /// A fault with no role or detail.
    pub fn new(code: FaultCode, reason: impl Into<String>) -> Self {
        Fault {
            code,
            reason: reason.into(),
            role: None,
            detail: Vec::new(),
        }
    }

    /// Sets the acting role. Returns `self` for chaining.
    pub fn with_role(mut self, role: impl Into<String>) -> Self {
        self.role = Some(role.into());
        self
    }

    /// Appends a detail element. Returns `self` for chaining.
    pub fn with_detail(mut self, detail: Element) -> Self {
        self.detail.push(detail);
        self
    }

    /// Builds the version-appropriate `<Fault>` element. The element
    /// assumes the envelope prefix is in scope (the envelope serializer
    /// guarantees that).
    pub fn to_element(&self, version: SoapVersion) -> Element {
        let ns = version.envelope_ns();
        let prefix = version.prefix();
        let mut fault = Element::new_ns(Some(prefix), "Fault", ns);
        match version {
            SoapVersion::V11 => {
                fault.children.push(Node::Element(
                    Element::new("faultcode")
                        .with_text(format!("{prefix}:{}", self.code.local_name(version))),
                ));
                fault.children.push(Node::Element(
                    Element::new("faultstring").with_text(self.reason.clone()),
                ));
                if let Some(role) = &self.role {
                    fault.children.push(Node::Element(
                        Element::new("faultactor").with_text(role.clone()),
                    ));
                }
                if !self.detail.is_empty() {
                    let mut detail = Element::new("detail");
                    for d in &self.detail {
                        detail.children.push(Node::Element(d.clone()));
                    }
                    fault.children.push(Node::Element(detail));
                }
            }
            SoapVersion::V12 => {
                let code = Element::new_ns(Some(prefix), "Code", ns).with_child(
                    Element::new_ns(Some(prefix), "Value", ns)
                        .with_text(format!("{prefix}:{}", self.code.local_name(version))),
                );
                fault.children.push(Node::Element(code));
                let reason = Element::new_ns(Some(prefix), "Reason", ns).with_child(
                    Element::new_ns(Some(prefix), "Text", ns)
                        .with_attr_ns("xml", "lang", wsd_xml::tree::XML_NS, "en")
                        .with_text(self.reason.clone()),
                );
                fault.children.push(Node::Element(reason));
                if let Some(role) = &self.role {
                    fault.children.push(Node::Element(
                        Element::new_ns(Some(prefix), "Role", ns).with_text(role.clone()),
                    ));
                }
                if !self.detail.is_empty() {
                    let mut detail = Element::new_ns(Some(prefix), "Detail", ns);
                    for d in &self.detail {
                        detail.children.push(Node::Element(d.clone()));
                    }
                    fault.children.push(Node::Element(detail));
                }
            }
        }
        fault
    }

    /// Writes the complete fault envelope as raw bytes into `out` —
    /// byte-identical to
    /// `Envelope::fault(version, Fault::new(code, reason)).to_xml()` but
    /// with no element tree built. Covers the faults the dispatcher
    /// generates on the hot path (code + reason, no role/detail); faults
    /// carrying role or detail still go through the tree path.
    pub fn push_fault_envelope(
        version: SoapVersion,
        code: &FaultCode,
        reason: &str,
        out: &mut String,
    ) {
        use wsd_xml::escape::push_escaped_text;

        let prefix = version.prefix();
        let ns = version.envelope_ns();
        out.push('<');
        out.push_str(prefix);
        out.push_str(":Envelope xmlns:");
        out.push_str(prefix);
        out.push_str("=\"");
        out.push_str(ns);
        out.push_str("\"><");
        out.push_str(prefix);
        out.push_str(":Body><");
        out.push_str(prefix);
        out.push_str(":Fault>");
        match version {
            SoapVersion::V11 => {
                out.push_str("<faultcode>");
                out.push_str(prefix);
                out.push(':');
                push_escaped_text(code.local_str(version), out);
                out.push_str("</faultcode><faultstring>");
                push_escaped_text(reason, out);
                out.push_str("</faultstring>");
            }
            SoapVersion::V12 => {
                out.push('<');
                out.push_str(prefix);
                out.push_str(":Code><");
                out.push_str(prefix);
                out.push_str(":Value>");
                out.push_str(prefix);
                out.push(':');
                push_escaped_text(code.local_str(version), out);
                out.push_str("</");
                out.push_str(prefix);
                out.push_str(":Value></");
                out.push_str(prefix);
                out.push_str(":Code><");
                out.push_str(prefix);
                out.push_str(":Reason><");
                out.push_str(prefix);
                out.push_str(":Text xml:lang=\"en\">");
                push_escaped_text(reason, out);
                out.push_str("</");
                out.push_str(prefix);
                out.push_str(":Text></");
                out.push_str(prefix);
                out.push_str(":Reason>");
            }
        }
        out.push_str("</");
        out.push_str(prefix);
        out.push_str(":Fault></");
        out.push_str(prefix);
        out.push_str(":Body></");
        out.push_str(prefix);
        out.push_str(":Envelope>");
    }

    /// Parses a `<Fault>` element in the given version's shape.
    pub fn from_element(version: SoapVersion, el: &Element) -> Result<Fault, SoapError> {
        let ns = version.envelope_ns();
        match version {
            SoapVersion::V11 => {
                let code_text = el
                    .find_child(None, "faultcode")
                    .map(|c| c.text())
                    .ok_or(SoapError::BadRpc("fault missing faultcode"))?;
                let local = code_text.rsplit(':').next().unwrap_or(&code_text);
                let reason = el
                    .find_child(None, "faultstring")
                    .map(|c| c.text())
                    .unwrap_or_default();
                let role = el.find_child(None, "faultactor").map(|c| c.text());
                let detail = el
                    .find_child(None, "detail")
                    .map(|d| d.child_elements().cloned().collect())
                    .unwrap_or_default();
                Ok(Fault {
                    code: FaultCode::from_local_name(local.trim()),
                    reason,
                    role,
                    detail,
                })
            }
            SoapVersion::V12 => {
                let code_text = el
                    .find_child(Some(ns), "Code")
                    .and_then(|c| c.find_child(Some(ns), "Value"))
                    .map(|v| v.text())
                    .ok_or(SoapError::BadRpc("fault missing Code/Value"))?;
                let local = code_text.rsplit(':').next().unwrap_or(&code_text);
                let reason = el
                    .find_child(Some(ns), "Reason")
                    .and_then(|r| r.find_child(Some(ns), "Text"))
                    .map(|t| t.text())
                    .unwrap_or_default();
                let role = el.find_child(Some(ns), "Role").map(|r| r.text());
                let detail = el
                    .find_child(Some(ns), "Detail")
                    .map(|d| d.child_elements().cloned().collect())
                    .unwrap_or_default();
                Ok(Fault {
                    code: FaultCode::from_local_name(local.trim()),
                    reason,
                    role,
                    detail,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Envelope;

    fn round_trip(version: SoapVersion, fault: Fault) -> Fault {
        let env = Envelope::fault(version, fault);
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        parsed.as_fault().unwrap().clone()
    }

    #[test]
    fn v11_fault_round_trips() {
        let f = Fault::new(FaultCode::Sender, "bad request").with_role("urn:dispatcher");
        let got = round_trip(SoapVersion::V11, f.clone());
        assert_eq!(got.code, FaultCode::Sender);
        assert_eq!(got.reason, "bad request");
        assert_eq!(got.role.as_deref(), Some("urn:dispatcher"));
    }

    #[test]
    fn v12_fault_round_trips() {
        let f = Fault::new(FaultCode::Receiver, "backend down");
        let got = round_trip(SoapVersion::V12, f);
        assert_eq!(got.code, FaultCode::Receiver);
        assert_eq!(got.reason, "backend down");
    }

    #[test]
    fn v11_uses_client_server_names() {
        let xml = Envelope::fault(SoapVersion::V11, Fault::new(FaultCode::Sender, "x")).to_xml();
        assert!(xml.contains(":Client<"), "{xml}");
        let xml =
            Envelope::fault(SoapVersion::V11, Fault::new(FaultCode::Receiver, "x")).to_xml();
        assert!(xml.contains(":Server<"), "{xml}");
    }

    #[test]
    fn v12_uses_sender_receiver_names() {
        let xml = Envelope::fault(SoapVersion::V12, Fault::new(FaultCode::Sender, "x")).to_xml();
        assert!(xml.contains(":Sender<"), "{xml}");
    }

    #[test]
    fn cross_version_code_mapping() {
        // A 1.1 Client fault re-raised as 1.2 must become Sender.
        let f = round_trip(SoapVersion::V11, Fault::new(FaultCode::Sender, "x"));
        let xml = Envelope::fault(SoapVersion::V12, f).to_xml();
        assert!(xml.contains(":Sender<"));
    }

    #[test]
    fn detail_elements_round_trip() {
        let detail = Element::new("errno").with_text("42");
        for v in [SoapVersion::V11, SoapVersion::V12] {
            let f = Fault::new(FaultCode::Receiver, "x").with_detail(detail.clone());
            let got = round_trip(v, f);
            assert_eq!(got.detail.len(), 1, "{v}");
            assert_eq!(got.detail[0].text(), "42");
        }
    }

    #[test]
    fn raw_fault_bytes_match_tree_path() {
        for v in [SoapVersion::V11, SoapVersion::V12] {
            for (code, reason) in [
                (FaultCode::Sender, "unknown service: <echo> & \"co\""),
                (FaultCode::Receiver, "upstream failure: timed out"),
                (FaultCode::VersionMismatch, ""),
                (FaultCode::MustUnderstand, "hdr"),
                (FaultCode::Custom("Throttled".into()), "busy"),
            ] {
                let mut raw = String::new();
                Fault::push_fault_envelope(v, &code, reason, &mut raw);
                let tree = Envelope::fault(v, Fault::new(code.clone(), reason)).to_xml();
                assert_eq!(raw, tree, "{v} {code:?}");
            }
        }
    }

    #[test]
    fn custom_and_standard_codes_round_trip() {
        for code in [
            FaultCode::VersionMismatch,
            FaultCode::MustUnderstand,
            FaultCode::Custom("Throttled".into()),
        ] {
            for v in [SoapVersion::V11, SoapVersion::V12] {
                let got = round_trip(v, Fault::new(code.clone(), "r"));
                assert_eq!(got.code, code, "{v}");
            }
        }
    }
}
