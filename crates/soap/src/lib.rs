//! SOAP 1.1 / 1.2 envelope handling for the WS-Dispatcher.
//!
//! Mirrors the XSUL modules the paper's implementation uses (§4.2): "SOAP
//! 1.1 and 1.2 wrapping/unwrapping" and "RPC style wrapping". Everything is
//! hand-rolled on top of [`wsd_xml`] — there is no schema machinery, just
//! the envelope structure the dispatcher needs to inspect, rewrite and
//! forward messages.
//!
//! # Example
//!
//! ```
//! use wsd_soap::{Envelope, SoapVersion, rpc};
//!
//! // Build the paper's echo request and round-trip it.
//! let env = rpc::echo_request(SoapVersion::V11, "ping-1");
//! let text = env.to_xml();
//! let parsed = Envelope::parse(&text).unwrap();
//! assert_eq!(rpc::parse_echo(&parsed).unwrap(), "ping-1");
//! ```

#![warn(missing_docs)]

pub mod envelope;
pub mod fault;
pub mod rpc;
pub mod scratch;
pub mod version;

pub use envelope::{Body, Envelope};
pub use fault::{Fault, FaultCode};
pub use scratch::{checkout, EnvelopeScratch, ScratchGuard};
pub use version::SoapVersion;

/// Errors raised while interpreting a document as a SOAP envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoapError {
    /// The document is not XML at all.
    Xml(wsd_xml::XmlError),
    /// The root element is not a SOAP 1.1 or 1.2 `Envelope`.
    NotAnEnvelope,
    /// The envelope has no `Body` element.
    MissingBody,
    /// A header carried `mustUnderstand` for a QName the processor does
    /// not understand.
    MustUnderstand(String),
    /// The body is not shaped like the expected RPC call.
    BadRpc(&'static str),
}

impl std::fmt::Display for SoapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoapError::Xml(e) => write!(f, "invalid XML: {e}"),
            SoapError::NotAnEnvelope => f.write_str("root element is not a SOAP Envelope"),
            SoapError::MissingBody => f.write_str("SOAP envelope has no Body"),
            SoapError::MustUnderstand(h) => {
                write!(f, "mustUnderstand header not understood: {h}")
            }
            SoapError::BadRpc(m) => write!(f, "malformed RPC body: {m}"),
        }
    }
}

impl std::error::Error for SoapError {}

impl From<wsd_xml::XmlError> for SoapError {
    fn from(e: wsd_xml::XmlError) -> Self {
        SoapError::Xml(e)
    }
}
