//! Pooled per-envelope scratch buffers.
//!
//! The dispatch hot path produces one rewritten envelope per message.
//! Instead of allocating a fresh `String` each time, handler threads
//! check an [`EnvelopeScratch`] out of a global pool (the same idiom as
//! the reactor's reusable write buffer), splice into it, and return it
//! on drop. Steady state allocates nothing: the buffer's capacity
//! survives the round trip.
//!
//! Hygiene: a buffer returned to the pool must never leak bytes from
//! the previous envelope. [`EnvelopeScratch::reset`] clears the
//! contents and, in debug builds, poison-fills the spare capacity with
//! `0xA5`; checkout asserts the buffer is empty and (debug) that the
//! poison is intact, so any use-after-return or stale-slice bug fails
//! loudly in tests instead of shipping cross-envelope data.

// wsd-lint: allow(std-sync-primitive): wsd-soap stays dependency-light (wsd-xml only); the pool mutex is uncontended and held for a single Vec push/pop
use std::sync::Mutex;

/// Fill byte written over spare capacity in debug builds.
pub const POISON: u8 = 0xA5;

/// How many buffers the global pool retains (beyond this, returned
/// buffers are simply dropped — correct, just not reused).
const POOL_RETAIN: usize = 32;

/// Reusable per-envelope working memory: the splice/fault output buffer.
#[derive(Debug, Default)]
pub struct EnvelopeScratch {
    /// The output buffer rewrites and raw fault/ack bytes are written to.
    pub out: String,
}

impl EnvelopeScratch {
    /// A fresh scratch with pre-sized capacity (one envelope plus
    /// headroom, so the first checkout already avoids growth reallocs).
    /// Debug builds poison the capacity up front, so checkout's hygiene
    /// assert holds for fresh and pooled buffers alike.
    pub fn with_default_capacity() -> Self {
        let mut scratch = EnvelopeScratch {
            out: String::with_capacity(2048),
        };
        scratch.reset();
        scratch
    }

    /// Clears the scratch for reuse. Debug builds poison-fill the spare
    /// capacity so stale reads of previous-envelope bytes are visible.
    pub fn reset(&mut self) {
        self.out.clear();
        #[cfg(debug_assertions)]
        {
            // SAFETY: we write POISON over the spare capacity and then
            // restore len = 0; the buffer content is never read as &str
            // while non-UTF-8 bytes are within len.
            unsafe {
                let v = self.out.as_mut_vec();
                let cap = v.capacity();
                std::ptr::write_bytes(v.as_mut_ptr(), POISON, cap);
                v.set_len(0);
            }
        }
    }

    /// Debug-build verification that the poison laid down by
    /// [`reset`](Self::reset) is intact — i.e. nobody wrote into (or
    /// held onto) the buffer while it sat in the pool.
    #[cfg(debug_assertions)]
    fn assert_poisoned(&self) {
        assert!(self.out.is_empty(), "pooled scratch must be empty");
        // SAFETY: reading initialized-by-reset spare capacity via the
        // raw pointer; len stays 0 throughout.
        unsafe {
            let spare = std::slice::from_raw_parts(self.out.as_ptr(), self.out.capacity());
            assert!(
                spare.iter().all(|&b| b == POISON),
                "pooled scratch leaked bytes from a previous envelope"
            );
        }
    }
}

static POOL: Mutex<Vec<EnvelopeScratch>> = Mutex::new(Vec::new());

/// Checks a scratch buffer out of the global pool (allocating a fresh
/// one only when the pool is empty). The buffer is verified clean — and
/// in debug builds, poison-intact — at checkout.
pub fn checkout() -> ScratchGuard {
    let pooled = POOL.lock().expect("scratch pool poisoned").pop();
    let scratch = match pooled {
        Some(s) => s,
        None => EnvelopeScratch::with_default_capacity(),
    };
    assert!(scratch.out.is_empty(), "pooled scratch must be empty");
    #[cfg(debug_assertions)]
    scratch.assert_poisoned();
    ScratchGuard {
        scratch: Some(scratch),
    }
}

/// RAII checkout of an [`EnvelopeScratch`]; returns the (reset) buffer
/// to the pool on drop.
#[derive(Debug)]
pub struct ScratchGuard {
    scratch: Option<EnvelopeScratch>,
}

impl ScratchGuard {
    /// Moves the output `String` out of the scratch (for handing an
    /// envelope to an owning consumer, e.g. a queued request body). The
    /// guard returns an empty — but no longer pre-sized — buffer to the
    /// pool; prefer borrowing `out` when the bytes are transient.
    pub fn take_out(&mut self) -> String {
        std::mem::take(&mut self.scratch.as_mut().expect("scratch present").out)
    }
}

impl std::ops::Deref for ScratchGuard {
    type Target = EnvelopeScratch;
    fn deref(&self) -> &EnvelopeScratch {
        self.scratch.as_ref().expect("scratch present")
    }
}

impl std::ops::DerefMut for ScratchGuard {
    fn deref_mut(&mut self) -> &mut EnvelopeScratch {
        self.scratch.as_mut().expect("scratch present")
    }
}

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        if let Some(mut scratch) = self.scratch.take() {
            scratch.reset();
            let mut pool = POOL.lock().expect("scratch pool poisoned");
            if pool.len() < POOL_RETAIN {
                pool.push(scratch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuse_roundtrip() {
        let mut g = checkout();
        g.out.push_str("<env>payload</env>");
        drop(g);
        let g2 = checkout(); // must not observe the previous contents
        assert!(g2.out.is_empty());
    }

    #[test]
    fn take_out_hands_over_ownership() {
        let mut g = checkout();
        g.out.push_str("abc");
        let owned = g.take_out();
        assert_eq!(owned, "abc");
        assert!(g.out.is_empty());
        drop(g); // returns an empty buffer — still a clean pool entry
        assert!(checkout().out.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    fn reset_poisons_spare_capacity() {
        let mut s = EnvelopeScratch::with_default_capacity();
        s.out.push_str("sensitive previous envelope");
        s.reset();
        assert!(s.out.is_empty());
        unsafe {
            let v = s.out.as_mut_vec();
            let spare = std::slice::from_raw_parts(v.as_ptr(), v.capacity());
            assert!(spare.iter().all(|&b| b == POISON));
        }
        s.assert_poisoned();
    }
}
