//! RPC-style wrapping, including the paper's echo operation.
//!
//! The evaluation (§4.3) uses a ping-like echo operation whose serialized
//! SOAP message is ~263 bytes of XML (483 bytes with the HTTP header).
//! [`paper_echo_request`] reproduces that exact on-the-wire size so the
//! simulated experiments move the same number of bytes the paper did.

use wsd_xml::Element;

use crate::envelope::{Body, Envelope};
use crate::version::SoapVersion;
use crate::SoapError;

/// Namespace of the test echo service.
pub const ECHO_NS: &str = "urn:wsd:echo";

/// The serialized size of the paper's test XML message, in bytes (§4.3).
pub const PAPER_XML_BYTES: usize = 263;

/// The serialized size of the paper's HTTP header, in bytes (§4.3).
pub const PAPER_HTTP_HEADER_BYTES: usize = 220;

/// An RPC-style call: operation element in the service namespace, one
/// child element per parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcCall {
    /// Service namespace the operation element lives in.
    pub namespace: String,
    /// Operation (element local) name.
    pub operation: String,
    /// `(name, value)` parameters in order.
    pub params: Vec<(String, String)>,
}

impl RpcCall {
    /// A call with no parameters yet.
    pub fn new(namespace: impl Into<String>, operation: impl Into<String>) -> Self {
        RpcCall {
            namespace: namespace.into(),
            operation: operation.into(),
            params: Vec::new(),
        }
    }

    /// Appends a parameter. Returns `self` for chaining.
    pub fn with_param(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.push((name.into(), value.into()));
        self
    }

    /// Value of the first parameter with this name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Wraps the call in an envelope.
    pub fn to_envelope(&self, version: SoapVersion) -> Envelope {
        let mut op = Element::new_ns(Some("m"), &self.operation, &self.namespace)
            .declare_namespace(Some("m"), &self.namespace);
        for (name, value) in &self.params {
            op = op.with_child(Element::new(name).with_text(value));
        }
        Envelope::request(version, op)
    }

    /// Interprets an envelope's body as an RPC call.
    pub fn from_envelope(env: &Envelope) -> Result<RpcCall, SoapError> {
        let payload = match &env.body {
            Body::Payload(p) => p,
            Body::Fault(_) => return Err(SoapError::BadRpc("body is a fault, not a call")),
        };
        let op = payload
            .first()
            .ok_or(SoapError::BadRpc("empty body"))?;
        let namespace = op
            .namespace
            .clone()
            .ok_or(SoapError::BadRpc("operation element has no namespace"))?;
        let params = op
            .child_elements()
            .map(|c| (c.name.local.clone(), c.text()))
            .collect();
        Ok(RpcCall {
            namespace,
            operation: op.name.local.clone(),
            params,
        })
    }

    /// Builds the conventional `<operation>Response` envelope carrying one
    /// `<return>` element.
    pub fn response(&self, version: SoapVersion, return_value: &str) -> Envelope {
        let op = Element::new_ns(
            Some("m"),
            format!("{}Response", self.operation),
            &self.namespace,
        )
        .declare_namespace(Some("m"), &self.namespace)
        .with_child(Element::new("return").with_text(return_value));
        Envelope::request(version, op)
    }
}

/// Extracts the `<return>` value from an RPC response envelope.
pub fn parse_response(env: &Envelope) -> Result<String, SoapError> {
    let payload = env
        .payload()
        .ok_or(SoapError::BadRpc("response is a fault"))?;
    let op = payload
        .first()
        .ok_or(SoapError::BadRpc("empty response body"))?;
    if !op.name.local.ends_with("Response") {
        return Err(SoapError::BadRpc("not a Response element"));
    }
    Ok(op
        .find_child(None, "return")
        .map(|r| r.text())
        .unwrap_or_default())
}

/// Builds an echo request carrying `text`.
pub fn echo_request(version: SoapVersion, text: &str) -> Envelope {
    RpcCall::new(ECHO_NS, "echo")
        .with_param("text", text)
        .to_envelope(version)
}

/// Extracts the text of an echo request.
pub fn parse_echo(env: &Envelope) -> Result<String, SoapError> {
    let call = RpcCall::from_envelope(env)?;
    if call.namespace != ECHO_NS || call.operation != "echo" {
        return Err(SoapError::BadRpc("not an echo call"));
    }
    Ok(call.param("text").unwrap_or_default().to_string())
}

/// Builds the echo response for `text`.
pub fn echo_response(version: SoapVersion, text: &str) -> Envelope {
    RpcCall::new(ECHO_NS, "echo").response(version, text)
}

/// Extracts the echoed text of an echo response.
pub fn parse_echo_response(env: &Envelope) -> Result<String, SoapError> {
    parse_response(env)
}

/// The paper's test message: a SOAP 1.1 echo request padded so the
/// serialized XML is exactly [`PAPER_XML_BYTES`] long.
pub fn paper_echo_request() -> Envelope {
    let base = echo_request(SoapVersion::V11, "").to_xml().len();
    let pad = PAPER_XML_BYTES.saturating_sub(base);
    echo_request(SoapVersion::V11, &"x".repeat(pad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_round_trips() {
        let call = RpcCall::new("urn:svc", "add")
            .with_param("a", "2")
            .with_param("b", "3");
        let env = call.to_envelope(SoapVersion::V11);
        let parsed = RpcCall::from_envelope(&Envelope::parse(&env.to_xml()).unwrap()).unwrap();
        assert_eq!(parsed, call);
    }

    #[test]
    fn response_round_trips() {
        let call = RpcCall::new("urn:svc", "add");
        let env = call.response(SoapVersion::V12, "5");
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(parse_response(&parsed).unwrap(), "5");
    }

    #[test]
    fn echo_request_and_response_round_trip() {
        for v in [SoapVersion::V11, SoapVersion::V12] {
            let req = echo_request(v, "hello");
            assert_eq!(
                parse_echo(&Envelope::parse(&req.to_xml()).unwrap()).unwrap(),
                "hello"
            );
            let resp = echo_response(v, "hello");
            assert_eq!(
                parse_echo_response(&Envelope::parse(&resp.to_xml()).unwrap()).unwrap(),
                "hello"
            );
        }
    }

    #[test]
    fn non_echo_call_rejected_by_parse_echo() {
        let env = RpcCall::new("urn:other", "ping").to_envelope(SoapVersion::V11);
        assert!(parse_echo(&env).is_err());
    }

    #[test]
    fn fault_body_rejected_as_call() {
        let env = Envelope::fault(
            SoapVersion::V11,
            crate::Fault::new(crate::FaultCode::Receiver, "x"),
        );
        assert!(RpcCall::from_envelope(&env).is_err());
        assert!(parse_response(&env).is_err());
    }

    #[test]
    fn empty_body_rejected() {
        let env = Envelope {
            version: SoapVersion::V11,
            headers: vec![],
            body: Body::Payload(vec![]),
        };
        assert!(matches!(
            RpcCall::from_envelope(&env),
            Err(SoapError::BadRpc("empty body"))
        ));
    }

    #[test]
    fn paper_message_is_exactly_263_bytes() {
        let xml = paper_echo_request().to_xml();
        assert_eq!(xml.len(), PAPER_XML_BYTES, "{xml}");
        // And it still parses as a valid echo call.
        let parsed = Envelope::parse(&xml).unwrap();
        assert!(parse_echo(&parsed).is_ok());
    }

    #[test]
    fn paper_total_size_matches_483_bytes() {
        assert_eq!(PAPER_XML_BYTES + PAPER_HTTP_HEADER_BYTES, 483);
    }

    #[test]
    fn response_missing_suffix_rejected() {
        let env = RpcCall::new("urn:svc", "add").to_envelope(SoapVersion::V11);
        assert!(parse_response(&env).is_err());
    }
}
