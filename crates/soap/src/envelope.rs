//! The SOAP envelope: Header / Body wrapping and unwrapping.

use wsd_xml::{Document, Element, Node};

use crate::fault::Fault;
use crate::version::SoapVersion;
use crate::SoapError;

/// Body content: either application payload elements or a fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// Application payload: the body's child elements in order.
    Payload(Vec<Element>),
    /// A SOAP fault.
    Fault(Fault),
}

/// A SOAP message: version, header blocks and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// SOAP version this envelope was built or parsed as.
    pub version: SoapVersion,
    /// Header blocks in order (the `Header` wrapper itself is implicit).
    pub headers: Vec<Element>,
    /// Body content.
    pub body: Body,
}

impl Envelope {
    /// An envelope wrapping one payload element.
    pub fn request(version: SoapVersion, payload: Element) -> Self {
        Envelope {
            version,
            headers: Vec::new(),
            body: Body::Payload(vec![payload]),
        }
    }

    /// An envelope carrying a fault.
    pub fn fault(version: SoapVersion, fault: Fault) -> Self {
        Envelope {
            version,
            headers: Vec::new(),
            body: Body::Fault(fault),
        }
    }

    /// Appends a header block. Returns `self` for chaining.
    pub fn with_header(mut self, header: Element) -> Self {
        self.headers.push(header);
        self
    }

    /// First header block matching `(namespace, local)`.
    pub fn find_header(&self, namespace: Option<&str>, local: &str) -> Option<&Element> {
        self.headers.iter().find(|h| h.is(namespace, local))
    }

    /// Removes all header blocks matching `(namespace, local)`; returns how
    /// many were removed.
    pub fn remove_headers(&mut self, namespace: Option<&str>, local: &str) -> usize {
        let before = self.headers.len();
        self.headers.retain(|h| !h.is(namespace, local));
        before - self.headers.len()
    }

    /// The payload elements, or `None` if the body is a fault.
    pub fn payload(&self) -> Option<&[Element]> {
        match &self.body {
            Body::Payload(p) => Some(p),
            Body::Fault(_) => None,
        }
    }

    /// The fault, if the body carries one.
    pub fn as_fault(&self) -> Option<&Fault> {
        match &self.body {
            Body::Fault(f) => Some(f),
            Body::Payload(_) => None,
        }
    }

    /// Header blocks flagged `mustUnderstand` for this version.
    pub fn must_understand_headers(&self) -> Vec<&Element> {
        let ns = self.version.envelope_ns();
        self.headers
            .iter()
            .filter(|h| {
                h.attr_ns(Some(ns), "mustUnderstand")
                    .map(|v| self.version.must_understand_true(v))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Checks every `mustUnderstand` header against the list of
    /// `(namespace, local)` pairs the processor understands; the failure
    /// carries the first offending header's name.
    pub fn check_must_understand(
        &self,
        understood: &[(&str, &str)],
    ) -> Result<(), SoapError> {
        for h in self.must_understand_headers() {
            let ok = understood.iter().any(|(ns, local)| {
                h.namespace.as_deref() == Some(*ns) && h.name.local == *local
            });
            if !ok {
                return Err(SoapError::MustUnderstand(format!(
                    "{{{}}}{}",
                    h.namespace.as_deref().unwrap_or(""),
                    h.name.local
                )));
            }
        }
        Ok(())
    }

    /// Parses an envelope from XML text.
    pub fn parse(text: &str) -> Result<Envelope, SoapError> {
        let doc = Document::parse(text)?;
        Self::from_document(&doc)
    }

    /// Interprets a parsed document as an envelope.
    pub fn from_document(doc: &Document) -> Result<Envelope, SoapError> {
        let root = &doc.root;
        let version = root
            .namespace
            .as_deref()
            .and_then(SoapVersion::from_envelope_ns)
            .filter(|_| root.name.local == "Envelope")
            .ok_or(SoapError::NotAnEnvelope)?;
        let ns = version.envelope_ns();
        let headers = root
            .find_child(Some(ns), "Header")
            .map(|h| h.child_elements().cloned().collect())
            .unwrap_or_default();
        let body_el = root
            .find_child(Some(ns), "Body")
            .ok_or(SoapError::MissingBody)?;
        let body = match body_el
            .child_elements()
            .find(|e| e.is(Some(ns), "Fault"))
        {
            Some(fault_el) => Body::Fault(Fault::from_element(version, fault_el)?),
            None => Body::Payload(body_el.child_elements().cloned().collect()),
        };
        Ok(Envelope {
            version,
            headers,
            body,
        })
    }

    /// Builds the full `<Envelope>` element tree.
    pub fn to_element(&self) -> Element {
        let ns = self.version.envelope_ns();
        let prefix = self.version.prefix();
        let mut env = Element::new_ns(Some(prefix), "Envelope", ns)
            .declare_namespace(Some(prefix), ns);
        if !self.headers.is_empty() {
            let mut header = Element::new_ns(Some(prefix), "Header", ns);
            for h in &self.headers {
                header.children.push(Node::Element(h.clone()));
            }
            env.children.push(Node::Element(header));
        }
        let mut body = Element::new_ns(Some(prefix), "Body", ns);
        match &self.body {
            Body::Payload(parts) => {
                for p in parts {
                    body.children.push(Node::Element(p.clone()));
                }
            }
            Body::Fault(f) => body
                .children
                .push(Node::Element(f.to_element(self.version))),
        }
        env.children.push(Node::Element(body));
        env
    }

    /// Serializes the envelope to XML text (no XML declaration, as is
    /// conventional for SOAP-over-HTTP payloads).
    pub fn to_xml(&self) -> String {
        wsd_xml::write_element(&self.to_element())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultCode;

    fn payload() -> Element {
        Element::new_ns(Some("m"), "echo", "urn:wsd:echo")
            .declare_namespace(Some("m"), "urn:wsd:echo")
            .with_child(Element::new("text").with_text("hello"))
    }

    #[test]
    fn round_trip_both_versions() {
        for v in [SoapVersion::V11, SoapVersion::V12] {
            let env = Envelope::request(v, payload());
            let parsed = Envelope::parse(&env.to_xml()).unwrap();
            assert_eq!(parsed, env, "{v}");
        }
    }

    #[test]
    fn headers_round_trip() {
        let header = Element::new_ns(Some("wsa"), "To", "urn:wsa")
            .declare_namespace(Some("wsa"), "urn:wsa")
            .with_text("http://example.org/svc");
        let env = Envelope::request(SoapVersion::V11, payload()).with_header(header.clone());
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(parsed.headers, vec![header]);
        assert!(parsed.find_header(Some("urn:wsa"), "To").is_some());
    }

    #[test]
    fn no_header_element_when_headers_empty() {
        let env = Envelope::request(SoapVersion::V11, payload());
        assert!(!env.to_xml().contains("Header"));
    }

    #[test]
    fn missing_body_is_error() {
        let text = r#"<e:Envelope xmlns:e="http://www.w3.org/2003/05/soap-envelope"/>"#;
        assert_eq!(Envelope::parse(text), Err(SoapError::MissingBody));
    }

    #[test]
    fn wrong_root_is_not_an_envelope() {
        assert_eq!(
            Envelope::parse("<other/>"),
            Err(SoapError::NotAnEnvelope)
        );
        let wrong_ns = r#"<e:Envelope xmlns:e="urn:nope"><e:Body/></e:Envelope>"#;
        assert_eq!(Envelope::parse(wrong_ns), Err(SoapError::NotAnEnvelope));
    }

    #[test]
    fn version_detected_from_namespace() {
        for v in [SoapVersion::V11, SoapVersion::V12] {
            let env = Envelope::request(v, payload());
            assert_eq!(Envelope::parse(&env.to_xml()).unwrap().version, v);
        }
    }

    #[test]
    fn fault_body_detected() {
        let f = Fault::new(FaultCode::Receiver, "boom");
        let env = Envelope::fault(SoapVersion::V11, f.clone());
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(parsed.as_fault().unwrap().reason, "boom");
        assert!(parsed.payload().is_none());
    }

    #[test]
    fn must_understand_enforced() {
        let ns = SoapVersion::V11.envelope_ns();
        let header = Element::new_ns(Some("x"), "Security", "urn:sec")
            .declare_namespace(Some("x"), "urn:sec")
            .with_attr_ns("SOAP-ENV", "mustUnderstand", ns, "1");
        let env = Envelope::request(SoapVersion::V11, payload()).with_header(header);
        let text = env.to_xml();
        // The writer must emit the prefixed attribute; re-parse and check.
        let parsed = Envelope::parse(&text).unwrap();
        assert_eq!(parsed.must_understand_headers().len(), 1);
        assert!(parsed.check_must_understand(&[("urn:sec", "Security")]).is_ok());
        let err = parsed.check_must_understand(&[("urn:other", "Thing")]);
        assert!(matches!(err, Err(SoapError::MustUnderstand(ref s)) if s.contains("Security")));
    }

    #[test]
    fn must_understand_zero_is_not_flagged() {
        let ns = SoapVersion::V11.envelope_ns();
        let header = Element::new_ns(Some("x"), "H", "urn:x")
            .declare_namespace(Some("x"), "urn:x")
            .with_attr_ns("SOAP-ENV", "mustUnderstand", ns, "0");
        let env = Envelope::request(SoapVersion::V11, payload()).with_header(header);
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        assert!(parsed.must_understand_headers().is_empty());
    }

    #[test]
    fn remove_headers_by_name() {
        let h1 = Element::new_ns(Some("a"), "H", "urn:a").declare_namespace(Some("a"), "urn:a");
        let h2 = Element::new_ns(Some("b"), "K", "urn:b").declare_namespace(Some("b"), "urn:b");
        let mut env = Envelope::request(SoapVersion::V12, payload())
            .with_header(h1)
            .with_header(h2);
        assert_eq!(env.remove_headers(Some("urn:a"), "H"), 1);
        assert_eq!(env.headers.len(), 1);
    }

    #[test]
    fn multi_part_payload_preserved_in_order() {
        let env = Envelope {
            version: SoapVersion::V12,
            headers: vec![],
            body: Body::Payload(vec![
                Element::new("p1"),
                Element::new("p2"),
                Element::new("p3"),
            ]),
        };
        let parsed = Envelope::parse(&env.to_xml()).unwrap();
        let names: Vec<_> = parsed
            .payload()
            .unwrap()
            .iter()
            .map(|e| e.name.local.clone())
            .collect();
        assert_eq!(names, vec!["p1", "p2", "p3"]);
    }
}
