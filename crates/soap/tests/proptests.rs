//! Property-based invariants for envelope handling.

use proptest::prelude::*;
use wsd_soap::{rpc::RpcCall, Body, Envelope, Fault, FaultCode, SoapVersion};

fn version() -> impl Strategy<Value = SoapVersion> {
    prop_oneof![Just(SoapVersion::V11), Just(SoapVersion::V12)]
}

fn rpc_call() -> impl Strategy<Value = RpcCall> {
    (
        "urn:[a-z]{1,10}",
        "[a-zA-Z_][a-zA-Z0-9]{0,10}",
        proptest::collection::vec(
            ("[a-zA-Z_][a-zA-Z0-9]{0,8}", "[^\u{0}-\u{8}\u{b}\u{c}\u{e}-\u{1f}]{0,30}"),
            0..5,
        ),
    )
        .prop_map(|(ns, op, params)| {
            let mut call = RpcCall::new(ns, op);
            let mut seen = std::collections::HashSet::new();
            for (k, v) in params {
                // Distinct param names so text round-trip is unambiguous.
                if seen.insert(k.clone()) {
                    call = call.with_param(k, v);
                }
            }
            call
        })
}

proptest! {
    /// RPC calls survive wrap → serialize → parse → unwrap in both
    /// versions.
    #[test]
    fn rpc_round_trips(call in rpc_call(), v in version()) {
        let env = call.to_envelope(v);
        let reparsed = Envelope::parse(&env.to_xml()).unwrap();
        prop_assert_eq!(reparsed.version, v);
        let got = RpcCall::from_envelope(&reparsed).unwrap();
        prop_assert_eq!(got, call);
    }

    /// Faults survive the wire in both versions (codes mapped to the
    /// version's vocabulary and back).
    #[test]
    fn fault_round_trips(
        v in version(),
        reason in "[^\u{0}-\u{8}\u{b}\u{c}\u{e}-\u{1f}]{0,60}",
        code_ix in 0usize..4,
    ) {
        let code = [
            FaultCode::VersionMismatch,
            FaultCode::MustUnderstand,
            FaultCode::Sender,
            FaultCode::Receiver,
        ][code_ix].clone();
        let env = Envelope::fault(v, Fault::new(code.clone(), reason.clone()));
        let reparsed = Envelope::parse(&env.to_xml()).unwrap();
        let f = reparsed.as_fault().unwrap();
        prop_assert_eq!(&f.code, &code);
        prop_assert_eq!(&f.reason, &reason);
    }

    /// Whatever the body, serialization always yields a parseable
    /// envelope of the same version with the same payload element count.
    #[test]
    fn envelope_structure_preserved(v in version(), n_parts in 0usize..6) {
        let parts: Vec<wsd_xml::Element> =
            (0..n_parts).map(|i| wsd_xml::Element::new(format!("part{i}"))).collect();
        let env = Envelope { version: v, headers: vec![], body: Body::Payload(parts) };
        let reparsed = Envelope::parse(&env.to_xml()).unwrap();
        prop_assert_eq!(reparsed.payload().unwrap().len(), n_parts);
    }
}
