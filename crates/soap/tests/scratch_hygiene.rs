//! Arena-hygiene regression: a returned-and-rechecked-out
//! [`wsd_soap::EnvelopeScratch`] must never leak bytes (or interned
//! QName slices spliced into it) from a previous envelope. Debug builds
//! poison-fill the spare capacity on return and assert the poison is
//! intact at checkout, so a use-after-return shows up here — loudly —
//! instead of shipping cross-envelope data.

use wsd_soap::{checkout, Fault, FaultCode, SoapVersion};

const SECRET: &str = "<Envelope>SECRET-PREVIOUS-ENVELOPE-BYTES</Envelope>";

#[test]
fn rechecked_out_scratch_never_leaks_previous_envelope() {
    // Round 1: fill a pooled buffer with a distinctive envelope, large
    // enough that its bytes occupy capacity a later, shorter write will
    // not overwrite.
    let mut g = checkout();
    for _ in 0..16 {
        g.out.push_str(SECRET);
    }
    drop(g);

    // Round 2: the buffer (or a fresh one — either must be clean) comes
    // back empty, and in debug builds its entire spare capacity is
    // poison, not envelope bytes.
    let mut g = checkout();
    assert!(g.out.is_empty(), "checkout must hand out an empty buffer");
    #[cfg(debug_assertions)]
    {
        // SAFETY: reset() initialized every capacity byte with POISON
        // before the buffer entered the pool; len stays 0 here.
        let spare = unsafe {
            std::slice::from_raw_parts(g.out.as_ptr(), g.out.capacity())
        };
        assert!(
            spare.iter().all(|&b| b == wsd_soap::scratch::POISON),
            "spare capacity still holds previous-envelope bytes"
        );
    }

    // Round 3: a shorter write into the recycled buffer must yield
    // exactly its own bytes — nothing of the previous envelope.
    g.out.push_str("<a/>");
    let owned = g.take_out();
    assert_eq!(owned, "<a/>");
    assert!(!owned.contains("SECRET"));
}

#[test]
fn raw_fault_bytes_do_not_leak_across_checkouts() {
    // Write a fault with a distinctive reason through the raw byte path.
    let mut g = checkout();
    Fault::push_fault_envelope(
        SoapVersion::V11,
        &FaultCode::Receiver,
        "first-checkout-reason",
        &mut g.out,
    );
    assert!(g.out.contains("first-checkout-reason"));
    drop(g);

    // The next fault, shorter, must not contain a byte of the first.
    let mut g = checkout();
    Fault::push_fault_envelope(SoapVersion::V12, &FaultCode::Sender, "x", &mut g.out);
    assert!(!g.out.contains("first-checkout-reason"));
    let xml = g.take_out();
    // And it is still a well-formed fault envelope on its own.
    let env = wsd_soap::Envelope::parse(&xml).expect("fault envelope parses");
    assert!(env.to_xml().contains("x"));
}

#[test]
fn interleaved_checkouts_are_independent() {
    let mut a = checkout();
    let mut b = checkout();
    a.out.push_str("<alpha/>");
    b.out.push_str("<beta/>");
    assert_eq!(&*a.out, "<alpha/>");
    assert_eq!(&*b.out, "<beta/>");
    drop(a);
    drop(b);
    // Whatever order the pool recycles them in, both come back clean.
    let c = checkout();
    let d = checkout();
    assert!(c.out.is_empty() && d.out.is_empty());
}
