//! Property-based invariants for the HTTP layer.

use proptest::prelude::*;
use wsd_http::{
    parse_request_bytes, parse_response_bytes, request_bytes, response_bytes, Headers, Method,
    Request, Response, Status, Version,
};

fn header_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,15}"
}

fn header_value() -> impl Strategy<Value = String> {
    // No CR/LF or leading/trailing whitespace (values are trimmed on parse).
    "[\\x21-\\x7e]( ?[\\x21-\\x7e]){0,30}"
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        prop_oneof![Just(Method::Get), Just(Method::Post)],
        "/[a-z0-9/._-]{0,30}",
        prop_oneof![Just(Version::V10), Just(Version::V11)],
        proptest::collection::vec((header_name(), header_value()), 0..8),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(method, target, version, hdrs, body)| {
            let mut headers = Headers::new();
            let mut seen = std::collections::HashSet::new();
            for (n, v) in hdrs {
                let key = n.to_ascii_lowercase();
                if key == "content-length" || !seen.insert(key) {
                    continue;
                }
                headers.set(n, v);
            }
            headers.set("Content-Length", body.len().to_string());
            Request {
                method,
                target,
                version,
                headers,
                body: body.into(),
            }
        })
}

proptest! {
    /// serialize ∘ parse = id for requests.
    #[test]
    fn request_round_trips(req in request_strategy()) {
        let parsed = parse_request_bytes(&request_bytes(&req)).unwrap();
        prop_assert_eq!(parsed, req);
    }

    /// serialize ∘ parse = id for responses.
    #[test]
    fn response_round_trips(
        code in 100u16..600,
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let resp = Response::new(Status(code), "text/xml; charset=utf-8", body);
        let parsed = parse_response_bytes(&response_bytes(&resp)).unwrap();
        prop_assert_eq!(parsed, resp);
    }

    /// Declared Content-Length always equals the actual body length for
    /// constructor-built messages.
    #[test]
    fn content_length_matches_body(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let req = Request::soap_post("h", "/svc", "text/xml", body.clone());
        prop_assert_eq!(req.headers.content_length(), Some(body.len()));
        let resp = Response::new(Status::OK, "text/xml", body.clone());
        prop_assert_eq!(resp.headers.content_length(), Some(body.len()));
    }

    /// The parser never panics on arbitrary bytes.
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_request_bytes(&bytes);
        let _ = parse_response_bytes(&bytes);
    }

    /// Any prefix of a valid message either parses to the same message
    /// (full prefix) or errors — never to a different message.
    #[test]
    fn truncation_never_yields_wrong_message(req in request_strategy(), cut in 0usize..64) {
        let bytes = request_bytes(&req);
        let cut = cut.min(bytes.len());
        let prefix = &bytes[..bytes.len() - cut];
        if let Ok(parsed) = parse_request_bytes(prefix) { prop_assert_eq!(parsed, req) }
    }
}
