//! Property-based invariants for the HTTP layer.

use proptest::prelude::*;
use wsd_http::{
    parse_request_bytes, parse_response_bytes, request_bytes, response_bytes, Headers, HttpError,
    Limits, Method, Request, RequestParser, Response, Status, Version,
};

fn header_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,15}"
}

fn header_value() -> impl Strategy<Value = String> {
    // No CR/LF or leading/trailing whitespace (values are trimmed on parse).
    "[\\x21-\\x7e]( ?[\\x21-\\x7e]){0,30}"
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        prop_oneof![Just(Method::Get), Just(Method::Post)],
        "/[a-z0-9/._-]{0,30}",
        prop_oneof![Just(Version::V10), Just(Version::V11)],
        proptest::collection::vec((header_name(), header_value()), 0..8),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(method, target, version, hdrs, body)| {
            let mut headers = Headers::new();
            let mut seen = std::collections::HashSet::new();
            for (n, v) in hdrs {
                let key = n.to_ascii_lowercase();
                if key == "content-length" || !seen.insert(key) {
                    continue;
                }
                headers.set(n, v);
            }
            headers.set("Content-Length", body.len().to_string());
            Request {
                method,
                target,
                version,
                headers,
                body: body.into(),
            }
        })
}

proptest! {
    /// serialize ∘ parse = id for requests.
    #[test]
    fn request_round_trips(req in request_strategy()) {
        let parsed = parse_request_bytes(&request_bytes(&req)).unwrap();
        prop_assert_eq!(parsed, req);
    }

    /// serialize ∘ parse = id for responses.
    #[test]
    fn response_round_trips(
        code in 100u16..600,
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let resp = Response::new(Status(code), "text/xml; charset=utf-8", body);
        let parsed = parse_response_bytes(&response_bytes(&resp)).unwrap();
        prop_assert_eq!(parsed, resp);
    }

    /// Declared Content-Length always equals the actual body length for
    /// constructor-built messages.
    #[test]
    fn content_length_matches_body(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let req = Request::soap_post("h", "/svc", "text/xml", body.clone());
        prop_assert_eq!(req.headers.content_length(), Some(body.len()));
        let resp = Response::new(Status::OK, "text/xml", body.clone());
        prop_assert_eq!(resp.headers.content_length(), Some(body.len()));
    }

    /// The parser never panics on arbitrary bytes.
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_request_bytes(&bytes);
        let _ = parse_response_bytes(&bytes);
    }

    /// Any prefix of a valid message either parses to the same message
    /// (full prefix) or errors — never to a different message.
    #[test]
    fn truncation_never_yields_wrong_message(req in request_strategy(), cut in 0usize..64) {
        let bytes = request_bytes(&req);
        let cut = cut.min(bytes.len());
        let prefix = &bytes[..bytes.len() - cut];
        if let Ok(parsed) = parse_request_bytes(prefix) { prop_assert_eq!(parsed, req) }
    }
}

/// Feeds `bytes` to a fresh incremental parser in the given chunk sizes
/// and returns the first completed message or error.
fn feed_chunked(
    bytes: &[u8],
    limits: Limits,
    chunks: impl Iterator<Item = usize>,
) -> Result<Option<Request>, HttpError> {
    let mut parser = RequestParser::new(limits);
    let mut at = 0;
    for size in chunks {
        if at >= bytes.len() {
            break;
        }
        let end = (at + size.max(1)).min(bytes.len());
        match parser.feed(&bytes[at..end]) {
            Ok(Some(req)) => return Ok(Some(req)),
            Ok(None) => {}
            Err(e) => return Err(e),
        }
        at = end;
    }
    // Flush any remainder in one final chunk.
    if at < bytes.len() {
        return parser.feed(&bytes[at..]);
    }
    Ok(None)
}

/// Splits `len` bytes into chunk sizes drawn from `cuts` (cycled).
fn cycled(cuts: Vec<usize>, len: usize) -> impl Iterator<Item = usize> {
    cuts.into_iter().cycle().take(len + 1)
}

proptest! {
    /// Byte-at-a-time incremental parsing yields exactly what the
    /// whole-buffer parser yields on a valid message.
    #[test]
    fn incremental_byte_at_a_time_matches_whole_buffer(req in request_strategy()) {
        let bytes = request_bytes(&req);
        let whole = parse_request_bytes(&bytes).unwrap();
        let fed = feed_chunked(&bytes, Limits::default(), std::iter::repeat_n(1, bytes.len()))
            .unwrap()
            .expect("complete message must be produced");
        prop_assert_eq!(fed, whole);
    }

    /// Random chunking never changes the parsed message.
    #[test]
    fn incremental_random_chunks_match_whole_buffer(
        req in request_strategy(),
        cuts in proptest::collection::vec(1usize..64, 1..16),
    ) {
        let bytes = request_bytes(&req);
        let whole = parse_request_bytes(&bytes).unwrap();
        let fed = feed_chunked(&bytes, Limits::default(), cycled(cuts, bytes.len()))
            .unwrap()
            .expect("complete message must be produced");
        prop_assert_eq!(fed, whole);
    }

    /// An oversized head is rejected with `TooLarge("head")` no matter
    /// how the bytes arrive — even before the terminator shows up.
    #[test]
    fn incremental_head_limit_is_chunking_independent(
        req in request_strategy(),
        cuts in proptest::collection::vec(1usize..64, 1..16),
    ) {
        let bytes = request_bytes(&req);
        let limits = Limits { max_head: 16, ..Limits::default() };
        let byte_wise =
            feed_chunked(&bytes, limits, std::iter::repeat_n(1, bytes.len())).unwrap_err();
        let chunked = feed_chunked(&bytes, limits, cycled(cuts, bytes.len())).unwrap_err();
        prop_assert_eq!(&byte_wise, &HttpError::TooLarge("head"));
        prop_assert_eq!(&chunked, &HttpError::TooLarge("head"));
    }

    /// An oversized declared body is rejected with `TooLarge("body")` at
    /// head completion, independent of chunking.
    #[test]
    fn incremental_body_limit_is_chunking_independent(
        body_len in 9usize..256,
        cuts in proptest::collection::vec(1usize..64, 1..16),
    ) {
        let req = Request::soap_post("h", "/svc", "text/xml", vec![b'x'; body_len]);
        let bytes = request_bytes(&req);
        let limits = Limits { max_body: 8, ..Limits::default() };
        let byte_wise =
            feed_chunked(&bytes, limits, std::iter::repeat_n(1, bytes.len())).unwrap_err();
        let chunked = feed_chunked(&bytes, limits, cycled(cuts, bytes.len())).unwrap_err();
        prop_assert_eq!(&byte_wise, &HttpError::TooLarge("body"));
        prop_assert_eq!(&chunked, &HttpError::TooLarge("body"));
    }

    /// A malformed Content-Length is rejected at head completion (the
    /// reader cannot frame the body), independent of chunking.
    #[test]
    fn incremental_bad_content_length_is_chunking_independent(
        junk in "[a-z]{1,8}",
        cuts in proptest::collection::vec(1usize..64, 1..16),
    ) {
        let bytes =
            format!("POST / HTTP/1.1\r\nHost: h\r\nContent-Length: {junk}\r\n\r\n").into_bytes();
        let byte_wise = feed_chunked(&bytes, Limits::default(), std::iter::repeat_n(1, bytes.len()))
            .unwrap_err();
        let chunked = feed_chunked(&bytes, Limits::default(), cycled(cuts, bytes.len())).unwrap_err();
        prop_assert_eq!(&byte_wise, &HttpError::BadSyntax("bad Content-Length"));
        prop_assert_eq!(&chunked, &HttpError::BadSyntax("bad Content-Length"));
    }
}
