//! Message serialization: message → bytes / stream.

use std::io::Write;

use crate::message::{Request, Response};
use crate::HttpError;

/// Serialized size of a request's head (start line + headers + blank
/// line), without the body.
pub fn request_head_len(req: &Request) -> usize {
    let mut out = Vec::with_capacity(256);
    push_request_head(&mut out, req);
    out.len()
}

fn push_request_head(out: &mut Vec<u8>, req: &Request) {
    out.extend_from_slice(req.method.as_str().as_bytes());
    out.push(b' ');
    out.extend_from_slice(req.target.as_bytes());
    out.push(b' ');
    out.extend_from_slice(req.version.as_str().as_bytes());
    out.extend_from_slice(b"\r\n");
    push_headers(out, req.headers.iter());
}

fn push_response_head(out: &mut Vec<u8>, resp: &Response) {
    out.extend_from_slice(resp.version.as_str().as_bytes());
    out.push(b' ');
    out.extend_from_slice(resp.status.0.to_string().as_bytes());
    out.push(b' ');
    out.extend_from_slice(resp.status.reason().as_bytes());
    out.extend_from_slice(b"\r\n");
    push_headers(out, resp.headers.iter());
}

fn push_headers<'a>(out: &mut Vec<u8>, headers: impl Iterator<Item = (&'a str, &'a str)>) {
    for (name, value) in headers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
}

/// Serializes a full request.
pub fn request_bytes(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 + req.body.len());
    request_bytes_into(&mut out, req);
    out
}

/// Appends a full serialized request to `out` without clearing it —
/// the batched drain path serializes many requests into one reusable
/// buffer and writes them with a single flush.
pub fn request_bytes_into(out: &mut Vec<u8>, req: &Request) {
    push_request_head(out, req);
    out.extend_from_slice(&req.body);
}

/// Serializes a full response.
pub fn response_bytes(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 + resp.body.len());
    response_bytes_into(&mut out, resp);
    out
}

/// Appends a full serialized response to `out` without clearing it.
pub fn response_bytes_into(out: &mut Vec<u8>, resp: &Response) {
    push_response_head(out, resp);
    out.extend_from_slice(&resp.body);
}

/// Writes a request to a stream.
pub fn write_request(stream: &mut dyn Write, req: &Request) -> Result<(), HttpError> {
    stream.write_all(&request_bytes(req))?;
    stream.flush()?;
    Ok(())
}

/// Writes a response to a stream.
pub fn write_response(stream: &mut dyn Write, resp: &Response) -> Result<(), HttpError> {
    stream.write_all(&response_bytes(resp))?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Status, Version};

    #[test]
    fn request_wire_format() {
        let req = Request::soap_post("h.example", "/svc", "text/xml; charset=utf-8", b"<x/>".to_vec());
        let bytes = request_bytes(&req);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("POST /svc HTTP/1.1\r\n"), "{text}");
        assert!(text.contains("Host: h.example\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.ends_with("\r\n\r\n<x/>"), "{text}");
    }

    #[test]
    fn response_wire_format() {
        let resp = Response::new(Status::OK, "text/xml", b"<ok/>".to_vec());
        let text = String::from_utf8(response_bytes(&resp)).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n<ok/>"));
    }

    #[test]
    fn head_len_excludes_body() {
        let req = Request::soap_post("h", "/", "text/xml", vec![b'x'; 100]);
        assert_eq!(request_head_len(&req) + 100, request_bytes(&req).len());
    }

    #[test]
    fn http10_start_line() {
        let mut req = Request::get("h", "/");
        req.version = Version::V10;
        let text = String::from_utf8(request_bytes(&req)).unwrap();
        assert!(text.starts_with("GET / HTTP/1.0\r\n"));
    }
}
