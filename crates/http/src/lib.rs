//! Minimal HTTP/1.x for SOAP transport.
//!
//! The paper's dispatcher speaks SOAP over HTTP exclusively (XSUL's "HTTP
//! transport (client and server)" module). This crate provides the
//! matching pieces:
//!
//! * an owned message model ([`Request`], [`Response`], [`Headers`]),
//! * a parser and serializer, both for complete byte buffers (used on the
//!   simulated network, which delivers whole messages) and for blocking
//!   [`Stream`]s (used by the real-thread runtime),
//! * an incremental [`RequestParser`] plus readiness support on streams
//!   ([`ReadyStream`]: `try_read`/`try_write` and wakeup hooks), so an
//!   event-driven front end can multiplex many connections without
//!   blocking a thread per socket,
//! * an in-memory duplex pipe ([`duplex`]) so the threaded runtime can run
//!   a full client/dispatcher/service stack without real sockets,
//! * [`HttpClient`] / [`serve_connection`] helpers with HTTP/1.0-1.1
//!   keep-alive semantics.
//!
//! Only what SOAP needs is implemented: `Content-Length` framing (no
//! chunked encoding), no compression, UTF-8 bodies.

#![warn(missing_docs)]

pub mod conn;
pub mod incremental;
pub mod message;
pub mod parse;
pub mod serialize;
pub mod stream;

pub use bytes::Bytes;
pub use conn::{serve_connection, HttpClient};
pub use incremental::RequestParser;
pub use message::{Headers, Method, Request, Response, Status, Version};
pub use parse::{parse_request_bytes, parse_response_bytes, MessageReader};
pub use serialize::{
    request_bytes, request_bytes_into, response_bytes, response_bytes_into, write_request,
    write_response,
};
pub use stream::{duplex, PipeStream, ReadyStream, ShutdownHandle, Stream, WakeHook};

/// Errors raised by HTTP parsing and I/O.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying transport failure.
    Io(std::io::Error),
    /// Malformed start line or header.
    BadSyntax(&'static str),
    /// Headers or body exceeded the configured limit.
    TooLarge(&'static str),
    /// The peer closed mid-message.
    UnexpectedEof,
    /// The peer closed before sending anything (clean close between
    /// keep-alive requests).
    Closed,
}

impl PartialEq for HttpError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (HttpError::Io(a), HttpError::Io(b)) => a.kind() == b.kind(),
            (HttpError::BadSyntax(a), HttpError::BadSyntax(b)) => a == b,
            (HttpError::TooLarge(a), HttpError::TooLarge(b)) => a == b,
            (HttpError::UnexpectedEof, HttpError::UnexpectedEof) => true,
            (HttpError::Closed, HttpError::Closed) => true,
            _ => false,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "transport error: {e}"),
            HttpError::BadSyntax(m) => write!(f, "malformed HTTP message: {m}"),
            HttpError::TooLarge(m) => write!(f, "message too large: {m}"),
            HttpError::UnexpectedEof => f.write_str("connection closed mid-message"),
            HttpError::Closed => f.write_str("connection closed"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Parser limits; the defaults suit SOAP messages.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of start line + headers.
    pub max_head: usize,
    /// Maximum body bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 16 * 1024,
            max_body: 4 * 1024 * 1024,
        }
    }
}
