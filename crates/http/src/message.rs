//! Owned HTTP message model.

use bytes::Bytes;

/// HTTP protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Version {
    /// HTTP/1.0 — connections close after one exchange by default.
    V10,
    /// HTTP/1.1 — connections persist by default.
    #[default]
    V11,
}

impl Version {
    /// The start-line token.
    pub fn as_str(self) -> &'static str {
        match self {
            Version::V10 => "HTTP/1.0",
            Version::V11 => "HTTP/1.1",
        }
    }

    /// Parses a start-line token.
    pub fn parse(s: &str) -> Option<Version> {
        match s {
            "HTTP/1.0" => Some(Version::V10),
            "HTTP/1.1" => Some(Version::V11),
            _ => None,
        }
    }
}

/// Request method. SOAP uses POST; GET exists for the registry's
/// browseable WSDL listing (paper's "Yellow Pages").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Retrieve (registry browsing, liveness checks).
    Get,
    /// Submit a SOAP message.
    Post,
}

impl Method {
    /// The start-line token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }

    /// Parses a start-line token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

/// Response status code with its canonical reason phrase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    /// 200 OK.
    pub const OK: Status = Status(200);
    /// 202 Accepted — one-way message taken for forwarding.
    pub const ACCEPTED: Status = Status(202);
    /// 400 Bad Request.
    pub const BAD_REQUEST: Status = Status(400);
    /// 404 Not Found — unknown logical service or mailbox.
    pub const NOT_FOUND: Status = Status(404);
    /// 408 Request Timeout.
    pub const REQUEST_TIMEOUT: Status = Status(408);
    /// 500 Internal Server Error — SOAP fault carrier for 1.1.
    pub const INTERNAL_SERVER_ERROR: Status = Status(500);
    /// 502 Bad Gateway — forwarding to the service failed.
    pub const BAD_GATEWAY: Status = Status(502);
    /// 503 Service Unavailable — dispatcher saturated.
    pub const SERVICE_UNAVAILABLE: Status = Status(503);

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            408 => "Request Timeout",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Whether the status is 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// An ordered, case-insensitive header multimap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// An empty header set.
    pub fn new() -> Self {
        Headers::default()
    }

    /// First value for `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Sets `name`, replacing every existing occurrence.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(&name));
        self.entries.push((name, value.into()));
    }

    /// Appends a header without touching existing occurrences.
    pub fn add(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Removes every occurrence of `name`; returns whether any existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.entries.len() != before
    }

    /// All entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no headers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parsed `Content-Length`, if present and numeric.
    pub fn content_length(&self) -> Option<usize> {
        self.get("content-length")?.trim().parse().ok()
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target (origin form, e.g. `/svc/echo`).
    pub target: String,
    /// Protocol version.
    pub version: Version,
    /// Header lines.
    pub headers: Headers,
    /// Message body — cheaply clonable, shared, immutable.
    pub body: Bytes,
}

impl Request {
    /// A SOAP POST carrying `body` to `target`, with the headers the
    /// paper's client sends (Host, SOAPAction, Content-Type,
    /// Content-Length).
    pub fn soap_post(
        host: &str,
        target: &str,
        content_type: &str,
        body: impl Into<Bytes>,
    ) -> Request {
        let body = body.into();
        let mut headers = Headers::new();
        headers.set("Host", host);
        headers.set("Content-Type", content_type);
        headers.set("Content-Length", body.len().to_string());
        headers.set("SOAPAction", "\"\"");
        headers.set("User-Agent", "wsd-client/0.1");
        Request {
            method: Method::Post,
            target: target.to_string(),
            version: Version::V11,
            headers,
            body,
        }
    }

    /// A bodyless GET.
    pub fn get(host: &str, target: &str) -> Request {
        let mut headers = Headers::new();
        headers.set("Host", host);
        Request {
            method: Method::Get,
            target: target.to_string(),
            version: Version::V11,
            headers,
            body: Bytes::new(),
        }
    }

    /// Whether the connection should stay open after this exchange.
    pub fn keep_alive(&self) -> bool {
        keep_alive(self.version, self.headers.get("connection"))
    }

    /// The body as UTF-8, lossily.
    pub fn body_utf8(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }

    /// The body as UTF-8, borrowed — no copy, `None` when not UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Protocol version.
    pub version: Version,
    /// Status code.
    pub status: Status,
    /// Header lines.
    pub headers: Headers,
    /// Message body — cheaply clonable, shared, immutable.
    pub body: Bytes,
}

impl Response {
    /// A response with a body and explicit content type.
    pub fn new(status: Status, content_type: &str, body: impl Into<Bytes>) -> Response {
        let body = body.into();
        let mut headers = Headers::new();
        headers.set("Content-Type", content_type);
        headers.set("Content-Length", body.len().to_string());
        headers.set("Server", "wsd/0.1");
        Response {
            version: Version::V11,
            status,
            headers,
            body,
        }
    }

    /// An empty-bodied response.
    pub fn empty(status: Status) -> Response {
        let mut headers = Headers::new();
        headers.set("Content-Length", "0");
        headers.set("Server", "wsd/0.1");
        Response {
            version: Version::V11,
            status,
            headers,
            body: Bytes::new(),
        }
    }

    /// Whether the connection should stay open after this exchange.
    pub fn keep_alive(&self) -> bool {
        keep_alive(self.version, self.headers.get("connection"))
    }

    /// The body as UTF-8, lossily.
    pub fn body_utf8(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }

    /// The body as UTF-8, borrowed — no copy, `None` when not UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

fn keep_alive(version: Version, connection: Option<&str>) -> bool {
    match connection.map(|c| c.to_ascii_lowercase()) {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => version == Version::V11,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_are_case_insensitive() {
        let mut h = Headers::new();
        h.set("Content-Type", "text/xml");
        assert_eq!(h.get("content-type"), Some("text/xml"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/xml"));
        assert!(h.remove("CoNtEnT-tYpE"));
        assert!(h.get("content-type").is_none());
    }

    #[test]
    fn set_replaces_all_add_appends() {
        let mut h = Headers::new();
        h.add("X", "1");
        h.add("x", "2");
        assert_eq!(h.len(), 2);
        h.set("X", "3");
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("x"), Some("3"));
    }

    #[test]
    fn content_length_parses() {
        let mut h = Headers::new();
        h.set("Content-Length", " 42 ");
        assert_eq!(h.content_length(), Some(42));
        h.set("Content-Length", "nope");
        assert_eq!(h.content_length(), None);
    }

    #[test]
    fn keep_alive_defaults_per_version() {
        let mut req = Request::get("h", "/");
        assert!(req.keep_alive());
        req.version = Version::V10;
        assert!(!req.keep_alive());
        req.headers.set("Connection", "keep-alive");
        assert!(req.keep_alive());
        req.version = Version::V11;
        req.headers.set("Connection", "close");
        assert!(!req.keep_alive());
    }

    #[test]
    fn soap_post_has_framing_headers() {
        let req = Request::soap_post("svc.example", "/echo", "text/xml; charset=utf-8", vec![0; 10]);
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.headers.content_length(), Some(10));
        assert_eq!(req.headers.get("host"), Some("svc.example"));
        assert!(req.headers.get("soapaction").is_some());
    }

    #[test]
    fn status_reasons() {
        assert_eq!(Status::OK.reason(), "OK");
        assert_eq!(Status::BAD_GATEWAY.reason(), "Bad Gateway");
        assert_eq!(Status(299).reason(), "Unknown");
        assert!(Status::ACCEPTED.is_success());
        assert!(!Status::NOT_FOUND.is_success());
    }

    #[test]
    fn method_version_tokens_round_trip() {
        for m in [Method::Get, Method::Post] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        for v in [Version::V10, Version::V11] {
            assert_eq!(Version::parse(v.as_str()), Some(v));
        }
        assert_eq!(Method::parse("BREW"), None);
        assert_eq!(Version::parse("HTTP/2"), None);
    }
}
