//! Message parsing, from complete buffers (simulated network) or from
//! blocking streams (threaded runtime).

use crate::message::{Headers, Method, Request, Response, Status, Version};
use crate::stream::Stream;
use crate::{HttpError, Limits};

/// Parses one complete request from a buffer that contains exactly one
/// message (what the simulated network delivers).
pub fn parse_request_bytes(bytes: &[u8]) -> Result<Request, HttpError> {
    let (head, body_start) = split_head(bytes)?;
    let mut lines = head.split("\r\n");
    let start = lines.next().ok_or(HttpError::BadSyntax("empty head"))?;
    let mut parts = start.split(' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or(HttpError::BadSyntax("bad method"))?;
    let target = parts
        .next()
        .filter(|t| !t.is_empty())
        .ok_or(HttpError::BadSyntax("missing target"))?
        .to_string();
    let version = parts
        .next()
        .and_then(Version::parse)
        .ok_or(HttpError::BadSyntax("bad version"))?;
    if parts.next().is_some() {
        return Err(HttpError::BadSyntax("extra tokens in start line"));
    }
    let headers = parse_headers(lines)?;
    let body = read_body(bytes, body_start, &headers)?;
    Ok(Request {
        method,
        target,
        version,
        headers,
        body,
    })
}

/// Parses one complete response from a buffer.
pub fn parse_response_bytes(bytes: &[u8]) -> Result<Response, HttpError> {
    let (head, body_start) = split_head(bytes)?;
    let mut lines = head.split("\r\n");
    let start = lines.next().ok_or(HttpError::BadSyntax("empty head"))?;
    let mut parts = start.splitn(3, ' ');
    let version = parts
        .next()
        .and_then(Version::parse)
        .ok_or(HttpError::BadSyntax("bad version"))?;
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .map(Status)
        .ok_or(HttpError::BadSyntax("bad status code"))?;
    // The reason phrase is ignored; the code is canonical.
    let headers = parse_headers(lines)?;
    let body = read_body(bytes, body_start, &headers)?;
    Ok(Response {
        version,
        status,
        headers,
        body,
    })
}

fn split_head(bytes: &[u8]) -> Result<(&str, usize), HttpError> {
    let end = find_head_end(bytes).ok_or(HttpError::UnexpectedEof)?;
    let head =
        std::str::from_utf8(&bytes[..end]).map_err(|_| HttpError::BadSyntax("head not UTF-8"))?;
    Ok((head, end + 4))
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    wsd_xml::swar::find_seq(bytes, b"\r\n\r\n")
}

/// [`find_head_end`] resuming at `from` — used by the incremental reader
/// so bytes already scanned on a previous fill are not rescanned.
fn find_head_end_from(bytes: &[u8], from: usize) -> Option<usize> {
    wsd_xml::swar::find_seq(bytes.get(from..)?, b"\r\n\r\n").map(|i| i + from)
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Headers, HttpError> {
    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadSyntax("header line without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadSyntax("bad header name"));
        }
        headers.add(name, value.trim());
    }
    Ok(headers)
}

fn read_body(
    bytes: &[u8],
    body_start: usize,
    headers: &Headers,
) -> Result<bytes::Bytes, HttpError> {
    let len = headers.content_length().unwrap_or(0);
    let available = bytes.len().saturating_sub(body_start);
    if available < len {
        return Err(HttpError::UnexpectedEof);
    }
    Ok(bytes[body_start..body_start + len].to_vec().into())
}

/// A buffered reader that pulls complete messages off a [`Stream`],
/// preserving any bytes that belong to the next keep-alive message.
pub struct MessageReader<S: Stream> {
    stream: S,
    buf: Vec<u8>,
    /// Bytes before this offset are consumed messages. Advancing a
    /// cursor instead of `drain`-ing the front keeps a pipelined batch
    /// from being memmoved once per message it contains (O(batch²)
    /// bytes shifted — the drain-batch-16 cliff in BENCH_hotpath.json).
    pos: usize,
}

impl<S: Stream> MessageReader<S> {
    /// Wraps a stream.
    pub fn new(stream: S) -> Self {
        MessageReader {
            stream,
            buf: Vec::with_capacity(1024),
            pos: 0,
        }
    }

    /// The underlying stream (for writing replies and setting timeouts).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Consumes the reader, returning the stream. Buffered bytes are
    /// discarded.
    pub fn into_stream(self) -> S {
        self.stream
    }

    fn fill(&mut self) -> Result<usize, HttpError> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Reads until the buffer holds one complete message (head + declared
    /// body), then hands its bytes to `parse`.
    fn read_message<T>(
        &mut self,
        limits: &Limits,
        parse: impl Fn(&[u8]) -> Result<T, HttpError>,
    ) -> Result<T, HttpError> {
        // 1. Accumulate the head. Each fill resumes the terminator scan
        // where the last one stopped (minus 3 bytes, for a `\r\n\r\n`
        // torn across the chunk boundary) instead of rescanning the
        // whole buffer.
        let mut scan_from = 0usize;
        let head_end = loop {
            if let Some(end) = find_head_end_from(&self.buf[self.pos..], scan_from) {
                // The completed head must itself respect the limit: a
                // large read chunk must not smuggle in an oversized head
                // that a byte-at-a-time arrival would have rejected.
                if end + 4 > limits.max_head {
                    return Err(HttpError::TooLarge("head"));
                }
                break end + 4;
            }
            if self.buf.len() - self.pos > limits.max_head {
                return Err(HttpError::TooLarge("head"));
            }
            scan_from = (self.buf.len() - self.pos).saturating_sub(3);
            if self.fill()? == 0 {
                return if self.buf.len() == self.pos {
                    Err(HttpError::Closed)
                } else {
                    Err(HttpError::UnexpectedEof)
                };
            }
        };
        // 2. Find the declared body length (cheap scan of the head).
        let head = std::str::from_utf8(&self.buf[self.pos..self.pos + head_end - 4])
            .map_err(|_| HttpError::BadSyntax("head not UTF-8"))?;
        let mut body_len = 0usize;
        for line in head.split("\r\n").skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    body_len = value
                        .trim()
                        .parse()
                        .map_err(|_| HttpError::BadSyntax("bad Content-Length"))?;
                }
            }
        }
        if body_len > limits.max_body {
            return Err(HttpError::TooLarge("body"));
        }
        // 3. Accumulate the body.
        let total = head_end + body_len;
        while self.buf.len() - self.pos < total {
            if self.fill()? == 0 {
                return Err(HttpError::UnexpectedEof);
            }
        }
        // 4. Parse and retain any bytes of the next message: advance the
        // cursor past this one, reclaiming the buffer only when it is
        // fully consumed (free) or the dead prefix outgrows the live
        // tail (one bounded memmove per reclaim, amortized O(1)/byte).
        let result = parse(&self.buf[self.pos..self.pos + total]);
        self.pos += total;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 && self.pos > self.buf.len() - self.pos {
            self.buf.copy_within(self.pos.., 0);
            self.buf.truncate(self.buf.len() - self.pos);
            self.pos = 0;
        }
        result
    }

    /// Whether the buffer already holds one complete message (head plus
    /// declared body) — i.e. whether the next `read_*` call can succeed
    /// without touching the stream. Malformed buffered heads report
    /// `true`: the subsequent read errors out instead of blocking.
    ///
    /// Servers use this to keep serving pipelined requests from the
    /// buffer and only flush batched responses before a read that would
    /// actually block.
    pub fn has_buffered_message(&self) -> bool {
        let buf = &self.buf[self.pos..];
        let Some(end) = find_head_end(buf) else {
            return false;
        };
        let Ok(head) = std::str::from_utf8(&buf[..end]) else {
            return true; // read_* will reject it without blocking
        };
        let mut body_len = 0usize;
        for line in head.split("\r\n").skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    match value.trim().parse() {
                        Ok(n) => body_len = n,
                        Err(_) => return true, // ditto: immediate BadSyntax
                    }
                }
            }
        }
        buf.len() >= end + 4 + body_len
    }

    /// Reads one request.
    pub fn read_request(&mut self, limits: &Limits) -> Result<Request, HttpError> {
        self.read_message(limits, parse_request_bytes)
    }

    /// Reads one response.
    pub fn read_response(&mut self, limits: &Limits) -> Result<Response, HttpError> {
        self.read_message(limits, parse_response_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::{request_bytes, response_bytes};
    use crate::stream::duplex;
    use std::io::Write;

    #[test]
    fn request_bytes_round_trip() {
        let req = Request::soap_post("h", "/svc/echo", "text/xml; charset=utf-8", b"<e/>".to_vec());
        let parsed = parse_request_bytes(&request_bytes(&req)).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn response_bytes_round_trip() {
        let resp = Response::new(Status::OK, "text/xml", b"<r/>".to_vec());
        let parsed = parse_response_bytes(&response_bytes(&resp)).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn truncated_body_is_eof() {
        let req = Request::soap_post("h", "/", "text/xml", b"full body".to_vec());
        let bytes = request_bytes(&req);
        let cut = &bytes[..bytes.len() - 3];
        assert_eq!(parse_request_bytes(cut), Err(HttpError::UnexpectedEof));
    }

    #[test]
    fn missing_head_terminator_is_eof() {
        assert_eq!(
            parse_request_bytes(b"POST / HTTP/1.1\r\nHost: h\r\n"),
            Err(HttpError::UnexpectedEof)
        );
    }

    #[test]
    fn bad_start_lines_rejected() {
        assert!(matches!(
            parse_request_bytes(b"BREW / HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadSyntax(_))
        ));
        assert!(matches!(
            parse_request_bytes(b"POST / HTTP/9.9\r\n\r\n"),
            Err(HttpError::BadSyntax(_))
        ));
        assert!(matches!(
            parse_response_bytes(b"HTTP/1.1 abc OK\r\n\r\n"),
            Err(HttpError::BadSyntax(_))
        ));
    }

    #[test]
    fn header_without_colon_rejected() {
        assert!(matches!(
            parse_request_bytes(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::BadSyntax(_))
        ));
    }

    #[test]
    fn reason_phrase_with_spaces_ok() {
        let resp = parse_response_bytes(b"HTTP/1.1 500 Internal Server Error\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert_eq!(resp.status, Status::INTERNAL_SERVER_ERROR);
    }

    #[test]
    fn reader_handles_pipelined_messages() {
        let (mut client, server) = duplex(4096);
        let r1 = Request::soap_post("h", "/a", "text/xml", b"one".to_vec());
        let r2 = Request::soap_post("h", "/b", "text/xml", b"two!".to_vec());
        let mut bytes = request_bytes(&r1);
        bytes.extend_from_slice(&request_bytes(&r2));
        client.write_all(&bytes).unwrap();
        let mut reader = MessageReader::new(server);
        let limits = Limits::default();
        assert_eq!(reader.read_request(&limits).unwrap(), r1);
        assert_eq!(reader.read_request(&limits).unwrap(), r2);
    }

    #[test]
    fn reader_reports_clean_close_between_messages() {
        let (client, server) = duplex(64);
        drop(client);
        let mut reader = MessageReader::new(server);
        assert_eq!(
            reader.read_request(&Limits::default()),
            Err(HttpError::Closed)
        );
    }

    #[test]
    fn reader_reports_mid_message_close() {
        let (mut client, server) = duplex(64);
        client.write_all(b"POST / HTTP/1.1\r\n").unwrap();
        drop(client);
        let mut reader = MessageReader::new(server);
        assert_eq!(
            reader.read_request(&Limits::default()),
            Err(HttpError::UnexpectedEof)
        );
    }

    #[test]
    fn reader_enforces_head_limit() {
        let (mut client, server) = duplex(1 << 20);
        let mut big = b"GET / HTTP/1.1\r\n".to_vec();
        big.extend(std::iter::repeat_n(b'a', 64 * 1024));
        client.write_all(&big).unwrap();
        let mut reader = MessageReader::new(server);
        assert_eq!(
            reader.read_request(&Limits::default()),
            Err(HttpError::TooLarge("head"))
        );
    }

    #[test]
    fn reader_enforces_body_limit() {
        let (mut client, server) = duplex(4096);
        client
            .write_all(b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
            .unwrap();
        let mut reader = MessageReader::new(server);
        assert_eq!(
            reader.read_request(&Limits::default()),
            Err(HttpError::TooLarge("body"))
        );
    }

    #[test]
    fn body_with_binary_content_survives() {
        let mut req = Request::soap_post("h", "/", "application/octet-stream", vec![]);
        req.body = (0..=255u8).collect::<Vec<u8>>().into();
        req.headers.set("Content-Length", req.body.len().to_string());
        let parsed = parse_request_bytes(&request_bytes(&req)).unwrap();
        assert_eq!(parsed.body, req.body);
    }
}
