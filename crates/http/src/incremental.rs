//! Incremental request parsing for event-driven front ends.
//!
//! A reactor reads whatever bytes a connection has ready and must park
//! the partial message until more arrive — it cannot block in
//! [`crate::MessageReader`]'s fill loop. [`RequestParser`] is the
//! push-style equivalent: feed it arbitrary chunks, get complete
//! [`Request`]s out. [`Limits`] are enforced *progressively* — an
//! oversized head or declared body is rejected as soon as it is
//! detectable, not after the bytes have been buffered — and a completed
//! message is handed to [`parse_request_bytes`], so accepted requests are
//! exactly what the blocking reader would have produced.

use crate::message::Request;
use crate::parse::parse_request_bytes;
use crate::{HttpError, Limits};

/// Where the parser is in the current message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Accumulating start line + headers, scanning for `\r\n\r\n`.
    Head,
    /// Head complete: `head_end` bytes of head (terminator included),
    /// `body_len` declared body bytes still expected in full.
    Body { head_end: usize, body_len: usize },
}

/// A push-style HTTP/1.x request parser.
///
/// ```
/// use wsd_http::{Limits, RequestParser};
///
/// let mut p = RequestParser::new(Limits::default());
/// assert!(p.feed(b"POST / HTTP/1.1\r\nContent-Le").unwrap().is_none());
/// assert!(p.has_partial());
/// let req = p.feed(b"ngth: 2\r\n\r\nhi").unwrap().expect("complete");
/// assert_eq!(req.body.as_ref(), b"hi");
/// assert!(!p.has_partial());
/// ```
///
/// After an error the connection is unrecoverable (framing is lost);
/// callers must drop the stream, exactly as the blocking serve loop does.
pub struct RequestParser {
    limits: Limits,
    buf: Vec<u8>,
    phase: Phase,
    /// Resume offset for the head-terminator scan (relative to `pos`),
    /// so a byte-at-a-time feed stays linear instead of rescanning the
    /// whole head each call.
    scan_from: usize,
    /// Bytes before this offset are completed messages. A cursor instead
    /// of `drain`-ing the front keeps a pipelined batch from being
    /// memmoved once per message it contains (O(batch²) bytes shifted).
    pos: usize,
}

impl RequestParser {
    /// A parser enforcing `limits`.
    pub fn new(limits: Limits) -> Self {
        RequestParser {
            limits,
            buf: Vec::with_capacity(1024),
            phase: Phase::Head,
            scan_from: 0,
            pos: 0,
        }
    }

    /// Appends `bytes` and tries to complete one request. `Ok(None)`
    /// means "need more bytes". Call [`poll`](Self::poll) afterwards to
    /// drain further pipelined requests already buffered.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        self.buf.extend_from_slice(bytes);
        self.poll()
    }

    /// Tries to complete one request from already-buffered bytes.
    pub fn poll(&mut self) -> Result<Option<Request>, HttpError> {
        if self.phase == Phase::Head && !self.try_finish_head()? {
            return Ok(None);
        }
        let Phase::Body { head_end, body_len } = self.phase else {
            unreachable!("head completed above")
        };
        let total = head_end + body_len;
        if self.buf.len() - self.pos < total {
            return Ok(None);
        }
        let req = parse_request_bytes(&self.buf[self.pos..self.pos + total])?;
        self.pos += total;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 && self.pos > self.buf.len() - self.pos {
            self.buf.copy_within(self.pos.., 0);
            self.buf.truncate(self.buf.len() - self.pos);
            self.pos = 0;
        }
        self.phase = Phase::Head;
        self.scan_from = 0;
        Ok(Some(req))
    }

    /// Scans for the head terminator; on success parses `Content-Length`
    /// and advances to [`Phase::Body`]. Returns whether the head is
    /// complete. Limit violations surface exactly like the blocking
    /// reader's: oversized head while the terminator is missing,
    /// oversized declared body as soon as the head closes.
    fn try_finish_head(&mut self) -> Result<bool, HttpError> {
        let from = self.scan_from.saturating_sub(3);
        let live = self.buf.len() - self.pos;
        let Some(at) = wsd_xml::swar::find_seq(&self.buf[self.pos + from..], b"\r\n\r\n") else {
            if live > self.limits.max_head {
                return Err(HttpError::TooLarge("head"));
            }
            self.scan_from = live;
            return Ok(false);
        };
        let head_end = from + at + 4;
        // Same rule as the blocking reader: a completed head over the
        // limit is rejected even when it arrived in one large chunk, so
        // acceptance is independent of how the bytes were chunked.
        if head_end > self.limits.max_head {
            return Err(HttpError::TooLarge("head"));
        }
        let head = std::str::from_utf8(&self.buf[self.pos..self.pos + head_end - 4])
            .map_err(|_| HttpError::BadSyntax("head not UTF-8"))?;
        let mut body_len = 0usize;
        for line in head.split("\r\n").skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    body_len = value
                        .trim()
                        .parse()
                        .map_err(|_| HttpError::BadSyntax("bad Content-Length"))?;
                }
            }
        }
        if body_len > self.limits.max_body {
            return Err(HttpError::TooLarge("body"));
        }
        self.phase = Phase::Body { head_end, body_len };
        Ok(true)
    }

    /// Whether a partially-received message is parked in the buffer.
    pub fn has_partial(&self) -> bool {
        self.buf.len() > self.pos
    }

    /// Bytes currently buffered (partial message + pipelined surplus).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl std::fmt::Debug for RequestParser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestParser")
            .field("buffered", &(self.buf.len() - self.pos))
            .field("phase", &self.phase)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::request_bytes;

    fn sample(body: &str) -> Vec<u8> {
        request_bytes(&Request::soap_post(
            "h",
            "/svc",
            "text/xml",
            body.as_bytes().to_vec(),
        ))
    }

    #[test]
    fn whole_buffer_matches_batch_parser() {
        let bytes = sample("<env>payload</env>");
        let expected = parse_request_bytes(&bytes).unwrap();
        let mut p = RequestParser::new(Limits::default());
        assert_eq!(p.feed(&bytes).unwrap().unwrap(), expected);
        assert!(!p.has_partial());
    }

    #[test]
    fn byte_at_a_time_matches_batch_parser() {
        let bytes = sample("drip-fed");
        let expected = parse_request_bytes(&bytes).unwrap();
        let mut p = RequestParser::new(Limits::default());
        let mut got = None;
        for (i, b) in bytes.iter().enumerate() {
            match p.feed(std::slice::from_ref(b)).unwrap() {
                Some(req) => {
                    assert_eq!(i, bytes.len() - 1, "complete only on the last byte");
                    got = Some(req);
                }
                None => assert!(p.has_partial()),
            }
        }
        assert_eq!(got.unwrap(), expected);
    }

    #[test]
    fn pipelined_messages_drain_with_poll() {
        let mut bytes = sample("one");
        bytes.extend_from_slice(&sample("two!"));
        let mut p = RequestParser::new(Limits::default());
        let first = p.feed(&bytes).unwrap().unwrap();
        assert_eq!(first.body.as_ref(), b"one");
        let second = p.poll().unwrap().unwrap();
        assert_eq!(second.body.as_ref(), b"two!");
        assert!(p.poll().unwrap().is_none());
        assert!(!p.has_partial());
    }

    #[test]
    fn head_limit_enforced_before_terminator() {
        let limits = Limits {
            max_head: 64,
            ..Limits::default()
        };
        let mut p = RequestParser::new(limits);
        let mut err = None;
        for _ in 0..40 {
            match p.feed(b"X-Pad: aaaa\r\n") {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err, Some(HttpError::TooLarge("head")));
    }

    #[test]
    fn body_limit_enforced_at_head_completion() {
        let limits = Limits {
            max_body: 8,
            ..Limits::default()
        };
        let mut p = RequestParser::new(limits);
        // The declared length alone trips the limit: no body bytes sent.
        let err = p
            .feed(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n")
            .unwrap_err();
        assert_eq!(err, HttpError::TooLarge("body"));
    }

    #[test]
    fn bad_content_length_rejected() {
        let mut p = RequestParser::new(Limits::default());
        let err = p
            .feed(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
            .unwrap_err();
        assert_eq!(err, HttpError::BadSyntax("bad Content-Length"));
    }

    #[test]
    fn split_terminator_across_feeds_is_found() {
        let mut p = RequestParser::new(Limits::default());
        assert!(p.feed(b"GET / HTTP/1.1\r\n").unwrap().is_none());
        assert!(p.feed(b"\r").unwrap().is_none());
        let req = p.feed(b"\n").unwrap().unwrap();
        assert_eq!(req.target, "/");
    }
}
