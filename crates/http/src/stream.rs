//! Blocking byte-stream abstraction and an in-memory duplex pipe.
//!
//! The threaded runtime runs the whole client → dispatcher → service stack
//! inside one process; [`duplex`] provides the connecting "sockets":
//! two [`PipeStream`] halves with blocking reads, bounded buffering
//! (back-pressure like a TCP window), EOF on close, and read timeouts.

use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// A blocking, bidirectional byte stream (what a `TcpStream` is).
pub trait Stream: Read + Write + Send {
    /// Sets the read timeout; `None` blocks forever.
    fn set_read_timeout(&mut self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(())
    }
}

impl Stream for std::net::TcpStream {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        std::net::TcpStream::set_read_timeout(self, timeout)
    }
}

/// A readiness callback: invoked whenever a stream *may* have become
/// readable (data arrived or the peer closed). Hooks must be cheap and
/// non-blocking — they run on the writer's thread.
pub type WakeHook = Arc<dyn Fn() + Send + Sync>;

/// A [`Stream`] that additionally supports non-blocking reads/writes and
/// (optionally) readiness wakeups — what a reactor front end multiplexes.
///
/// `try_read`/`try_write` return `ErrorKind::WouldBlock` when the
/// operation cannot make progress. Streams that cannot deliver wakeups
/// (e.g. a plain `TcpStream` without an OS poller) report
/// `supports_wakeup() == false` and are polled on a fallback tick.
pub trait ReadyStream: Stream {
    /// Non-blocking read: `Ok(0)` is EOF, `WouldBlock` means no data yet.
    fn try_read(&mut self, out: &mut [u8]) -> io::Result<usize>;

    /// Non-blocking write: `WouldBlock` means the peer's window is full.
    fn try_write(&mut self, data: &[u8]) -> io::Result<usize>;

    /// Installs (or clears) the hook invoked on read-readiness changes.
    fn set_read_wakeup(&mut self, hook: Option<WakeHook>);

    /// Whether [`set_read_wakeup`](Self::set_read_wakeup) hooks actually
    /// fire; when `false` the owner must poll.
    fn supports_wakeup(&self) -> bool {
        true
    }
}

/// Passthrough for real sockets: readiness is emulated by toggling the
/// socket's non-blocking flag around each call. No wakeup support — a
/// reactor owning `TcpStream`s falls back to tick polling.
impl ReadyStream for std::net::TcpStream {
    fn try_read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        self.set_nonblocking(true)?;
        let r = self.read(out);
        let _ = self.set_nonblocking(false);
        r
    }

    fn try_write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.set_nonblocking(true)?;
        let r = self.write(data);
        let _ = self.set_nonblocking(false);
        r
    }

    fn set_read_wakeup(&mut self, _hook: Option<WakeHook>) {}

    fn supports_wakeup(&self) -> bool {
        false
    }
}

struct PipeBuf {
    /// Buffered bytes live at `data[start..]`: a flat `Vec` with a
    /// consumed prefix instead of a ring buffer, so both endpoints move
    /// bytes with bulk `copy_from_slice`/`extend_from_slice` (a deque's
    /// per-byte push/pop dominated drain profiles at envelope sizes).
    data: Vec<u8>,
    start: usize,
    closed: bool,
    capacity: usize,
}

impl PipeBuf {
    fn buffered(&self) -> usize {
        self.data.len() - self.start
    }

    /// Bulk-copies up to `out.len()` buffered bytes into `out`; resets
    /// the buffer once fully consumed so the allocation is reused.
    fn read_into(&mut self, out: &mut [u8]) -> usize {
        let n = out.len().min(self.buffered());
        out[..n].copy_from_slice(&self.data[self.start..self.start + n]);
        self.start += n;
        if self.start == self.data.len() {
            self.data.clear();
            self.start = 0;
        }
        n
    }

    /// Bulk-appends as much of `data` as the window allows, reclaiming
    /// the consumed prefix first when appending would grow the `Vec`
    /// beyond the window size (keeps memory bounded by ~capacity).
    fn write_from(&mut self, data: &[u8]) -> usize {
        let free = self.capacity.saturating_sub(self.buffered());
        let n = free.min(data.len());
        if self.start > 0 && self.data.len() + n > self.capacity {
            self.data.copy_within(self.start.., 0);
            let kept = self.data.len() - self.start;
            self.data.truncate(kept);
            self.start = 0;
        }
        self.data.extend_from_slice(&data[..n]);
        n
    }
}

struct PipeHalfShared {
    buf: Mutex<PipeBuf>,
    readable: Condvar,
    writable: Condvar,
    /// Read-readiness hook for this half's consumer; fired after data is
    /// pushed or the half is closed (mirrors the `readable` condvar).
    waker: Mutex<Option<WakeHook>>,
}

impl PipeHalfShared {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(PipeHalfShared {
            buf: Mutex::new(PipeBuf {
                data: Vec::new(),
                start: 0,
                closed: false,
                capacity,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            waker: Mutex::new(None),
        })
    }

    fn wake(&self) {
        let hook = self.waker.lock().clone();
        if let Some(hook) = hook {
            hook();
        }
    }

    fn close(&self) {
        self.buf.lock().closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
        self.wake();
    }
}

/// One endpoint of an in-memory duplex connection.
///
/// Dropping a `PipeStream` closes both directions, which the peer observes
/// as EOF (read) and `BrokenPipe` (write) — the same signals a closed TCP
/// socket gives.
pub struct PipeStream {
    incoming: Arc<PipeHalfShared>,
    outgoing: Arc<PipeHalfShared>,
    read_timeout: Option<Duration>,
}

/// Creates a connected pair of in-memory streams with `capacity` bytes of
/// buffering per direction.
pub fn duplex(capacity: usize) -> (PipeStream, PipeStream) {
    let a_to_b = PipeHalfShared::new(capacity.max(1));
    let b_to_a = PipeHalfShared::new(capacity.max(1));
    (
        PipeStream {
            incoming: Arc::clone(&b_to_a),
            outgoing: Arc::clone(&a_to_b),
            read_timeout: None,
        },
        PipeStream {
            incoming: a_to_b,
            outgoing: b_to_a,
            read_timeout: None,
        },
    )
}

impl PipeStream {
    /// Closes both directions immediately (like `shutdown(SHUT_RDWR)`).
    pub fn shutdown(&self) {
        self.incoming.close();
        self.outgoing.close();
    }

    /// A handle that can close this connection from another thread —
    /// what a server uses to interrupt workers blocked in `read` during
    /// shutdown.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            incoming: Arc::clone(&self.incoming),
            outgoing: Arc::clone(&self.outgoing),
        }
    }
}

impl ReadyStream for PipeStream {
    fn try_read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut buf = self.incoming.buf.lock();
        if buf.buffered() > 0 {
            let n = buf.read_into(out);
            drop(buf);
            self.incoming.writable.notify_all();
            return Ok(n);
        }
        if buf.closed {
            return Ok(0); // EOF
        }
        Err(io::Error::new(io::ErrorKind::WouldBlock, "no data buffered"))
    }

    fn try_write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut buf = self.outgoing.buf.lock();
        if buf.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer closed the connection",
            ));
        }
        if buf.capacity.saturating_sub(buf.buffered()) == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "pipe full"));
        }
        let n = buf.write_from(data);
        drop(buf);
        self.outgoing.readable.notify_all();
        self.outgoing.wake();
        Ok(n)
    }

    fn set_read_wakeup(&mut self, hook: Option<WakeHook>) {
        *self.incoming.waker.lock() = hook;
    }
}

/// Remote-close handle for a [`PipeStream`] (see
/// [`PipeStream::shutdown_handle`]).
#[derive(Clone)]
pub struct ShutdownHandle {
    incoming: Arc<PipeHalfShared>,
    outgoing: Arc<PipeHalfShared>,
}

impl ShutdownHandle {
    /// Closes both directions; blocked reads see EOF, writes fail.
    pub fn shutdown(&self) {
        self.incoming.close();
        self.outgoing.close();
    }
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ShutdownHandle")
    }
}

impl Read for PipeStream {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        // wsd-lint: allow(raw-clock): blocking-read timeout needs a monotonic Instant deadline for the park below; no simulated time crosses this boundary
        let deadline = self.read_timeout.map(|t| Instant::now() + t);
        let mut buf = self.incoming.buf.lock();
        loop {
            if buf.buffered() > 0 {
                let n = buf.read_into(out);
                drop(buf);
                self.incoming.writable.notify_all();
                return Ok(n);
            }
            if buf.closed {
                return Ok(0); // EOF
            }
            match deadline {
                Some(d) => {
                    if self.incoming.readable.wait_until(&mut buf, d).timed_out() {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "read timed out"));
                    }
                }
                None => self.incoming.readable.wait(&mut buf),
            }
        }
    }
}

impl Write for PipeStream {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut buf = self.outgoing.buf.lock();
        loop {
            if buf.closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "peer closed the connection",
                ));
            }
            if buf.capacity.saturating_sub(buf.buffered()) > 0 {
                let n = buf.write_from(data);
                drop(buf);
                self.outgoing.readable.notify_all();
                self.outgoing.wake();
                return Ok(n);
            }
            self.outgoing.writable.wait(&mut buf);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Stream for PipeStream {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_timeout = timeout;
        Ok(())
    }
}

impl Drop for PipeStream {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for PipeStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PipeStream")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bytes_flow_both_ways() {
        let (mut a, mut b) = duplex(64);
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn drop_gives_peer_eof() {
        let (a, mut b) = duplex(8);
        drop(a);
        let mut buf = [0u8; 1];
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn write_after_peer_close_is_broken_pipe() {
        let (a, mut b) = duplex(8);
        drop(a);
        let err = b.write(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn buffered_data_still_readable_after_close() {
        let (mut a, mut b) = duplex(8);
        a.write_all(b"tail").unwrap();
        drop(a);
        let mut buf = Vec::new();
        b.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"tail");
    }

    #[test]
    fn small_capacity_applies_backpressure() {
        let (mut a, mut b) = duplex(2);
        let writer = thread::spawn(move || {
            a.write_all(b"abcdef").unwrap();
            a
        });
        thread::sleep(Duration::from_millis(20));
        let mut got = [0u8; 6];
        b.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"abcdef");
        writer.join().unwrap();
    }

    #[test]
    fn read_timeout_fires() {
        let (_a, mut b) = duplex(8);
        b.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
        let err = b.read(&mut [0u8; 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn try_read_would_block_until_data() {
        let (mut a, mut b) = duplex(8);
        let mut buf = [0u8; 4];
        assert_eq!(
            b.try_read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        a.write_all(b"hi").unwrap();
        assert_eq!(b.try_read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"hi");
        drop(a);
        assert_eq!(b.try_read(&mut buf).unwrap(), 0); // EOF
    }

    #[test]
    fn try_write_would_block_when_full() {
        let (mut a, mut b) = duplex(2);
        assert_eq!(a.try_write(b"abc").unwrap(), 2);
        assert_eq!(
            a.try_write(b"c").unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        let mut got = [0u8; 2];
        b.read_exact(&mut got).unwrap();
        assert_eq!(a.try_write(b"c").unwrap(), 1);
    }

    #[test]
    fn wake_hook_fires_on_write_and_close() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (mut a, mut b) = duplex(64);
        let wakes = Arc::new(AtomicUsize::new(0));
        let wakes2 = Arc::clone(&wakes);
        b.set_read_wakeup(Some(Arc::new(move || {
            wakes2.fetch_add(1, Ordering::SeqCst);
        })));
        a.write_all(b"x").unwrap();
        assert_eq!(wakes.load(Ordering::SeqCst), 1);
        a.write_all(b"y").unwrap();
        assert_eq!(wakes.load(Ordering::SeqCst), 2);
        drop(a); // close wakes the reader too
        assert!(wakes.load(Ordering::SeqCst) >= 3);
        // Clearing the hook stops notifications.
        b.set_read_wakeup(None);
    }

    #[test]
    fn blocked_read_wakes_on_write() {
        let (mut a, mut b) = duplex(8);
        let reader = thread::spawn(move || {
            let mut buf = [0u8; 2];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        thread::sleep(Duration::from_millis(10));
        a.write_all(b"ok").unwrap();
        assert_eq!(&reader.join().unwrap(), b"ok");
    }
}
