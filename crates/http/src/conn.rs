//! Connection helpers: a keep-alive client and a serve loop.

use std::time::Duration;

use crate::message::{Request, Response};
use crate::parse::MessageReader;
use crate::serialize::response_bytes_into;
use crate::stream::Stream;
use crate::{HttpError, Limits};

/// A client-side HTTP connection: send a request, read the response,
/// optionally reuse the connection (keep-alive).
pub struct HttpClient<S: Stream> {
    reader: MessageReader<S>,
    limits: Limits,
    /// Set once either side signals `Connection: close`.
    exhausted: bool,
}

impl<S: Stream> HttpClient<S> {
    /// Wraps a connected stream.
    pub fn new(stream: S) -> Self {
        HttpClient {
            reader: MessageReader::new(stream),
            limits: Limits::default(),
            exhausted: false,
        }
    }

    /// Overrides parser limits.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the response read timeout (the paper's HTTP/TCP timeout that
    /// dooms slow RPC responses).
    pub fn set_response_timeout(&mut self, timeout: Option<Duration>) -> Result<(), HttpError> {
        self.reader.stream_mut().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Whether the connection can carry another exchange.
    pub fn reusable(&self) -> bool {
        !self.exhausted
    }

    /// Performs one request/response exchange.
    pub fn call(&mut self, req: &Request) -> Result<Response, HttpError> {
        if self.exhausted {
            return Err(HttpError::Closed);
        }
        crate::serialize::write_request(self.reader.stream_mut(), req)?;
        let resp = self.reader.read_response(&self.limits)?;
        if !req.keep_alive() || !resp.keep_alive() {
            self.exhausted = true;
        }
        Ok(resp)
    }

    /// Performs a batch of exchanges over the kept-open connection: every
    /// request is serialized into `buf` (the caller's reusable buffer) and
    /// written with a single flush, then the responses are read back in
    /// order (HTTP/1.1 pipelining). Returns the responses, one per
    /// request; any transport error mid-batch fails the whole call.
    pub fn call_pipelined<'a>(
        &mut self,
        reqs: impl IntoIterator<Item = &'a Request>,
        buf: &mut Vec<u8>,
    ) -> Result<Vec<Response>, HttpError> {
        if self.exhausted {
            return Err(HttpError::Closed);
        }
        buf.clear();
        let mut keep = true;
        let mut n = 0usize;
        for req in reqs {
            crate::serialize::request_bytes_into(buf, req);
            keep &= req.keep_alive();
            n += 1;
        }
        if n == 0 {
            return Ok(Vec::new()); // wsd-lint: allow(alloc-in-drain): empty Vec::new never touches the allocator
        }
        self.reader.stream_mut().write_all(buf)?;
        self.reader.stream_mut().flush()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let resp = self.reader.read_response(&self.limits)?;
            keep &= resp.keep_alive();
            out.push(resp);
        }
        if !keep {
            self.exhausted = true;
        }
        Ok(out)
    }

    /// Sends a request without waiting for any response (one-way
    /// messaging; the MSG-Dispatcher acknowledges with `202 Accepted`
    /// which the caller may read later or ignore).
    pub fn send_only(&mut self, req: &Request) -> Result<(), HttpError> {
        if self.exhausted {
            return Err(HttpError::Closed);
        }
        crate::serialize::write_request(self.reader.stream_mut(), req)?;
        Ok(())
    }

    /// Reads one response (pairs with [`send_only`](Self::send_only)).
    pub fn read_response(&mut self) -> Result<Response, HttpError> {
        self.reader.read_response(&self.limits)
    }
}

/// Serves one connection: reads requests, calls `handler`, writes
/// responses, until the connection closes, keep-alive ends, or the handler
/// returns a response with `Connection: close`.
///
/// Returns the number of exchanges served, or the error that ended the
/// loop (a clean close between messages is `Ok`).
pub fn serve_connection<S: Stream>(
    stream: S,
    limits: &Limits,
    mut handler: impl FnMut(Request) -> Response,
) -> Result<usize, HttpError> {
    let mut reader = MessageReader::new(stream);
    let mut served = 0usize;
    // Responses to pipelined requests accumulate here and go out in one
    // write: a 16-message batch costs one stream write (and one peer
    // wakeup) instead of sixteen.
    let mut pending: Vec<u8> = Vec::with_capacity(1024);
    loop {
        // Flush batched responses only when the next read would actually
        // block — while complete requests sit in the buffer, keep
        // serving. (Deadlock-free: the peer waiting on a response always
        // sees the flush before this side blocks on its next request.)
        if !pending.is_empty() && !reader.has_buffered_message() {
            reader.stream_mut().write_all(&pending)?;
            reader.stream_mut().flush()?;
            pending.clear();
        }
        let req = match reader.read_request(limits) {
            Ok(req) => req,
            Err(HttpError::Closed) => return Ok(served),
            Err(e) => return Err(e),
        };
        let client_keep_alive = req.keep_alive();
        let resp = handler(req);
        let resp_keep_alive = resp.keep_alive();
        response_bytes_into(&mut pending, &resp);
        served += 1;
        if !client_keep_alive || !resp_keep_alive {
            reader.stream_mut().write_all(&pending)?;
            reader.stream_mut().flush()?;
            return Ok(served);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Status;
    use crate::stream::duplex;
    use std::thread;

    fn echo_handler(req: Request) -> Response {
        Response::new(Status::OK, "text/xml", req.body)
    }

    #[test]
    fn single_exchange() {
        let (client, server) = duplex(4096);
        let h = thread::spawn(move || serve_connection(server, &Limits::default(), echo_handler));
        let mut c = HttpClient::new(client);
        let mut req = Request::soap_post("h", "/", "text/xml", b"payload".to_vec());
        req.headers.set("Connection", "close");
        let resp = c.call(&req).unwrap();
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.body, b"payload");
        assert!(!c.reusable());
        assert_eq!(h.join().unwrap().unwrap(), 1);
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let (client, server) = duplex(4096);
        let h = thread::spawn(move || serve_connection(server, &Limits::default(), echo_handler));
        let mut c = HttpClient::new(client);
        for i in 0..5 {
            let req = Request::soap_post("h", "/", "text/xml", format!("m{i}").into_bytes());
            let resp = c.call(&req).unwrap();
            assert_eq!(resp.body, format!("m{i}").into_bytes());
            assert!(c.reusable());
        }
        drop(c);
        assert_eq!(h.join().unwrap().unwrap(), 5);
    }

    #[test]
    fn pipelined_batch_round_trips_in_order() {
        let (client, server) = duplex(1 << 16);
        let h = thread::spawn(move || serve_connection(server, &Limits::default(), echo_handler));
        let mut c = HttpClient::new(client);
        let reqs: Vec<Request> = (0..4)
            .map(|i| Request::soap_post("h", "/", "text/xml", format!("m{i}").into_bytes()))
            .collect();
        let mut buf = Vec::new();
        let resps = c.call_pipelined(reqs.iter(), &mut buf).unwrap();
        assert_eq!(resps.len(), 4);
        for (i, r) in resps.iter().enumerate() {
            assert_eq!(r.body, format!("m{i}").into_bytes());
        }
        assert!(c.reusable());
        // The buffer is reusable across batches; an empty batch is a no-op.
        assert_eq!(c.call_pipelined([].into_iter(), &mut buf).unwrap().len(), 0);
        let resps = c.call_pipelined(reqs.iter().take(1), &mut buf).unwrap();
        assert_eq!(resps.len(), 1);
        drop(c);
        assert_eq!(h.join().unwrap().unwrap(), 5);
    }

    #[test]
    fn response_timeout_surfaces_as_io_error() {
        let (client, _server_kept_open) = duplex(4096);
        let mut c = HttpClient::new(client);
        c.set_response_timeout(Some(Duration::from_millis(20))).unwrap();
        let req = Request::soap_post("h", "/", "text/xml", b"x".to_vec());
        // No server thread: the send succeeds, the read times out.
        match c.call(&req) {
            Err(HttpError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::TimedOut),
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn server_close_ends_keep_alive_client() {
        let (client, server) = duplex(4096);
        let h = thread::spawn(move || {
            serve_connection(server, &Limits::default(), |req| {
                let mut resp = Response::new(Status::OK, "text/xml", req.body);
                resp.headers.set("Connection", "close");
                resp
            })
        });
        let mut c = HttpClient::new(client);
        let req = Request::soap_post("h", "/", "text/xml", b"x".to_vec());
        c.call(&req).unwrap();
        assert!(!c.reusable());
        assert_eq!(c.call(&req), Err(HttpError::Closed));
        assert_eq!(h.join().unwrap().unwrap(), 1);
    }

    #[test]
    fn one_way_send_then_read_ack() {
        let (client, server) = duplex(4096);
        let h = thread::spawn(move || {
            serve_connection(server, &Limits::default(), |_req| {
                Response::empty(Status::ACCEPTED)
            })
        });
        let mut c = HttpClient::new(client);
        let mut req = Request::soap_post("h", "/msg", "text/xml", b"async".to_vec());
        req.headers.set("Connection", "close");
        c.send_only(&req).unwrap();
        let ack = c.read_response().unwrap();
        assert_eq!(ack.status, Status::ACCEPTED);
        drop(c);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_request_ends_serve_with_error() {
        let (mut client, server) = duplex(4096);
        let h = thread::spawn(move || serve_connection(server, &Limits::default(), echo_handler));
        use std::io::Write;
        client.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        drop(client);
        assert!(h.join().unwrap().is_err());
    }
}
