//! The call-graph–aware rules.
//!
//! Two rules are structural and stay hand-written:
//!
//! * `blocking-under-lock` — no call path from inside a held
//!   `OrderedMutex`/`OrderedRwLock` guard region may reach an unbounded
//!   blocking sink (condvar wait, blocking queue pop/push, socket IO,
//!   thread join). The guard's *own* condvar wait is exempt: the guard
//!   is released while parked.
//! * `static-lock-order` — acquisitions nested inside a guard region
//!   define edges `held -> acquired` in a static lock-order graph; any
//!   cycle is reported with the witness call chain of each edge. The
//!   edge set is exported ([`Edge`] via [`run`]) so the dynamic auditor
//!   (`wsd_concurrent::ordered::audit`) can be cross-checked against
//!   it.
//!
//! The remaining rules are *declarative* — rows in
//! [`crate::ruleset::Ruleset`] evaluated by three generic engines:
//!
//! * [`obligation_rule`] — "every path into a sink must have passed a
//!   satisfier first". Unsatisfied sinks propagate the obligation to
//!   callers; an entry point reached with the obligation still open is
//!   a finding. `wsa-rewrite-before-forward` and
//!   `shard-route-before-enqueue` are the built-in rows.
//! * [`arg_rule`] — "a trigger call's argument text must not contain a
//!   forbidden spelling". `limits-at-serve-site` is the built-in row.
//! * [`reach_rule`] — "no fn reachable from an entry point may contain
//!   a forbidden spelling", with edge-aware suppressions: an allow on a
//!   call-site line prunes propagation through that edge.
//!   `alloc-in-drain` is the built-in row.
//!
//! Adding another "X before Y" invariant (ROADMAP item 5's
//! `auth-before-enqueue`) is a new row in `lint-rules.toml` plus a
//! name in [`crate::rules::RULE_NAMES`] — no new analysis code.

use crate::callgraph::Graph;
use crate::rules::{Finding, FlowStep};
use crate::ruleset::{fill, ArgRule, CallPat, ObligationRule, ReachRule, Ruleset};
use crate::summaries::{
    acquire_chain, block_chain, is_guard_own_wait, region_calls, sink_desc, FileEntry, Facts,
};
use std::collections::{BTreeMap, BTreeSet};

/// One static lock-order edge: while holding `from`, `to` is acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Lock class held.
    pub from: String,
    /// Lock class acquired under it.
    pub to: String,
    /// File of the in-region call that creates the edge.
    pub file: String,
    /// Line of that call.
    pub line: usize,
    /// Human-readable call chain from the holding region to the nested
    /// acquisition.
    pub witness: String,
}

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Suppressions the reachability engines consumed as edge prunes, as
/// `(file, directive line, rule)` — feeds the `unused-suppression`
/// check.
pub type UsedAllows = BTreeSet<(String, usize, String)>;

/// Runs the interprocedural rules. Returns unfiltered findings
/// (suppressions are applied by the caller), the static lock-order edge
/// set for the dynamic cross-check, and the edge-allows that actually
/// pruned an edge.
pub fn run(
    files: &BTreeMap<String, FileEntry>,
    graph: &Graph,
    facts: &Facts,
    ruleset: &Ruleset,
) -> (Vec<Finding>, Vec<Edge>, UsedAllows) {
    let mut findings = Vec::new();
    let mut used = UsedAllows::new();
    blocking_under_lock(graph, facts, &mut findings);
    let edges = collect_lock_order_edges(graph, facts);
    static_lock_order(&edges, &mut findings);
    for (oi, rule) in ruleset.obligations.iter().enumerate() {
        obligation_rule(rule, oi, graph, facts, &mut findings);
    }
    for rule in &ruleset.arg_rules {
        arg_rule(rule, files, graph, &mut findings);
    }
    for rule in &ruleset.reach_rules {
        reach_rule(rule, files, graph, &mut findings, &mut used);
    }
    (findings, edges, used)
}

fn blocking_under_lock(graph: &Graph, facts: &Facts, findings: &mut Vec<Finding>) {
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for (fi, f) in graph.fns.iter().enumerate() {
        for region in &facts.fns[fi].regions {
            for c in region_calls(f, region) {
                if is_guard_own_wait(c, region.binding.as_ref()) {
                    continue;
                }
                let (desc, witness) = if let Some(desc) = sink_desc(c) {
                    (
                        desc.to_string(),
                        format!("{} ({}:{}) -> {desc}", f.qualified, f.file, c.line),
                    )
                } else if let Some(t) = c.callee.filter(|t| facts.fns[*t].blocks.is_some()) {
                    let bw = facts.fns[t].blocks.as_ref().unwrap();
                    (
                        format!("{} (via `{}`)", bw.desc, graph.fns[t].qualified),
                        format!(
                            "{} ({}:{}) -> {}",
                            f.qualified,
                            f.file,
                            c.line,
                            block_chain(graph, facts, t)
                        ),
                    )
                } else {
                    continue;
                };
                if seen.insert((f.file.clone(), c.line, region.class.clone())) {
                    findings.push(Finding {
                        rule: "blocking-under-lock",
                        file: f.file.clone(),
                        line: c.line,
                        excerpt: format!(
                            "{desc} while holding `{}` (acquired {}:{})",
                            region.class, f.file, region.line
                        ),
                        witness: Some(witness),
                        flow: vec![
                            FlowStep {
                                file: f.file.clone(),
                                line: region.line,
                                message: format!("guard of `{}` acquired", region.class),
                            },
                            FlowStep {
                                file: f.file.clone(),
                                line: c.line,
                                message: format!("{desc} reached while the guard is held"),
                            },
                        ],
                    });
                }
            }
        }
    }
}

fn collect_lock_order_edges(graph: &Graph, facts: &Facts) -> Vec<Edge> {
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let empty = BTreeMap::new();
    for (fi, f) in graph.fns.iter().enumerate() {
        let classes = facts.field_classes.get(&f.file).unwrap_or(&empty);
        for region in &facts.fns[fi].regions {
            for c in region_calls(f, region) {
                // Direct nested acquisition.
                let direct = (ACQUIRE_METHODS.contains(&c.name.as_str())
                    && c.args_empty
                    && c.is_method)
                    .then(|| c.receiver.rsplit('.').next().unwrap_or(""))
                    .and_then(|seg| classes.get(seg));
                if let Some(to) = direct {
                    if *to != region.class {
                        edges
                            .entry((region.class.clone(), to.clone()))
                            .or_insert_with(|| Edge {
                                from: region.class.clone(),
                                to: to.clone(),
                                file: f.file.clone(),
                                line: c.line,
                                witness: format!(
                                    "{} ({}:{}) acquires `{to}` under `{}`",
                                    f.qualified, f.file, c.line, region.class
                                ),
                            });
                    }
                    continue;
                }
                // Transitive acquisition through a resolved callee.
                let Some(t) = c.callee else { continue };
                for to in facts.fns[t].acquires.keys() {
                    if *to == region.class {
                        continue;
                    }
                    edges
                        .entry((region.class.clone(), to.clone()))
                        .or_insert_with(|| Edge {
                            from: region.class.clone(),
                            to: to.clone(),
                            file: f.file.clone(),
                            line: c.line,
                            witness: format!(
                                "{} ({}:{}) under `{}` -> {}",
                                f.qualified,
                                f.file,
                                c.line,
                                region.class,
                                acquire_chain(graph, facts, t, to)
                            ),
                        });
                }
            }
        }
    }
    edges.into_values().collect()
}

fn static_lock_order(edges: &[Edge], findings: &mut Vec<Finding>) {
    // Adjacency over classes.
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(e);
    }
    // DFS with colors; report each cycle once (keyed by its class set).
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 1 = on stack, 2 = done
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();

    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
        color: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a Edge>,
        reported: &mut BTreeSet<Vec<String>>,
        findings: &mut Vec<Finding>,
    ) {
        color.insert(node, 1);
        for e in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
            match color.get(e.to.as_str()).copied().unwrap_or(0) {
                0 => {
                    stack.push(e);
                    dfs(e.to.as_str(), adj, color, stack, reported, findings);
                    stack.pop();
                }
                1 => {
                    // Back edge: the cycle is the stack suffix from
                    // `e.to` plus this edge.
                    let mut cycle: Vec<&Edge> = Vec::new();
                    let mut collecting = false;
                    for se in stack.iter() {
                        if se.from == e.to {
                            collecting = true;
                        }
                        if collecting {
                            cycle.push(se);
                        }
                    }
                    cycle.push(e);
                    let mut key: Vec<String> =
                        cycle.iter().map(|c| c.from.clone()).collect();
                    key.sort();
                    if reported.insert(key) {
                        let path: Vec<String> = cycle
                            .iter()
                            .map(|c| c.from.clone())
                            .chain(std::iter::once(e.to.clone()))
                            .collect();
                        let witness = cycle
                            .iter()
                            .map(|c| c.witness.as_str())
                            .collect::<Vec<_>>()
                            .join("; ");
                        let flow = cycle
                            .iter()
                            .map(|c| FlowStep {
                                file: c.file.clone(),
                                line: c.line,
                                message: format!("`{}` acquired under `{}`", c.to, c.from),
                            })
                            .collect();
                        findings.push(Finding {
                            rule: "static-lock-order",
                            file: cycle[0].file.clone(),
                            line: cycle[0].line,
                            excerpt: format!(
                                "lock-order cycle: {}",
                                path.join(" -> ")
                            ),
                            witness: Some(witness),
                            flow,
                        });
                    }
                }
                _ => {}
            }
        }
        color.insert(node, 2);
    }

    let nodes: Vec<&str> = adj.keys().copied().collect();
    for n in nodes {
        if color.get(n).copied().unwrap_or(0) == 0 {
            let mut stack = Vec::new();
            dfs(n, &adj, &mut color, &mut stack, &mut reported, findings);
        }
    }
}

/// Does `g` make a satisfier-reaching call for obligation rule `oi` at
/// or before `line`?
fn satisfies_before(
    rule: &ObligationRule,
    oi: usize,
    graph: &Graph,
    facts: &Facts,
    g: usize,
    line: usize,
) -> bool {
    graph.fns[g].calls.iter().any(|c| {
        c.line <= line
            && (CallPat::any(&rule.satisfiers, c)
                || c.callee.is_some_and(|t| facts.fns[t].satisfies.contains(&oi)))
    })
}

/// The obligation-propagation engine: a sink call with no satisfier
/// earlier in the same fn demands the obligation from its callers; an
/// entry point reached with the obligation still open is a finding at
/// the original sink site.
fn obligation_rule(
    rule: &ObligationRule,
    oi: usize,
    graph: &Graph,
    facts: &Facts,
    findings: &mut Vec<Finding>,
) {
    // Obligations: fn index -> (witness chain, flow steps, origin file,
    // origin line).
    let mut demanded: BTreeMap<usize, (String, Vec<FlowStep>, String, usize)> = BTreeMap::new();
    let mut work: Vec<usize> = Vec::new();

    for (fi, f) in graph.fns.iter().enumerate() {
        if !f.file.starts_with(rule.scope.as_str()) {
            continue;
        }
        // A fn that is itself sink machinery (named like a sink)
        // operates on behalf of its caller — the obligation starts at
        // its call sites, not inside it.
        if rule.sinks.iter().any(|p| p.name == f.name) {
            continue;
        }
        for c in &f.calls {
            if !CallPat::any(&rule.sinks, c) {
                continue;
            }
            // The callee must be in-workspace sink machinery or
            // unresolved-but-method (self.enqueue(..)); free calls to
            // unrelated same-named helpers outside scope don't count.
            if !c.is_method && c.callee.is_none() {
                continue;
            }
            if satisfies_before(rule, oi, graph, facts, fi, c.line) {
                continue;
            }
            let chain = format!(
                "{} `{}` at {}:{} in {}",
                rule.sink_noun, c.name, f.file, c.line, f.qualified
            );
            let steps = vec![FlowStep {
                file: f.file.clone(),
                line: c.line,
                message: format!(
                    "{} `{}` reached in {} with the obligation open",
                    rule.sink_noun, c.name, f.qualified
                ),
            }];
            demanded
                .entry(fi)
                .or_insert((chain, steps, f.file.clone(), c.line));
            work.push(fi);
        }
    }

    let mut emitted: BTreeSet<(String, usize)> = BTreeSet::new();
    while let Some(fi) = work.pop() {
        let (chain, steps, ofile, oline) = demanded.get(&fi).cloned().unwrap();
        let callers = graph.callers_of(fi);
        if callers.is_empty() {
            // Entry point reached with the obligation open.
            if emitted.insert((ofile.clone(), oline)) {
                let f = &graph.fns[fi];
                findings.push(Finding {
                    rule: rule.name,
                    file: ofile,
                    line: oline,
                    excerpt: fill(&rule.contract, &[("fn", &f.qualified)]),
                    witness: Some(chain),
                    flow: steps,
                });
            }
            continue;
        }
        for (g, gline) in callers {
            if demanded.contains_key(&g) {
                continue; // already propagating (also breaks cycles)
            }
            if satisfies_before(rule, oi, graph, facts, g, gline) {
                continue;
            }
            let gf = &graph.fns[g];
            let chain2 = format!(
                "{} ({}:{}) -> {}",
                gf.qualified, gf.file, gline, chain
            );
            let mut steps2 = vec![FlowStep {
                file: gf.file.clone(),
                line: gline,
                message: format!("{} calls into the unsatisfied sink path", gf.qualified),
            }];
            steps2.extend(steps.iter().cloned());
            demanded.insert(g, (chain2, steps2, ofile.clone(), oline));
            work.push(g);
        }
    }
}

/// The argument-inspection engine: a trigger call whose (blanked)
/// argument text contains the forbidden spelling is a finding.
fn arg_rule(
    rule: &ArgRule,
    files: &BTreeMap<String, FileEntry>,
    graph: &Graph,
    findings: &mut Vec<Finding>,
) {
    for f in &graph.fns {
        if !rule.scopes.iter().any(|s| f.file.starts_with(s.as_str())) {
            continue;
        }
        let Some(entry) = files.get(&f.file) else {
            continue;
        };
        let code = &entry.parsed.stripped.code;
        let src_lines: Vec<&str> = entry.source.lines().collect();
        for c in &f.calls {
            if !CallPat::any(&rule.triggers, c) {
                continue;
            }
            let args = &code[c.offset..c.args_end.min(code.len())];
            if args.contains(rule.forbidden.as_str()) {
                findings.push(Finding {
                    rule: rule.name,
                    file: f.file.clone(),
                    line: c.line,
                    excerpt: src_lines
                        .get(c.line.saturating_sub(1))
                        .unwrap_or(&"")
                        .trim()
                        .to_string(),
                    witness: Some(fill(
                        &rule.witness,
                        &[
                            ("call", &c.name),
                            ("fn", &f.qualified),
                            ("file", &f.file),
                            ("line", &c.line.to_string()),
                        ],
                    )),
                    flow: Vec::new(),
                });
            }
        }
    }
}

/// The forward-reachability engine: every fn call-graph-reachable from
/// an entry point is scanned for the forbidden spellings.
///
/// Suppressions are *edge-aware*: an allow of this rule on the line of
/// a call site stops propagation through that edge — the callee's whole
/// subtree is declared outside the rule's domain for the stated reason
/// (the tree-fallback route, per-connection setup, reply translation).
/// An allow on a marker line itself silences just that line (filtered
/// by the caller, like every other interprocedural finding). Allows
/// that actually prune a reached edge are reported in `used` so the
/// `unused-suppression` check can tell armor from dead weight.
fn reach_rule(
    rule: &ReachRule,
    files: &BTreeMap<String, FileEntry>,
    graph: &Graph,
    findings: &mut Vec<Finding>,
    used: &mut UsedAllows,
) {
    // Per-file allows of this rule, as (line, is_line_comment).
    let mut allows: BTreeMap<&str, Vec<(usize, bool)>> = BTreeMap::new();
    for (path, entry) in files {
        let sups = crate::rules::active_suppressions(&entry.parsed.stripped.comments);
        let v: Vec<(usize, bool)> = sups
            .into_iter()
            .filter(|(_, _, r)| r == rule.name)
            .map(|(line, is_line, _)| (line, is_line))
            .collect();
        if !v.is_empty() {
            allows.insert(path.as_str(), v);
        }
    }
    let edge_allowed = |file: &str, call_line: usize| -> Option<usize> {
        allows.get(file).and_then(|v| {
            v.iter()
                .find(|(line, is_line)| {
                    *line == call_line || (*is_line && line + 1 == call_line)
                })
                .map(|(line, _)| *line)
        })
    };

    // Forward reachability, keeping the first-discovered witness chain
    // per fn (entry chains start at the entry's signature line).
    let mut chain: BTreeMap<usize, (String, Vec<FlowStep>)> = BTreeMap::new();
    let mut work: Vec<usize> = Vec::new();
    for (fi, f) in graph.fns.iter().enumerate() {
        if !f.file.starts_with(rule.scope.as_str()) {
            continue;
        }
        if rule.entries.contains(&f.name)
            || rule.entry_prefixes.iter().any(|p| f.name.starts_with(p.as_str()))
        {
            let steps = vec![FlowStep {
                file: f.file.clone(),
                line: f.sig_line,
                message: format!("entry point {} of the {} domain", f.qualified, rule.name),
            }];
            chain.insert(fi, (format!("{} ({}:{})", f.qualified, f.file, f.sig_line), steps));
            work.push(fi);
        }
    }
    while let Some(fi) = work.pop() {
        let (prefix, steps) = chain.get(&fi).cloned().unwrap();
        for c in &graph.fns[fi].calls {
            let Some(t) = c.callee else { continue };
            if chain.contains_key(&t) {
                continue;
            }
            if let Some(sup_line) = edge_allowed(&graph.fns[fi].file, c.line) {
                // Reasoned exit from the rule's domain.
                used.insert((graph.fns[fi].file.clone(), sup_line, rule.name.to_string()));
                continue;
            }
            let tf = &graph.fns[t];
            let mut steps2 = steps.clone();
            steps2.push(FlowStep {
                file: tf.file.clone(),
                line: c.line,
                message: format!("reached {} via this call", tf.qualified),
            });
            chain.insert(
                t,
                (format!("{prefix} -> {} ({}:{})", tf.qualified, tf.file, c.line), steps2),
            );
            work.push(t);
        }
    }

    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    for (fi, (prefix, steps)) in &chain {
        let f = &graph.fns[*fi];
        let Some(entry) = files.get(&f.file) else { continue };
        let pf = &entry.parsed;
        let Some(item) = pf.fns.get(f.local_idx) else { continue };
        let Some((bs, be)) = item.body else { continue };
        let code = &pf.stripped.code;
        let be = be.min(code.len());
        let nested = pf.nested_spans(f.local_idx);
        let starts = crate::callgraph::line_index(code);
        let src_lines: Vec<&str> = entry.source.lines().collect();
        for marker in &rule.markers {
            let mut at = bs;
            while let Some(rel) = code[at..be].find(marker.as_str()) {
                let off = at + rel;
                at = off + marker.len();
                if nested.iter().any(|(s, e)| *s <= off && off < *e) {
                    continue; // nested fn bodies are their own graph nodes
                }
                let line = crate::callgraph::line_at(&starts, off);
                if !seen.insert((f.file.clone(), line)) {
                    continue;
                }
                let mut flow = steps.clone();
                flow.push(FlowStep {
                    file: f.file.clone(),
                    line,
                    message: format!("forbidden `{}` here", marker.trim_end_matches('(')),
                });
                findings.push(Finding {
                    rule: rule.name,
                    file: f.file.clone(),
                    line,
                    excerpt: src_lines
                        .get(line.saturating_sub(1))
                        .unwrap_or(&"")
                        .trim()
                        .to_string(),
                    witness: Some(fill(
                        &rule.witness,
                        &[
                            ("marker", marker.trim_end_matches('(')),
                            ("fn", &f.qualified),
                            ("chain", prefix),
                        ],
                    )),
                    flow,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::parser::{parse, ParsedFile};
    use crate::ruleset::builtin;
    use crate::summaries::compute;

    fn run_on(files: &[(&str, &str)]) -> (Vec<Finding>, Vec<Edge>) {
        let map: BTreeMap<String, FileEntry> = files
            .iter()
            .map(|(p, s)| {
                (
                    p.to_string(),
                    FileEntry {
                        source: s.to_string(),
                        parsed: parse(s),
                    },
                )
            })
            .collect();
        let parsed: BTreeMap<String, ParsedFile> = files
            .iter()
            .map(|(p, s)| (p.to_string(), parse(s)))
            .collect();
        let mut graph = build(&parsed, &|_| false);
        let rs = builtin();
        let facts = compute(&map, &mut graph, &rs);
        let (f, e, _) = run(&map, &graph, &facts, &rs);
        (f, e)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn join_under_lock_is_found_with_witness() {
        let src = r#"
struct R { thread: OrderedMutex<Option<u8>> }
impl R {
    fn new() -> R { R { thread: OrderedMutex::new("reactor.thread", None) } }
    fn shutdown(&self) {
        if let Some(h) = self.thread.lock().take() {
            h.join();
        }
    }
}
"#;
        let (f, _) = run_on(&[("crates/x/src/reactor.rs", src)]);
        assert_eq!(rules_of(&f), vec!["blocking-under-lock"]);
        assert!(f[0].excerpt.contains("reactor.thread"));
        assert!(f[0].witness.as_ref().unwrap().contains("R::shutdown"));
    }

    #[test]
    fn hoisted_join_is_clean() {
        let src = r#"
struct R { thread: OrderedMutex<Option<u8>> }
impl R {
    fn new() -> R { R { thread: OrderedMutex::new("reactor.thread", None) } }
    fn shutdown(&self) {
        let h = self.thread.lock().take();
        if let Some(h) = h {
            h.join();
        }
    }
}
"#;
        let (f, _) = run_on(&[("crates/x/src/reactor.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn transitive_block_through_callee() {
        let src = r#"
struct S { state: OrderedMutex<u8> }
impl S {
    fn new() -> S { S { state: OrderedMutex::new("s.state", 0) } }
    fn slow(&self, sock: &mut Sock) {
        sock.read_exact(&mut [0u8; 4]);
    }
    fn f(&self, sock: &mut Sock) {
        let g = self.state.lock();
        self.slow(sock);
        drop(g);
    }
}
"#;
        let (f, _) = run_on(&[("crates/x/src/s.rs", src)]);
        assert_eq!(rules_of(&f), vec!["blocking-under-lock"]);
        let w = f[0].witness.as_ref().unwrap();
        assert!(w.contains("S::f") && w.contains("S::slow"), "{w}");
    }

    #[test]
    fn lock_order_cycle_is_reported_with_chain() {
        let src = r#"
struct D { a: OrderedMutex<u8>, b: OrderedMutex<u8> }
impl D {
    fn new() -> D {
        D { a: OrderedMutex::new("d.a", 0), b: OrderedMutex::new("d.b", 0) }
    }
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
    fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }
}
"#;
        let (f, edges) = run_on(&[("crates/x/src/d.rs", src)]);
        assert!(edges.iter().any(|e| e.from == "d.a" && e.to == "d.b"));
        assert!(edges.iter().any(|e| e.from == "d.b" && e.to == "d.a"));
        let cyc: Vec<_> = f.iter().filter(|x| x.rule == "static-lock-order").collect();
        assert_eq!(cyc.len(), 1, "{f:?}");
        assert!(cyc[0].excerpt.contains("d.a") && cyc[0].excerpt.contains("d.b"));
    }

    #[test]
    fn consistent_order_has_edges_but_no_cycle() {
        let src = r#"
struct D { a: OrderedMutex<u8>, b: OrderedMutex<u8> }
impl D {
    fn new() -> D {
        D { a: OrderedMutex::new("d.a", 0), b: OrderedMutex::new("d.b", 0) }
    }
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
}
"#;
        let (f, edges) = run_on(&[("crates/x/src/d.rs", src)]);
        assert_eq!(edges.len(), 1);
        assert!(f.iter().all(|x| x.rule != "static-lock-order"));
    }

    #[test]
    fn wsa_rewrite_in_body_satisfies() {
        let src = r#"
struct D;
impl D {
    fn route_raw(&self, env: &[u8]) { splice_forward(env); }
    fn accept(&self, env: &[u8]) {
        self.route_raw(env);
        self.enqueue(env);
    }
    fn enqueue(&self, env: &[u8]) {}
}
fn splice_forward(env: &[u8]) {}
"#;
        let (f, _) = run_on(&[("crates/core/src/rt/d.rs", src)]);
        assert!(f.iter().all(|x| x.rule != "wsa-rewrite-before-forward"), "{f:?}");
    }

    #[test]
    fn wsa_missing_rewrite_reaches_entry_point() {
        let src = r#"
struct D;
impl D {
    fn accept(&self, env: &[u8]) {
        self.enqueue(env);
    }
    fn enqueue(&self, env: &[u8]) {}
}
"#;
        let (f, _) = run_on(&[("crates/core/src/rt/d.rs", src)]);
        let w: Vec<_> = f
            .iter()
            .filter(|x| x.rule == "wsa-rewrite-before-forward")
            .collect();
        assert_eq!(w.len(), 1, "{f:?}");
        assert!(w[0].witness.as_ref().unwrap().contains("enqueue"));
        assert!(!w[0].flow.is_empty());
    }

    #[test]
    fn wsa_rewrite_in_caller_satisfies_callee_obligation() {
        let src = r#"
struct D;
impl D {
    fn ack_enqueue(&self, env: &[u8]) {
        self.enqueue(env);
    }
    fn enqueue(&self, env: &[u8]) {}
    fn accept(&self, env: &[u8]) {
        rewrite_for_forward(env);
        self.ack_enqueue(env);
    }
}
fn rewrite_for_forward(env: &[u8]) {}
"#;
        let (f, _) = run_on(&[("crates/core/src/rt/d.rs", src)]);
        assert!(f.iter().all(|x| x.rule != "wsa-rewrite-before-forward"), "{f:?}");
    }

    #[test]
    fn wsa_outside_core_is_out_of_scope() {
        let src = "struct D;\nimpl D {\n    fn f(&self) { self.enqueue(0); }\n    fn enqueue(&self, x: u8) {}\n}\n";
        let (f, _) = run_on(&[("crates/netsim/src/d.rs", src)]);
        assert!(f.iter().all(|x| x.rule != "wsa-rewrite-before-forward"));
    }

    #[test]
    fn shard_route_before_enqueue_satisfied_in_body() {
        let src = r#"
struct Hub;
impl Hub {
    fn send(&self, svc: &str, body: &str) {
        let instance = self.shard_route(svc);
        self.enqueue_fleet(instance, svc, body);
    }
    fn shard_route(&self, svc: &str) -> u32 { 0 }
    fn enqueue_fleet(&self, i: u32, svc: &str, body: &str) {}
}
"#;
        let (f, _) = run_on(&[("crates/core/src/sim/fleet.rs", src)]);
        assert!(f.iter().all(|x| x.rule != "shard-route-before-enqueue"), "{f:?}");
    }

    #[test]
    fn shard_route_missing_reaches_entry_point() {
        let src = r#"
struct Hub;
impl Hub {
    fn resend(&self, svc: &str, body: &str) {
        self.enqueue_fleet(0, svc, body);
    }
    fn enqueue_fleet(&self, i: u32, svc: &str, body: &str) {}
}
"#;
        let (f, _) = run_on(&[("crates/core/src/sim/fleet.rs", src)]);
        let r: Vec<_> = f
            .iter()
            .filter(|x| x.rule == "shard-route-before-enqueue")
            .collect();
        assert_eq!(r.len(), 1, "{f:?}");
        assert!(r[0].witness.as_ref().unwrap().contains("enqueue_fleet"));
    }

    #[test]
    fn shard_route_in_caller_satisfies_callee_obligation() {
        let src = r#"
struct Hub;
impl Hub {
    fn reroute(&self, svc: &str, body: &str) {
        self.enqueue_fleet(0, svc, body);
    }
    fn enqueue_fleet(&self, i: u32, svc: &str, body: &str) {}
    fn tick(&self, svc: &str, body: &str) {
        let instance = self.shard_route(svc);
        self.reroute(svc, body);
    }
    fn shard_route(&self, svc: &str) -> u32 { 0 }
}
"#;
        let (f, _) = run_on(&[("crates/core/src/sim/fleet.rs", src)]);
        assert!(f.iter().all(|x| x.rule != "shard-route-before-enqueue"), "{f:?}");
    }

    #[test]
    fn fleet_enqueue_outside_core_is_out_of_scope() {
        let src = "struct H;\nimpl H {\n    fn f(&self) { self.enqueue_fleet(0); }\n    fn enqueue_fleet(&self, i: u32) {}\n}\n";
        let (f, _) = run_on(&[("crates/netsim/src/h.rs", src)]);
        assert!(f.iter().all(|x| x.rule != "shard-route-before-enqueue"));
    }

    #[test]
    fn limits_default_at_serve_site_flagged() {
        let src = r#"
fn start(stream: S) {
    serve_connection(stream, &Limits::default(), |req| handle(req));
}
fn handle(req: R) {}
"#;
        let (f, _) = run_on(&[("crates/core/src/rt/registry.rs", src)]);
        let l: Vec<_> = f.iter().filter(|x| x.rule == "limits-at-serve-site").collect();
        assert_eq!(l.len(), 1, "{f:?}");
    }

    #[test]
    fn limits_threaded_is_clean_and_other_crates_unscoped() {
        let ok = r#"
fn start(stream: S, limits: &Limits) {
    serve_connection(stream, limits, |req| req);
}
"#;
        let (f, _) = run_on(&[("crates/core/src/rt/registry.rs", ok)]);
        assert!(f.iter().all(|x| x.rule != "limits-at-serve-site"));
        let elsewhere = "fn f(s: S) { serve_connection(s, &Limits::default(), |r| r); }\n";
        let (f2, _) = run_on(&[("crates/http/src/x.rs", elsewhere)]);
        assert!(f2.iter().all(|x| x.rule != "limits-at-serve-site"));
    }

    #[test]
    fn request_parser_new_with_default_flagged() {
        let src = "fn f() { let p = RequestParser::new(Limits::default()); }\n";
        let (f, _) = run_on(&[("crates/core/src/rt/front.rs", src)]);
        assert_eq!(
            f.iter().filter(|x| x.rule == "limits-at-serve-site").count(),
            1
        );
    }

    #[test]
    fn alloc_reachable_from_route_raw_is_flagged_with_chain() {
        let src = r#"
struct C;
impl C {
    fn route_raw(&self, xml: &str) { self.helper(xml); }
    fn helper(&self, xml: &str) { let s = xml.to_string(); }
}
"#;
        let (f, _) = run_on(&[("crates/core/src/msg.rs", src)]);
        let a: Vec<_> = f.iter().filter(|x| x.rule == "alloc-in-drain").collect();
        assert_eq!(a.len(), 1, "{f:?}");
        assert_eq!(a[0].line, 5);
        let w = a[0].witness.as_ref().unwrap();
        assert!(w.contains("C::route_raw") && w.contains("C::helper"), "{w}");
        assert!(a[0].flow.len() >= 2, "{:?}", a[0].flow);
    }

    #[test]
    fn alloc_in_drain_entry_itself_is_scanned() {
        let src = "struct C;\nimpl C {\n    fn drain(&self) { let s = format!(\"x\"); }\n}\n";
        let (f, _) = run_on(&[("crates/core/src/rt/d.rs", src)]);
        assert_eq!(
            f.iter().filter(|x| x.rule == "alloc-in-drain").count(),
            1,
            "{f:?}"
        );
    }

    #[test]
    fn allowed_call_edge_prunes_the_callee_subtree_and_counts_as_used() {
        let src = r#"
struct C;
impl C {
    fn route_raw(&self, xml: &str) {
        // wsd-lint: allow(alloc-in-drain): anomaly fallback, allocates by design
        self.fallback(xml);
    }
    fn fallback(&self, xml: &str) { let s = xml.to_string(); }
}
"#;
        let map: BTreeMap<String, FileEntry> = [(
            "crates/core/src/msg.rs".to_string(),
            FileEntry {
                source: src.to_string(),
                parsed: parse(src),
            },
        )]
        .into_iter()
        .collect();
        let parsed: BTreeMap<String, ParsedFile> =
            [("crates/core/src/msg.rs".to_string(), parse(src))].into_iter().collect();
        let mut graph = build(&parsed, &|_| false);
        let rs = builtin();
        let facts = compute(&map, &mut graph, &rs);
        let (f, _, used) = run(&map, &graph, &facts, &rs);
        assert!(f.iter().all(|x| x.rule != "alloc-in-drain"), "{f:?}");
        assert!(
            used.contains(&("crates/core/src/msg.rs".to_string(), 5, "alloc-in-drain".to_string())),
            "{used:?}"
        );
    }

    #[test]
    fn drain_outside_core_is_not_an_entry() {
        let src = "struct B;\nimpl B {\n    fn drain(&self) { let s = format!(\"x\"); }\n}\n";
        let (f, _) = run_on(&[("crates/http/src/buf.rs", src)]);
        assert!(f.iter().all(|x| x.rule != "alloc-in-drain"), "{f:?}");
    }
}
