//! Just-enough JSON: an escaper for report output and a parser for the
//! one shape the baseline file uses (a flat object of string → integer).
//!
//! The build is offline, so no serde; the baseline format is kept flat
//! precisely so this stays ~100 lines.

use std::collections::BTreeMap;

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a flat JSON object `{ "key": 123, ... }` into a map.
///
/// Accepts arbitrary whitespace and the standard string escapes; rejects
/// nesting, arrays, and non-integer values — the baseline never contains
/// them, and rejecting keeps hand-edited files honest.
pub fn parse_object_u64(input: &str) -> Result<BTreeMap<String, u64>, String> {
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut map = BTreeMap::new();

    fn skip_ws(chars: &[char], i: &mut usize) {
        while *i < chars.len() && chars[*i].is_whitespace() {
            *i += 1;
        }
    }

    fn parse_string(chars: &[char], i: &mut usize) -> Result<String, String> {
        if chars.get(*i) != Some(&'"') {
            return Err(format!("expected '\"' at offset {}", i));
        }
        *i += 1;
        let mut s = String::new();
        while *i < chars.len() {
            let c = chars[*i];
            *i += 1;
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let e = chars.get(*i).copied().ok_or("truncated escape")?;
                    *i += 1;
                    match e {
                        '"' => s.push('"'),
                        '\\' => s.push('\\'),
                        '/' => s.push('/'),
                        'n' => s.push('\n'),
                        'r' => s.push('\r'),
                        't' => s.push('\t'),
                        'u' => {
                            let hex: String = chars.get(*i..*i + 4).unwrap_or(&[]).iter().collect();
                            if hex.len() != 4 {
                                return Err("truncated \\u escape".into());
                            }
                            *i += 4;
                            let n = u32::from_str_radix(&hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            s.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unsupported escape \\{other}")),
                    }
                }
                c => s.push(c),
            }
        }
        Err("unterminated string".into())
    }

    skip_ws(&chars, &mut i);
    if chars.get(i) != Some(&'{') {
        return Err("baseline must be a JSON object".into());
    }
    i += 1;
    skip_ws(&chars, &mut i);
    if chars.get(i) == Some(&'}') {
        return Ok(map);
    }
    loop {
        skip_ws(&chars, &mut i);
        let key = parse_string(&chars, &mut i)?;
        skip_ws(&chars, &mut i);
        if chars.get(i) != Some(&':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        skip_ws(&chars, &mut i);
        let start = i;
        while i < chars.len() && chars[i].is_ascii_digit() {
            i += 1;
        }
        if i == start {
            return Err(format!("expected integer value for key {key:?}"));
        }
        let num: String = chars[start..i].iter().collect();
        let val: u64 = num.parse().map_err(|_| format!("bad integer {num:?}"))?;
        map.insert(key, val);
        skip_ws(&chars, &mut i);
        match chars.get(i) {
            Some(&',') => {
                i += 1;
            }
            Some(&'}') => {
                i += 1;
                skip_ws(&chars, &mut i);
                if i != chars.len() {
                    return Err("trailing content after object".into());
                }
                return Ok(map);
            }
            _ => return Err("expected ',' or '}' in object".into()),
        }
    }
}

/// Serialises a flat map as pretty JSON, keys sorted (BTreeMap order).
pub fn write_object_u64(map: &BTreeMap<String, u64>) -> String {
    if map.is_empty() {
        return "{}\n".to_string();
    }
    let mut out = String::from("{\n");
    let last = map.len() - 1;
    for (idx, (k, v)) in map.iter().enumerate() {
        out.push_str(&format!("  \"{}\": {}", escape(k), v));
        out.push_str(if idx == last { "\n" } else { ",\n" });
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("crates/a.rs|raw-clock".to_string(), 2u64);
        m.insert("with \"quote\"".to_string(), 7u64);
        let text = write_object_u64(&m);
        assert_eq!(parse_object_u64(&text).unwrap(), m);
    }

    #[test]
    fn empty_object() {
        assert!(parse_object_u64("{}").unwrap().is_empty());
        assert!(parse_object_u64("  {\n}\n").unwrap().is_empty());
        assert_eq!(write_object_u64(&BTreeMap::new()), "{}\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_object_u64("[]").is_err());
        assert!(parse_object_u64("{\"a\": }").is_err());
        assert!(parse_object_u64("{\"a\": 1} x").is_err());
        assert!(parse_object_u64("{\"a\": -1}").is_err());
    }
}
