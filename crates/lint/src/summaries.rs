//! Per-function dataflow facts over the call graph.
//!
//! For every workspace function this module computes:
//!
//! * **guard regions** — the byte spans over which an
//!   `OrderedMutex`/`OrderedRwLock` guard is held, with the lock *class*
//!   (the `&'static str` passed to the constructor) recovered from the
//!   original source,
//! * **acquires** — the transitive set of lock classes the function may
//!   acquire, each with a witness (line + callee link),
//! * **blocks** — whether the function can reach an unbounded blocking
//!   sink (condvar wait, blocking queue pop/push, socket IO, thread
//!   join, ...), with a witness chain,
//! * **satisfies** — which declarative obligation rules
//!   ([`crate::ruleset::ObligationRule`], by index) the function
//!   (transitively) satisfies by calling one of the rule's satisfier
//!   markers — e.g. a WS-Addressing forward rewrite
//!   (`rewrite_for_forward` / `splice_forward`) for
//!   `wsa-rewrite-before-forward`,
//! * **sanitizes** — which declarative taint rules
//!   ([`crate::ruleset::TaintRule`], by index) the function
//!   (transitively) sanitizes for, by calling one of the rule's
//!   sanitizers,
//! * **telemetry_stage** — whether it records a `TraceStage::` marker.
//!
//! Lock classes are tied to *fields*: `state: OrderedMutex::new("fifo_queue.state", ..)`
//! binds field `state` → class `fifo_queue.state` **within that file
//! only** (cross-file field-name collisions would otherwise invent guard
//! regions around unrelated mutexes). Fields whose *declaration* names
//! an `Ordered*` type (`shards: Vec<OrderedRwLock<..>>`) bind to the
//! file's unique class of that kind when the constructor is hidden in a
//! closure.
//!
//! Field declarations also drive a second method-resolution pass:
//! `queue: FifoQueue<Job>` lets `self.shared.queue.push(job)` resolve to
//! `FifoQueue::push` even though `push` is on the ambiguity skip-list —
//! the receiver's field type disambiguates it.

use crate::callgraph::{line_at, line_index, CallSite, Graph};
use crate::parser::ParsedFile;
use crate::ruleset::{CallPat, Ruleset};
use std::collections::{BTreeMap, BTreeSet};

/// One file handed to [`compute`]: original text + parsed items.
pub struct FileEntry {
    /// Original source text (class strings are read from here).
    pub source: String,
    /// Lexed + item-parsed view of the same text.
    pub parsed: ParsedFile,
}

/// A span over which a lock-class guard is held inside one function.
#[derive(Debug, Clone)]
pub struct GuardRegion {
    /// Lock class (`"reactor.thread"`).
    pub class: String,
    /// Guard variable for `let g = x.lock();` bindings (enables the
    /// guard-own `g.wait(..)` exemption and `drop(g)` truncation).
    pub binding: Option<String>,
    /// Byte span `[start, end)` in the blanked code.
    pub start: usize,
    /// Exclusive end of the span.
    pub end: usize,
    /// 1-based line of the acquisition.
    pub line: usize,
}

/// How a function comes to acquire a lock class.
#[derive(Debug, Clone)]
pub struct AcqWitness {
    /// Line of the direct acquisition, or of the call that leads to it.
    pub line: usize,
    /// Callee (graph index) the acquisition happens through, if not
    /// direct.
    pub via: Option<usize>,
}

/// How a function comes to block.
#[derive(Debug, Clone)]
pub struct BlockWitness {
    /// Sink description (`"condvar wait"`), stable through the chain.
    pub desc: &'static str,
    /// Line of the direct sink, or of the call that leads to it.
    pub line: usize,
    /// Callee (graph index) the block happens through, if not direct.
    pub via: Option<usize>,
}

/// Facts for one function (parallel to [`Graph::fns`]).
#[derive(Debug, Default)]
pub struct FnFacts {
    /// Guard regions opened directly in this fn's body.
    pub regions: Vec<GuardRegion>,
    /// Transitive closure: class -> witness.
    pub acquires: BTreeMap<String, AcqWitness>,
    /// Reachable unbounded blocking sink, if any.
    pub blocks: Option<BlockWitness>,
    /// Obligation rules (by index into `Ruleset::obligations`) this fn
    /// transitively satisfies by calling a satisfier marker.
    pub satisfies: BTreeSet<usize>,
    /// Taint rules (by index into `Ruleset::taint_rules`) this fn
    /// transitively sanitizes for by calling a sanitizer.
    pub sanitizes: BTreeSet<usize>,
    /// Transitively records a `TraceStage::` telemetry marker.
    pub telemetry_stage: bool,
}

/// Workspace-wide facts.
#[derive(Debug, Default)]
pub struct Facts {
    /// Parallel to `graph.fns`.
    pub fns: Vec<FnFacts>,
    /// file -> lock field -> class.
    pub field_classes: BTreeMap<String, BTreeMap<String, String>>,
    /// Every lock class seen in the workspace.
    pub classes: BTreeSet<String>,
    /// file -> field -> declared base type (wrappers like `Arc<..>`
    /// unwrapped) — drives gauge-class detection in [`crate::dataflow`].
    pub field_types: BTreeMap<String, BTreeMap<String, String>>,
}

/// Unbounded blocking sinks, by call-site shape. Bounded waits
/// (`wait_timeout`, `pop_timeout`, `try_*`) are deliberately absent.
pub fn sink_desc(c: &CallSite) -> Option<&'static str> {
    let last_seg = c.receiver.rsplit('.').next().unwrap_or("");
    match c.name.as_str() {
        "wait" => Some("unbounded condvar/latch wait"),
        "pop" if c.args_empty && c.is_method => Some("blocking queue pop"),
        "pop_batch" => Some("blocking queue pop"),
        "push" if c.is_method && last_seg == "queue" => Some("blocking queue push"),
        "recv" if c.args_empty => Some("blocking channel recv"),
        "read" | "write" if c.is_method && !c.args_empty => Some("blocking socket IO"),
        "read_exact" | "read_to_end" | "write_all" | "flush" => Some("blocking socket IO"),
        "connect" => Some("blocking connect"),
        "accept" if c.args_empty => Some("blocking accept"),
        "call" | "call_pipelined" => Some("blocking RPC call"),
        "join" if c.args_empty && c.is_method => Some("thread join"),
        "sleep" => Some("sleep"),
        _ => None,
    }
}

/// Whether a call site is the guard-own condvar wait of `binding` (the
/// guard is *released* while parked, so it is exempt inside its own
/// region).
pub fn is_guard_own_wait(c: &CallSite, binding: Option<&String>) -> bool {
    matches!(c.name.as_str(), "wait" | "wait_timeout" | "wait_until")
        && binding.is_some_and(|b| c.receiver == *b)
}

fn is_word_char(c: u8) -> bool {
    (c as char).is_alphanumeric() || c == b'_'
}

/// Word-boundary `contains`.
pub fn contains_word(hay: &str, word: &str) -> bool {
    let h = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(word) {
        let s = from + pos;
        let e = s + word.len();
        let left_ok = s == 0 || !is_word_char(h[s - 1]);
        let right_ok = e >= h.len() || !is_word_char(h[e]);
        if left_ok && right_ok {
            return true;
        }
        from = e;
    }
    false
}

/// Backscan to the statement boundary before `offset`: the byte after
/// the closest of the `boundary` characters.
fn stmt_start(code: &str, floor: usize, offset: usize, boundary: &[u8]) -> usize {
    let b = code.as_bytes();
    let mut i = offset;
    while i > floor {
        if boundary.contains(&b[i - 1]) {
            return i;
        }
        i -= 1;
    }
    floor
}

/// Matching `}` (offset, exclusive end is `+1`) of the innermost `{`
/// containing `offset` within `span`; falls back to `span.1`.
fn enclosing_block_end(code: &str, span: (usize, usize), offset: usize) -> usize {
    let b = code.as_bytes();
    let mut stack: Vec<usize> = Vec::new();
    let mut i = span.0;
    while i < span.1 {
        match b[i] {
            b'{' => stack.push(i),
            b'}' => {
                // First close at/after `offset` whose open was before
                // it is the innermost enclosing block's close.
                if let Some(open) = stack.pop() {
                    if i >= offset && open <= offset {
                        return i;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    span.1
}

/// Brace depth of `offset` relative to the start of `span`.
fn brace_depth(code: &str, span: (usize, usize), offset: usize) -> i32 {
    let b = code.as_bytes();
    let mut depth = 0i32;
    let mut i = span.0;
    while i < offset.min(span.1) {
        match b[i] {
            b'{' => depth += 1,
            b'}' => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    depth
}

/// First `{` after `from` at paren/bracket depth 0, then its matching
/// `}` — the body of an `if let`/`while let`/`match`/`for` construct.
fn construct_block_end(code: &str, from: usize, limit: usize) -> usize {
    let b = code.as_bytes();
    let mut pd = 0i32;
    let mut i = from;
    while i < limit {
        match b[i] {
            b'(' | b'[' => pd += 1,
            b')' | b']' => pd -= 1,
            b'{' if pd == 0 => {
                // Match it.
                let mut depth = 0i32;
                let mut j = i;
                while j < limit {
                    match b[j] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                return j;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return limit;
            }
            b';' if pd == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    limit
}

/// End of a statement-scoped guard: next `;`, `,`, or `{` at relative
/// depth 0, or where the enclosing block closes.
fn stmt_end(code: &str, from: usize, limit: usize) -> usize {
    let b = code.as_bytes();
    let mut pd = 0i32;
    let mut bd = 0i32;
    let mut i = from;
    while i < limit {
        match b[i] {
            b'(' | b'[' => pd += 1,
            // Clamp at 0: `from` may start *inside* enclosing parens
            // (`take(&mut *x.lock())`) — the closes that exit them must
            // not mask the statement's `;`.
            b')' | b']' => pd = (pd - 1).max(0),
            b'{' => {
                if pd == 0 {
                    return i;
                }
                bd += 1;
            }
            b'}' => {
                bd -= 1;
                if bd < 0 {
                    return i;
                }
            }
            b';' | b',' if pd == 0 && bd == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    limit
}

/// Binding ident after `let` in a statement slice (`let mut g = ...` →
/// `g`).
pub fn let_binding(slice: &str) -> Option<String> {
    let b = slice.as_bytes();
    let mut pos = None;
    let mut from = 0;
    while let Some(p) = slice[from..].find("let") {
        let s = from + p;
        let e = s + 3;
        if (s == 0 || !is_word_char(b[s - 1])) && (e >= b.len() || !is_word_char(b[e])) {
            pos = Some(e);
        }
        from = e;
    }
    let mut i = pos?;
    loop {
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        let s = i;
        while i < b.len() && is_word_char(b[i]) {
            i += 1;
        }
        if s == i {
            return None;
        }
        let word = &slice[s..i];
        if word == "mut" {
            continue;
        }
        return Some(word.to_string());
    }
}

/// Parameter names of a fn item, read from its signature text in the
/// blanked code (the item parser does not model parameters). `self`
/// and destructuring patterns are skipped — the taint engine treats
/// only plain-ident parameters as taintable entry values.
pub fn fn_params(code: &str, parsed: &ParsedFile, local_idx: usize) -> Vec<String> {
    let Some(item) = parsed.fns.get(local_idx) else {
        return Vec::new();
    };
    let starts = line_index(code);
    let sig_start = starts.get(item.sig_line.saturating_sub(1)).copied().unwrap_or(0);
    let sig_end = item.body.map(|(s, _)| s).unwrap_or(code.len()).min(code.len());
    let sig = &code[sig_start.min(sig_end)..sig_end];
    let b = sig.as_bytes();

    // The param list opens at the first `(` after `fn` that is outside
    // the generic parameter list (`fn f<F: Fn(u8)>(x: F)`).
    let mut fn_at = None;
    let mut from = 0;
    while let Some(p) = sig[from..].find("fn") {
        let s = from + p;
        let e = s + 2;
        if (s == 0 || !is_word_char(b[s - 1])) && (e >= b.len() || !is_word_char(b[e])) {
            fn_at = Some(e);
            break;
        }
        from = e;
    }
    let Some(mut i) = fn_at else { return Vec::new() };
    let mut ang = 0i32;
    let mut open = None;
    while i < b.len() {
        match b[i] {
            b'<' => ang += 1,
            b'>' => ang -= 1,
            b'(' if ang <= 0 => {
                open = Some(i);
                break;
            }
            _ => {}
        }
        i += 1;
    }
    let Some(open) = open else { return Vec::new() };
    let mut depth = 0i32;
    let mut close = sig.len();
    for (j, ch) in b.iter().enumerate().skip(open) {
        match ch {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
            _ => {}
        }
    }
    let list = &sig[open + 1..close.min(sig.len())];

    let mut out = Vec::new();
    let (mut pd, mut ad) = (0i32, 0i32);
    let mut seg_start = 0;
    let lb = list.as_bytes();
    for j in 0..=lb.len() {
        let split = j == lb.len()
            || (lb[j] == b',' && pd == 0 && ad == 0);
        if j < lb.len() {
            match lb[j] {
                b'(' | b'[' => pd += 1,
                b')' | b']' => pd -= 1,
                b'<' => ad += 1,
                b'>' => ad -= 1,
                _ => {}
            }
        }
        if !split {
            continue;
        }
        let param = list[seg_start..j].trim();
        seg_start = j + 1;
        let name_part = param.split(':').next().unwrap_or("").trim();
        let name = name_part
            .trim_start_matches('&')
            .trim()
            .trim_start_matches("mut ")
            .trim();
        if name.is_empty()
            || name == "self"
            || name == "_"
            || !name.bytes().all(is_word_char)
            || name.bytes().next().is_some_and(|c| c.is_ascii_digit())
        {
            continue;
        }
        out.push(name.to_string());
    }
    out
}

/// Strips container wrappers and returns the base type name of a field
/// declaration's type text (`Vec<OrderedRwLock<HashMap<K, V>>>` →
/// `OrderedRwLock`, `Arc<FifoQueue<Job>>` → `FifoQueue`).
fn base_type(mut s: &str) -> Option<String> {
    const WRAPPERS: &[&str] = &["Arc", "Rc", "Box", "Vec", "Option", "RefCell", "Cell"];
    loop {
        let s2 = s.trim().trim_start_matches('&').trim();
        let lt = s2.find('<');
        let head_end = lt.unwrap_or(s2.len());
        let head_full = s2[..head_end].trim();
        let head = head_full.rsplit("::").next().unwrap_or(head_full).trim();
        if head.is_empty() || !head.chars().next().is_some_and(|c| c.is_uppercase()) {
            return None;
        }
        match lt {
            Some(p) if WRAPPERS.contains(&head) => {
                // Unwrap one generic layer: inner of the matching '>'.
                let b = s2.as_bytes();
                let mut depth = 0i32;
                let mut j = p;
                while j < b.len() {
                    match b[j] {
                        b'<' => depth += 1,
                        b'>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j <= p + 1 || j > s2.len() {
                    return None;
                }
                s = &s2[p + 1..j];
            }
            _ => return Some(head.to_string()),
        }
    }
}

/// Per-file field declarations: `queue: FifoQueue<Job>,` → `queue` →
/// `FifoQueue`. Works on the blanked code line by line; expression
/// lines (containing `(`/`"`/`=`) are rejected.
fn field_type_decls(code: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for line in code.lines() {
        // Single-line structs (`struct M { shards: Vec<..> }`): look at
        // the text after the last `{`.
        let mut t = match line.rfind('{') {
            Some(p) => line[p + 1..].trim(),
            None => line.trim(),
        };
        if let Some(rest) = t.strip_prefix("pub") {
            let rest = rest.trim_start();
            t = if let Some(r2) = rest.strip_prefix('(') {
                match r2.find(')') {
                    Some(p) => r2[p + 1..].trim_start(),
                    None => continue,
                }
            } else {
                rest
            };
        }
        let b = t.as_bytes();
        let mut i = 0;
        while i < b.len() && is_word_char(b[i]) {
            i += 1;
        }
        if i == 0 {
            continue;
        }
        let name = &t[..i];
        let rest = t[i..].trim_start();
        // `name: Type` but not `name::path`.
        let Some(ty) = rest.strip_prefix(':') else {
            continue;
        };
        if ty.starts_with(':') {
            continue;
        }
        let ty = ty
            .trim()
            .trim_end_matches(',')
            .trim_end_matches(|ch: char| ch == '}' || ch.is_whitespace())
            .trim_end_matches(',')
            .trim_end_matches(')')
            .trim();
        if ty.is_empty() || ty.contains('(') || ty.contains('=') || ty.contains(';') {
            continue;
        }
        if let Some(base) = base_type(ty) {
            out.entry(name.to_string()).or_insert(base);
        }
    }
    out
}

/// Reads the class string of an `Ordered*::new("class", ..)` call from
/// the *original* source line (the string is blanked in stripped code).
/// The call's column disambiguates two constructors sharing a line:
/// the class is the first quoted string at/after the call name.
fn class_string(files: &BTreeMap<String, FileEntry>, file: &str, c: &CallSite) -> Option<String> {
    let entry = files.get(file)?;
    let code = &entry.parsed.stripped.code;
    let line_start = code[..c.offset].rfind('\n').map(|p| p + 1).unwrap_or(0);
    let col = c.offset - line_start;
    let text = entry.source.lines().nth(c.line.saturating_sub(1))?;
    // Non-ASCII earlier in the line can shift byte columns between the
    // blanked and original text; fall back to the whole line then.
    let rest = text.get(col.min(text.len())..).unwrap_or(text);
    let q1 = rest.find('"')?;
    let rest = &rest[q1 + 1..];
    let q2 = rest.find('"')?;
    Some(rest[..q2].to_string())
}

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Computes workspace facts; also runs the field-type-driven second
/// resolution pass over `graph` (mutating unresolved call sites). The
/// `ruleset` supplies the satisfier/sanitizer markers whose transitive
/// reachability becomes the `satisfies`/`sanitizes` fact sets.
pub fn compute(
    files: &BTreeMap<String, FileEntry>,
    graph: &mut Graph,
    ruleset: &Ruleset,
) -> Facts {
    let mut facts = Facts::default();

    // ---- lock classes & field types, per file -----------------------
    let mut field_types_by_file: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    // (file, kind) -> classes constructed there.
    let mut classes_by_file_kind: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();

    for f in &graph.fns {
        let Some(entry) = files.get(&f.file) else {
            continue;
        };
        let code = &entry.parsed.stripped.code;
        for c in &f.calls {
            let Some(q) = &c.qualifier else { continue };
            if c.name != "new" || (q != "OrderedMutex" && q != "OrderedRwLock") {
                continue;
            }
            let Some(class) = class_string(files, &f.file, c) else {
                continue;
            };
            facts.classes.insert(class.clone());
            classes_by_file_kind
                .entry((f.file.clone(), q.clone()))
                .or_default()
                .insert(class.clone());
            // Field binding: `field: OrderedMutex::new(..)` struct
            // literal, or `let field = OrderedMutex::new(..)`.
            let ss = stmt_start(code, 0, c.offset, b";{},(");
            let mut slice = code[ss..c.offset].trim_end();
            // Drop trailing path segments (`OrderedMutex::`).
            loop {
                let t = slice.trim_end();
                if let Some(rest) = t.strip_suffix("::") {
                    let rest = rest.trim_end();
                    let cut = rest
                        .rfind(|ch: char| !(ch.is_alphanumeric() || ch == '_'))
                        .map(|p| p + 1)
                        .unwrap_or(0);
                    slice = &rest[..cut];
                } else {
                    slice = t;
                    break;
                }
            }
            let field = if let Some(rest) = slice.strip_suffix(':') {
                let rest = rest.trim_end();
                let cut = rest
                    .rfind(|ch: char| !(ch.is_alphanumeric() || ch == '_'))
                    .map(|p| p + 1)
                    .unwrap_or(0);
                let id = &rest[cut..];
                (!id.is_empty()).then(|| id.to_string())
            } else {
                contains_word(slice, "let").then(|| let_binding(slice)).flatten()
            };
            if let Some(field) = field {
                facts
                    .field_classes
                    .entry(f.file.clone())
                    .or_default()
                    .entry(field)
                    .or_insert(class);
            }
        }
    }

    for (path, entry) in files {
        let decls = field_type_decls(&entry.parsed.stripped.code);
        // Fields *declared* as Ordered types bind to the file's unique
        // class of that kind when the constructor hid the field (e.g.
        // built inside a closure).
        for (field, ty) in &decls {
            if ty == "OrderedMutex" || ty == "OrderedRwLock" {
                let classes = classes_by_file_kind
                    .get(&(path.clone(), ty.clone()))
                    .cloned()
                    .unwrap_or_default();
                if classes.len() == 1 {
                    facts
                        .field_classes
                        .entry(path.clone())
                        .or_default()
                        .entry(field.clone())
                        .or_insert_with(|| classes.iter().next().unwrap().clone());
                }
            }
        }
        field_types_by_file.insert(path.clone(), decls);
    }

    facts.field_types = field_types_by_file.clone();

    // Globally-unique field -> type map for cross-file receivers.
    let mut global_field_types: BTreeMap<String, Option<String>> = BTreeMap::new();
    for decls in field_types_by_file.values() {
        for (field, ty) in decls {
            global_field_types
                .entry(field.clone())
                .and_modify(|v| {
                    if v.as_deref() != Some(ty) {
                        *v = None;
                    }
                })
                .or_insert_with(|| Some(ty.clone()));
        }
    }

    // ---- second resolution pass: receiver field type ----------------
    let mut methods_by_qualified: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        methods_by_qualified.entry(f.qualified.clone()).or_default().push(i);
    }
    let mut late: Vec<(usize, usize, usize)> = Vec::new();
    for (fi, f) in graph.fns.iter().enumerate() {
        let local = field_types_by_file.get(&f.file);
        for (ci, c) in f.calls.iter().enumerate() {
            if c.callee.is_some() || !c.is_method || c.receiver.is_empty() {
                continue;
            }
            let last_seg = c.receiver.rsplit('.').next().unwrap_or("");
            let ty = local
                .and_then(|m| m.get(last_seg))
                .cloned()
                .or_else(|| global_field_types.get(last_seg).cloned().flatten());
            let Some(ty) = ty else { continue };
            let key = format!("{ty}::{}", c.name);
            if let Some(v) = methods_by_qualified.get(&key) {
                if v.len() == 1 && v[0] != fi {
                    late.push((fi, ci, v[0]));
                }
            }
        }
    }
    for (fi, ci, t) in late {
        graph.fns[fi].calls[ci].callee = Some(t);
    }

    // ---- per-fn direct facts ----------------------------------------
    let empty = BTreeMap::new();
    for f in &graph.fns {
        let mut ff = FnFacts::default();
        let Some(entry) = files.get(&f.file) else {
            facts.fns.push(ff);
            continue;
        };
        let code = &entry.parsed.stripped.code;
        let classes = facts.field_classes.get(&f.file).unwrap_or(&empty);
        let span = entry.parsed.fns[f.local_idx].body.unwrap_or((0, 0));

        for c in &f.calls {
            // Guard regions from acquisitions.
            if ACQUIRE_METHODS.contains(&c.name.as_str()) && c.args_empty && c.is_method {
                let last_seg = c.receiver.rsplit('.').next().unwrap_or("");
                if let Some(class) = classes.get(last_seg) {
                    let ss = stmt_start(code, span.0, c.offset, b";{}");
                    let slice = &code[ss..c.offset];
                    let is_construct = contains_word(slice, "if")
                        && contains_word(slice, "let")
                        || contains_word(slice, "while")
                        || contains_word(slice, "match")
                        || contains_word(slice, "for");
                    let next_ch = code[c.args_end..span.1]
                        .bytes()
                        .find(|b| !(*b as char).is_whitespace());
                    let (binding, end) = if is_construct {
                        (None, construct_block_end(code, c.args_end, span.1))
                    } else if next_ch == Some(b';') && contains_word(slice, "let") {
                        match let_binding(slice) {
                            Some(b) if b != "_" => {
                                let mut end = enclosing_block_end(code, span, c.offset);
                                // Same-depth `drop(binding)` truncates.
                                let depth = brace_depth(code, span, c.offset);
                                for d in &f.calls {
                                    if d.name == "drop"
                                        && d.offset > c.offset
                                        && d.offset < end
                                        && brace_depth(code, span, d.offset) == depth
                                    {
                                        let inner = code
                                            [d.offset..d.args_end]
                                            .trim_start_matches(|ch: char| ch != '(');
                                        let arg = inner
                                            .trim_start_matches('(')
                                            .trim_end_matches(')')
                                            .trim();
                                        if arg == b {
                                            end = end.min(d.offset);
                                        }
                                    }
                                }
                                (Some(b), end)
                            }
                            _ => (None, stmt_end(code, c.args_end, span.1)),
                        }
                    } else {
                        (None, stmt_end(code, c.args_end, span.1))
                    };
                    ff.regions.push(GuardRegion {
                        class: class.clone(),
                        binding,
                        start: c.args_end,
                        end,
                        line: c.line,
                    });
                    ff.acquires.entry(class.clone()).or_insert(AcqWitness {
                        line: c.line,
                        via: None,
                    });
                }
            }
            // Direct blocking sinks. When the sink call resolved to a
            // workspace fn (field-type pass), thread the chain through
            // it — the witness then names the callee, not just the line.
            if ff.blocks.is_none() {
                if let Some(desc) = sink_desc(c) {
                    ff.blocks = Some(BlockWitness {
                        desc,
                        line: c.line,
                        via: c.callee,
                    });
                }
            }
            // Direct obligation satisfiers (WSA rewrite, shard route,
            // ...) and taint sanitizers, straight from the ruleset.
            for (oi, rule) in ruleset.obligations.iter().enumerate() {
                if CallPat::any(&rule.satisfiers, c) {
                    ff.satisfies.insert(oi);
                }
            }
            for (ti, rule) in ruleset.taint_rules.iter().enumerate() {
                if CallPat::any(&rule.sanitizers, c) {
                    ff.sanitizes.insert(ti);
                }
            }
        }
        if span.1 > span.0 && code[span.0..span.1].contains("TraceStage::") {
            ff.telemetry_stage = true;
        }
        facts.fns.push(ff);
    }

    // ---- fixpoints over resolved calls ------------------------------
    loop {
        let mut changed = false;
        for fi in 0..graph.fns.len() {
            for ci in 0..graph.fns[fi].calls.len() {
                let (line, callee) = {
                    let c = &graph.fns[fi].calls[ci];
                    (c.line, c.callee)
                };
                let Some(t) = callee else { continue };
                if t == fi {
                    continue;
                }
                // acquires
                let inherited: Vec<String> = facts.fns[t]
                    .acquires
                    .keys()
                    .filter(|k| !facts.fns[fi].acquires.contains_key(*k))
                    .cloned()
                    .collect();
                for class in inherited {
                    facts.fns[fi].acquires.insert(
                        class,
                        AcqWitness {
                            line,
                            via: Some(t),
                        },
                    );
                    changed = true;
                }
                // blocks
                if facts.fns[fi].blocks.is_none() {
                    if let Some(bw) = &facts.fns[t].blocks {
                        facts.fns[fi].blocks = Some(BlockWitness {
                            desc: bw.desc,
                            line,
                            via: Some(t),
                        });
                        changed = true;
                    }
                }
                // satisfies / sanitizes / telemetry_stage
                let add: Vec<usize> = facts.fns[t]
                    .satisfies
                    .difference(&facts.fns[fi].satisfies)
                    .copied()
                    .collect();
                for oi in add {
                    facts.fns[fi].satisfies.insert(oi);
                    changed = true;
                }
                let add: Vec<usize> = facts.fns[t]
                    .sanitizes
                    .difference(&facts.fns[fi].sanitizes)
                    .copied()
                    .collect();
                for ti in add {
                    facts.fns[fi].sanitizes.insert(ti);
                    changed = true;
                }
                if facts.fns[t].telemetry_stage && !facts.fns[fi].telemetry_stage {
                    facts.fns[fi].telemetry_stage = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    facts
}

/// Renders a call-chain witness for a blocking fact: follow `via` links
/// until the direct sink.
pub fn block_chain(graph: &Graph, facts: &Facts, fi: usize) -> String {
    let mut parts = Vec::new();
    let mut cur = fi;
    let mut guard = 0;
    while let Some(bw) = &facts.fns[cur].blocks {
        let f = &graph.fns[cur];
        parts.push(format!("{} ({}:{})", f.qualified, f.file, bw.line));
        match bw.via {
            // Follow only into callees that themselves carry a blocks
            // fact (a direct sink's resolved callee may not).
            Some(next) if guard < 16 && facts.fns[next].blocks.is_some() => {
                cur = next;
                guard += 1;
            }
            _ => {
                parts.push(bw.desc.to_string());
                break;
            }
        }
    }
    parts.join(" -> ")
}

/// Renders a call-chain witness for an acquisition fact.
pub fn acquire_chain(graph: &Graph, facts: &Facts, fi: usize, class: &str) -> String {
    let mut parts = Vec::new();
    let mut cur = fi;
    let mut guard = 0;
    while let Some(aw) = facts.fns[cur].acquires.get(class) {
        let f = &graph.fns[cur];
        parts.push(format!("{} ({}:{})", f.qualified, f.file, aw.line));
        match aw.via {
            Some(next) if guard < 16 => {
                cur = next;
                guard += 1;
            }
            _ => {
                parts.push(format!("acquires `{class}`"));
                break;
            }
        }
    }
    parts.join(" -> ")
}

/// Maps each call site's offset to a line using the stripped code (used
/// by rules that need per-region call filtering).
pub fn region_calls<'g>(
    f: &'g crate::callgraph::FnNode,
    region: &GuardRegion,
) -> impl Iterator<Item = &'g CallSite> {
    let (start, end) = (region.start, region.end);
    f.calls
        .iter()
        .filter(move |c| c.offset >= start && c.offset < end)
}

/// Convenience for tests: line lookup for offsets.
pub fn offset_line(code: &str, offset: usize) -> usize {
    let idx = line_index(code);
    line_at(&idx, offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::parser::parse;

    fn setup(files: &[(&str, &str)]) -> (BTreeMap<String, FileEntry>, Graph, Facts) {
        let map: BTreeMap<String, FileEntry> = files
            .iter()
            .map(|(p, s)| {
                (
                    p.to_string(),
                    FileEntry {
                        source: s.to_string(),
                        parsed: parse(s),
                    },
                )
            })
            .collect();
        let parsed: BTreeMap<String, ParsedFile> = files
            .iter()
            .map(|(p, s)| (p.to_string(), parse(s)))
            .collect();
        let mut graph = build(&parsed, &|_| false);
        let facts = compute(&map, &mut graph, &crate::ruleset::builtin());
        (map, graph, facts)
    }

    fn fidx(graph: &Graph, q: &str) -> usize {
        graph.fns.iter().position(|f| f.qualified == q).unwrap()
    }

    const QUEUE_SRC: &str = r#"
struct Inner { items: Vec<u8> }
struct Shared { state: OrderedMutex<Inner>, not_empty: Condvar }
struct FifoQueue { inner: Arc<Shared> }
impl FifoQueue {
    fn new() -> FifoQueue {
        FifoQueue { inner: Arc::new(Shared {
            state: OrderedMutex::new("fifo_queue.state", Inner { items: Vec::new() }),
            not_empty: Condvar::new(),
        }) }
    }
    fn pop(&self) -> u8 {
        let mut st = self.inner.state.lock();
        while st.items.is_empty() {
            st.wait(&self.inner.not_empty);
        }
        st.items.remove(0)
    }
}
"#;

    #[test]
    fn lock_class_binds_field_and_builds_region() {
        let (_m, graph, facts) = setup(&[("crates/x/src/queue.rs", QUEUE_SRC)]);
        let pop = fidx(&graph, "FifoQueue::pop");
        let ff = &facts.fns[pop];
        assert_eq!(ff.regions.len(), 1);
        let r = &ff.regions[0];
        assert_eq!(r.class, "fifo_queue.state");
        assert_eq!(r.binding.as_deref(), Some("st"));
        assert!(ff.acquires.contains_key("fifo_queue.state"));
        // pop blocks via the condvar wait...
        assert_eq!(ff.blocks.as_ref().unwrap().desc, "unbounded condvar/latch wait");
        // ...but the wait is guard-own: exempt inside its own region.
        let f = &graph.fns[pop];
        let wait = f.calls.iter().find(|c| c.name == "wait").unwrap();
        assert!(is_guard_own_wait(wait, r.binding.as_ref()));
        assert!(region_calls(f, r).any(|c| c.name == "wait"));
    }

    #[test]
    fn guard_consumed_in_statement_gets_statement_region() {
        let src = r#"
struct P { handles: OrderedMutex<Vec<u8>> }
impl P {
    fn new() -> P { P { handles: OrderedMutex::new("pool.handles", Vec::new()) } }
    fn shutdown(&self) {
        let handles: Vec<_> = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            h.join();
        }
    }
}
"#;
        let (m, graph, facts) = setup(&[("crates/x/src/pool.rs", src)]);
        let sd = fidx(&graph, "P::shutdown");
        let ff = &facts.fns[sd];
        assert_eq!(ff.regions.len(), 1);
        let r = &ff.regions[0];
        assert!(r.binding.is_none(), "take() consumes the guard in-statement");
        // join() is OUTSIDE the region.
        let f = &graph.fns[sd];
        let join = f.calls.iter().find(|c| c.name == "join").unwrap();
        assert!(join.offset >= r.end, "join must fall outside the region");
        let code = &m["crates/x/src/pool.rs"].parsed.stripped.code;
        assert!(offset_line(code, r.end) <= join.line);
    }

    #[test]
    fn if_let_scrutinee_guard_spans_the_block() {
        let src = r#"
struct R { thread: OrderedMutex<Option<u8>> }
impl R {
    fn new() -> R { R { thread: OrderedMutex::new("reactor.thread", None) } }
    fn shutdown(&self) {
        if let Some(h) = self.thread.lock().take() {
            h.join();
        }
    }
}
"#;
        let (_m, graph, facts) = setup(&[("crates/x/src/reactor.rs", src)]);
        let sd = fidx(&graph, "R::shutdown");
        let ff = &facts.fns[sd];
        assert_eq!(ff.regions.len(), 1);
        let r = &ff.regions[0];
        assert_eq!(r.class, "reactor.thread");
        let f = &graph.fns[sd];
        let join = f.calls.iter().find(|c| c.name == "join").unwrap();
        assert!(
            join.offset < r.end,
            "join is inside the if-let block: the guard is held"
        );
        assert!(sink_desc(join).is_some());
    }

    #[test]
    fn drop_truncates_binding_region_at_same_depth() {
        let src = r#"
struct S { state: OrderedMutex<u8> }
impl S {
    fn new() -> S { S { state: OrderedMutex::new("s.state", 0) } }
    fn f(&self, sock: &mut Sock) {
        let g = self.state.lock();
        drop(g);
        sock.read_exact(&mut [0u8; 4]);
    }
}
"#;
        let (_m, graph, facts) = setup(&[("crates/x/src/s.rs", src)]);
        let fi = fidx(&graph, "S::f");
        let r = &facts.fns[fi].regions[0];
        let f = &graph.fns[fi];
        let re = f.calls.iter().find(|c| c.name == "read_exact").unwrap();
        assert!(re.offset >= r.end, "read_exact is after drop(g)");
    }

    #[test]
    fn decl_only_ordered_field_binds_unique_class() {
        let src = r#"
struct M { shards: Vec<OrderedRwLock<u8>> }
impl M {
    fn new(n: usize) -> M {
        M { shards: (0..n).map(|_| OrderedRwLock::new("map.shard", 0)).collect() }
    }
    fn get(&self, i: usize) -> u8 {
        let g = self.shards[i].read();
        *g
    }
}
"#;
        let (_m, graph, facts) = setup(&[("crates/x/src/map.rs", src)]);
        let gi = fidx(&graph, "M::get");
        let ff = &facts.fns[gi];
        assert_eq!(ff.regions.len(), 1);
        assert_eq!(ff.regions[0].class, "map.shard");
    }

    #[test]
    fn field_type_second_pass_resolves_queue_push() {
        let files = [
            ("crates/x/src/queue.rs", QUEUE_SRC),
            (
                "crates/x/src/pool.rs",
                r#"
struct Pool { queue: FifoQueue }
impl Pool {
    fn execute(&self) {
        self.queue.pop();
    }
}
"#,
            ),
        ];
        let (_m, graph, facts) = setup(&files);
        let ex = fidx(&graph, "Pool::execute");
        let popcall = graph.fns[ex].calls.iter().find(|c| c.name == "pop").unwrap();
        let pop = fidx(&graph, "FifoQueue::pop");
        assert_eq!(popcall.callee, Some(pop), "field type resolves ambiguous method");
        // And transitive facts flow through it.
        let ff = &facts.fns[ex];
        assert!(ff.acquires.contains_key("fifo_queue.state"));
        assert!(ff.blocks.is_some());
        let chain = block_chain(&graph, &facts, ex);
        assert!(chain.contains("Pool::execute"), "{chain}");
        assert!(chain.contains("FifoQueue::pop"), "{chain}");
    }

    #[test]
    fn wsa_and_telemetry_facts_propagate() {
        let src = r#"
fn splice_path(env: &[u8]) { splice_forward(env); }
fn splice_forward(env: &[u8]) {}
fn outer(env: &[u8]) { splice_path(env); record(env); }
fn record(env: &[u8]) { let s = TraceStage::Rewritten; }
"#;
        let (_m, graph, facts) = setup(&[("crates/x/src/msg.rs", src)]);
        let wsa = crate::ruleset::builtin()
            .obligations
            .iter()
            .position(|r| r.name == "wsa-rewrite-before-forward")
            .unwrap();
        let outer = fidx(&graph, "outer");
        assert!(facts.fns[outer].satisfies.contains(&wsa));
        assert!(facts.fns[outer].telemetry_stage);
        let rec = fidx(&graph, "record");
        assert!(!facts.fns[rec].satisfies.contains(&wsa));
    }

    #[test]
    fn bounded_waits_are_not_sinks() {
        let src = r#"
struct S { state: OrderedMutex<u8> }
impl S {
    fn new() -> S { S { state: OrderedMutex::new("s.state", 0) } }
    fn f(&self) {
        let mut g = self.state.lock();
        g.wait_timeout(&cv, timeout);
    }
}
"#;
        let (_m, graph, facts) = setup(&[("crates/x/src/s.rs", src)]);
        let fi = fidx(&graph, "S::f");
        assert!(facts.fns[fi].blocks.is_none());
    }

    #[test]
    fn base_type_unwraps_wrappers() {
        assert_eq!(base_type("Vec<OrderedRwLock<HashMap<K, V>>>").as_deref(), Some("OrderedRwLock"));
        assert_eq!(base_type("Arc<FifoQueue<Job>>").as_deref(), Some("FifoQueue"));
        assert_eq!(base_type("OrderedMutex<Inner>").as_deref(), Some("OrderedMutex"));
        assert_eq!(base_type("usize"), None);
        assert_eq!(base_type("&'static str"), None);
    }
}
