//! A minimal Rust lexer that separates *code* from *non-code*.
//!
//! The analyzer only ever matches against code, so the one job of this
//! module is to take Rust source and return a same-shape copy in which
//! every string literal, raw string, byte string, char literal and
//! comment has been blanked out with spaces (newlines preserved, so
//! line/column arithmetic still works), plus the list of comments with
//! their line numbers (suppression directives live in comments).
//!
//! Handled syntax:
//!
//! * line comments `// ...` (including doc comments),
//! * block comments `/* ... */` with arbitrary nesting,
//! * string literals `"..."` with escapes (`\"`, `\\`, `\n`, ...),
//! * raw strings `r"..."`, `r#"..."#`, ... with any number of hashes,
//! * byte strings `b"..."` and raw byte strings `br#"..."#`,
//! * char and byte-char literals `'a'`, `'\''`, `b'x'`,
//! * lifetimes (`'static`, `'_`, `'a`) — *not* treated as char openers.
//!
//! Nothing else needs token-level understanding: rules match substrings
//! of the blanked code.

/// One comment captured during stripping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text without the `//` / `/*` delimiters, trimmed.
    pub text: String,
    /// Whether this is a line comment (`//`); block comments attach to
    /// their starting line only.
    pub is_line: bool,
}

/// The result of [`strip`]: blanked code plus extracted comments.
#[derive(Debug, Clone)]
pub struct Stripped {
    /// The source with all non-code bytes replaced by spaces. Newlines
    /// are preserved, so `code.lines()` aligns 1:1 with the original.
    pub code: String,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Strips strings, chars and comments out of `source`.
pub fn strip(source: &str) -> Stripped {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    // The previous *emitted code* character, used to tell a raw-string
    // prefix (`r"`) from an identifier ending in `r` (`hdr"` cannot
    // occur in valid Rust, but `r` inside `for` must not trigger).
    let mut prev_code: char = '\n';

    macro_rules! blank {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
                out.push('\n');
            } else {
                out.push(' ');
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment.
        if c == '/' && next == Some('/') {
            let start_line = line;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                out.push(' ');
                i += 1;
            }
            let text = text.trim_start_matches('/').trim().to_string();
            comments.push(Comment {
                line: start_line,
                text,
                is_line: true,
            });
            continue;
        }

        // Block comment (nested).
        if c == '/' && next == Some('*') {
            let start_line = line;
            let mut depth = 0usize;
            let mut text = String::new();
            while i < chars.len() {
                let c = chars[i];
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    blank!(c);
                    i += 1;
                    blank!(chars[i]);
                    i += 1;
                    continue;
                }
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    blank!(c);
                    i += 1;
                    blank!(chars[i]);
                    i += 1;
                    if depth == 0 {
                        break;
                    }
                    continue;
                }
                text.push(c);
                blank!(c);
                i += 1;
            }
            comments.push(Comment {
                line: start_line,
                text: text.trim_matches(|c: char| c == '*' || c.is_whitespace()).to_string(),
                is_line: false,
            });
            prev_code = ' ';
            continue;
        }

        // Raw / byte string prefixes: r" r#" br" br#" b" — only when not
        // glued to a preceding identifier character.
        if (c == 'r' || c == 'b') && !is_ident(prev_code) {
            let mut j = i;
            if chars[j] == 'b' && chars.get(j + 1) == Some(&'r') {
                j += 2;
            } else if chars[j] == 'r' || chars[j] == 'b' {
                j += 1;
            }
            let raw = j > i + 1 || chars[i] == 'r';
            let mut hashes = 0usize;
            if raw {
                while chars.get(j + hashes) == Some(&'#') {
                    hashes += 1;
                }
            }
            if chars.get(j + hashes) == Some(&'"') && (raw || chars[i] == 'b') {
                // Emit the prefix blanked, then consume the literal.
                while i < j + hashes {
                    out.push(' ');
                    i += 1;
                }
                // The opening quote.
                out.push(' ');
                i += 1;
                if raw {
                    // Scan for `"` followed by `hashes` hashes.
                    while i < chars.len() {
                        if chars[i] == '"'
                            && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#'))
                        {
                            out.push(' ');
                            i += 1;
                            for _ in 0..hashes {
                                out.push(' ');
                                i += 1;
                            }
                            break;
                        }
                        blank!(chars[i]);
                        i += 1;
                    }
                } else {
                    consume_quoted(&chars, &mut i, &mut out, &mut line, '"');
                }
                prev_code = ' ';
                continue;
            }
        }

        // Plain string literal.
        if c == '"' {
            out.push(' ');
            i += 1;
            consume_quoted(&chars, &mut i, &mut out, &mut line, '"');
            prev_code = ' ';
            continue;
        }

        // Char literal vs lifetime. A byte-char `b'x'` arrives here via
        // the `b` branch above only when followed by `"`; handle `b'`
        // directly too.
        if c == '\'' || (c == 'b' && next == Some('\'') && !is_ident(prev_code)) {
            let q = if c == 'b' { i + 1 } else { i };
            let after = chars.get(q + 1).copied();
            let is_lifetime = c == '\''
                && matches!(after, Some(a) if is_ident(a) && a != '\\')
                && chars.get(q + 2).copied() != Some('\'')
                // `'a'` is a char, `'ab` can only be a lifetime; a
                // multi-char body closed by `'` is still a char (e.g.
                // unicode), but identifier-like bodies without a closing
                // quote within 2 chars are lifetimes.
                && !closes_as_char(&chars, q);
            if is_lifetime {
                out.push('\'');
                i += 1;
                prev_code = '\'';
                continue;
            }
            // Char / byte-char literal: blank through the closing quote.
            if c == 'b' {
                out.push(' ');
                i += 1;
            }
            out.push(' ');
            i += 1; // past opening quote
            consume_quoted(&chars, &mut i, &mut out, &mut line, '\'');
            prev_code = ' ';
            continue;
        }

        blank_or_emit(&mut out, c, &mut line);
        if !c.is_whitespace() {
            prev_code = c;
        }
        i += 1;
    }

    Stripped {
        code: out,
        comments,
    }
}

/// Whether the quote at `chars[q]` opens a char literal that closes with
/// a `'` after an identifier-like body (e.g. `'é'`, `'a'`) rather than a
/// lifetime. Scans a short bounded window.
fn closes_as_char(chars: &[char], q: usize) -> bool {
    // Body of at most one char: `'X'`.
    chars.get(q + 2) == Some(&'\'')
}

/// Consumes a quoted body (after the opening delimiter) up to and
/// including the closing `delim`, honouring backslash escapes; emits
/// spaces (newlines preserved).
fn consume_quoted(chars: &[char], i: &mut usize, out: &mut String, line: &mut usize, delim: char) {
    while *i < chars.len() {
        let c = chars[*i];
        if c == '\\' {
            // Skip the escape pair.
            if c == '\n' {
                *line += 1;
                out.push('\n');
            } else {
                out.push(' ');
            }
            *i += 1;
            if *i < chars.len() {
                if chars[*i] == '\n' {
                    *line += 1;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                *i += 1;
            }
            continue;
        }
        if c == '\n' {
            *line += 1;
            out.push('\n');
        } else {
            out.push(' ');
        }
        *i += 1;
        if c == delim {
            return;
        }
    }
}

fn blank_or_emit(out: &mut String, c: char, line: &mut usize) {
    if c == '\n' {
        *line += 1;
    }
    out.push(c);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comment_is_blanked_and_captured() {
        let s = strip("let x = 1; // thread::spawn here\nlet y = 2;\n");
        assert!(!s.code.contains("thread::spawn"));
        assert!(s.code.contains("let x = 1;"));
        assert!(s.code.contains("let y = 2;"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 1);
        assert_eq!(s.comments[0].text, "thread::spawn here");
    }

    #[test]
    fn nested_block_comments() {
        let s = strip("a /* x /* Instant::now */ y */ b\n");
        assert!(!s.code.contains("Instant::now"));
        assert!(s.code.contains('a'));
        assert!(s.code.contains('b'));
        assert_eq!(s.comments.len(), 1);
    }

    #[test]
    fn strings_with_escapes() {
        let s = strip(r#"let s = "thread::spawn \" still inside"; call();"#);
        assert!(!s.code.contains("thread::spawn"));
        assert!(s.code.contains("call();"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let s = strip("let s = r#\"Instant::now \" inner\"#; after();\n");
        assert!(!s.code.contains("Instant::now"));
        assert!(s.code.contains("after();"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let s = strip("let a = b\"SystemTime::now\"; let b2 = br#\"x \" y\"#; tail();\n");
        assert!(!s.code.contains("SystemTime::now"));
        assert!(s.code.contains("tail();"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let s = strip("let q = '\"'; thread::spawn(); let e = '\\''; more();\n");
        assert!(s.code.contains("thread::spawn();"));
        assert!(s.code.contains("more();"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let s = strip("fn f<'a>(x: &'a str) -> &'static str { x } g();\n");
        assert!(s.code.contains("&'a str"));
        assert!(s.code.contains("&'static str"));
        assert!(s.code.contains("g();"));
    }

    #[test]
    fn newlines_preserved_for_line_mapping() {
        let src = "line1();\n\"two\nthree\"\nline4(); // c\n";
        let s = strip(src);
        assert_eq!(s.code.lines().count(), src.lines().count());
        let lines: Vec<&str> = s.code.lines().collect();
        assert!(lines[3].contains("line4();"));
        assert_eq!(s.comments[0].line, 4);
    }

    #[test]
    fn identifier_ending_in_r_before_string() {
        // `for` ends in `r`; the following string must still be blanked
        // as a plain string, and `r` must not be eaten as a raw prefix
        // when glued to an identifier.
        let s = strip("for x in y { p(\"Instant::now\") } var_r(\"z\");\n");
        assert!(!s.code.contains("Instant::now"));
        assert!(s.code.contains("var_r("));
    }
}
