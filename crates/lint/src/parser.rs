//! A lightweight Rust *item* parser on top of [`crate::lexer`].
//!
//! The lexer blanks strings and comments; this module recovers just
//! enough structure from the blanked code for interprocedural analysis:
//! `fn` items with byte-accurate body spans, the `impl` block each
//! method lives in (for `Type::method` qualified names), and which
//! lines sit under `#[cfg(test)]` / `#[test]` items (test code is
//! exempt from every rule and excluded from the call graph).
//!
//! This is deliberately *not* a Rust grammar. It is a scope tracker:
//! braces open and close scopes, and a scope is classified by the item
//! keyword (`fn` / `mod` / `impl` / `trait`) that introduced it. That
//! is enough to place every call site inside the right function, which
//! is all the call graph needs, while staying dependency-free (no
//! rustc, no syn — the linter must never break the build for
//! environmental reasons).

use crate::lexer::{strip, Stripped};

/// One `fn` item recovered from a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Bare function name (`route_raw`).
    pub name: String,
    /// `Type::name` when declared inside an `impl` block (trait impls
    /// qualify by the *implementing* type), otherwise the bare name.
    pub qualified: String,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 1-based line of the body's closing brace (== `sig_line` for
    /// bodyless trait/extern declarations).
    pub end_line: usize,
    /// Byte span `[start, end)` of the body *including* both braces, as
    /// offsets into the blanked code ([`Stripped::code`]); `None` for
    /// bodyless declarations.
    pub body: Option<(usize, usize)>,
    /// Whether this function is test collateral: it or an enclosing
    /// item carries `#[cfg(test)]` / `#[test]`.
    pub is_test: bool,
}

/// A parsed file: the stripped source plus its items.
#[derive(Debug)]
pub struct ParsedFile {
    /// Blanked code + comments (see [`crate::lexer::strip`]).
    pub stripped: Stripped,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Per-line flag (index 0 = line 1): the line lies inside an item
    /// marked `#[cfg(test)]` / `#[test]`, including the attribute line
    /// itself.
    pub test_lines: Vec<bool>,
}

impl ParsedFile {
    /// Whether 1-based `line` is test collateral.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line.saturating_sub(1)).copied().unwrap_or(false)
    }

    /// The innermost function whose body span contains byte `offset`
    /// of the blanked code, if any.
    pub fn fn_at(&self, offset: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (idx, f) in self.fns.iter().enumerate() {
            if let Some((s, e)) = f.body {
                if s <= offset && offset < e {
                    // Innermost = smallest span containing the offset.
                    let better = match best {
                        Some(b) => {
                            let (bs, be) = self.fns[b].body.unwrap();
                            (e - s) < (be - bs)
                        }
                        None => true,
                    };
                    if better {
                        best = Some(idx);
                    }
                }
            }
        }
        best
    }

    /// Body spans of functions nested strictly inside `outer`'s body
    /// (used to keep a nested `fn`'s calls out of the outer summary).
    pub fn nested_spans(&self, outer: usize) -> Vec<(usize, usize)> {
        let Some((os, oe)) = self.fns[outer].body else {
            return Vec::new();
        };
        self.fns
            .iter()
            .enumerate()
            .filter(|(i, f)| {
                *i != outer
                    && f.body.is_some_and(|(s, e)| os < s && e <= oe)
            })
            .filter_map(|(_, f)| f.body)
            .collect()
    }
}

/// Does an attribute body mark its item as test collateral?
fn attr_is_test(attr: &str) -> bool {
    let a = attr.trim();
    a == "test"
        || a.ends_with("::test")
        || (a.starts_with("cfg") && a.contains("test"))
}

#[derive(Debug)]
enum ScopeKind {
    /// `mod name { ... }`
    Mod,
    /// `impl [Trait for] Type { ... }` — carries the type name.
    Impl(String),
    /// `trait Name { ... }` — methods qualify by the trait name.
    Trait(String),
    /// `fn name(..) { ... }` — index into `fns`.
    Fn(usize),
    /// Any other brace pair (blocks, match bodies, struct literals...).
    Block,
}

struct Scope {
    kind: ScopeKind,
    is_test: bool,
    start_line: usize,
    /// Line the item's *first* attribute started on (the `#[cfg(test)]`
    /// line itself counts as test collateral).
    attr_line: usize,
}

/// What the tokens since the last statement boundary announce the next
/// `{` to be.
#[derive(Debug)]
enum Pending {
    Mod,
    Impl,
    Trait { name: String },
    Fn { item: usize },
}

/// Extracts the implementing type name from the text between `impl` and
/// its `{`: the segment after a trailing ` for ` if present (trait
/// impls), with leading generics and path qualifiers dropped.
fn impl_type_name(text: &str) -> String {
    let text = text.trim();
    // `impl<T: Fn(u8) -> u8> Foo<T>` — drop one leading <...> group,
    // tolerating `->` inside it.
    let mut rest = text;
    if let Some(after) = rest.strip_prefix('<') {
        let b = after.as_bytes();
        let mut depth = 1i32;
        let mut i = 0;
        while i < b.len() && depth > 0 {
            match b[i] {
                b'<' => depth += 1,
                b'>' if i == 0 || b[i - 1] != b'-' => depth -= 1,
                _ => {}
            }
            i += 1;
        }
        rest = &after[i..];
    }
    // Trait impl: take the type after the last top-level ` for `.
    let rest = match rest.rfind(" for ") {
        Some(pos) => &rest[pos + 5..],
        None => rest,
    };
    let rest = rest.trim().trim_start_matches('&');
    let head: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == ':')
        .collect();
    head.rsplit("::").next().unwrap_or(&head).to_string()
}

/// Parses one file's items. `source` is the original text; stripping is
/// done internally so callers get the [`Stripped`] back alongside.
pub fn parse(source: &str) -> ParsedFile {
    let stripped = strip(source);
    let code = stripped.code.clone();
    let b = code.as_bytes();
    let total_lines = code.lines().count();
    let mut fns: Vec<FnItem> = Vec::new();
    let mut test_lines = vec![false; total_lines.max(1)];
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut pending_attr_test = false;
    let mut pending_attr_line = 0usize;
    let mut impl_text_start: Option<usize> = None;

    let mut i = 0usize;
    let mut line = 1usize;

    let in_test = |scopes: &[Scope], own: bool| -> bool {
        own || scopes.iter().any(|s| s.is_test)
    };
    let impl_ctx = |scopes: &[Scope]| -> Option<String> {
        scopes.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Impl(t) | ScopeKind::Trait(t) => Some(t.clone()),
            _ => None,
        })
    };

    let mark_test =
        |test_lines: &mut Vec<bool>, from: usize, to: usize| {
            for l in from..=to {
                if l >= 1 && l <= test_lines.len() {
                    test_lines[l - 1] = true;
                }
            }
        };

    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '#' if b.get(i + 1) == Some(&b'[') => {
                // Attribute: capture balanced brackets.
                let start_line = line;
                let mut depth = 0i32;
                let mut j = i + 1;
                let text_start = i + 2;
                while j < b.len() {
                    match b[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        b'\n' => line += 1,
                        _ => {}
                    }
                    j += 1;
                }
                let text = &code[text_start..j.min(code.len())];
                if attr_is_test(text) {
                    if !pending_attr_test {
                        pending_attr_line = start_line;
                    }
                    pending_attr_test = true;
                } else if pending_attr_line == 0 {
                    pending_attr_line = start_line;
                }
                if pending_attr_line == 0 {
                    pending_attr_line = start_line;
                }
                i = j + 1;
            }
            '{' => {
                let (kind, own_test) = match pending.take() {
                    Some(Pending::Mod) => (ScopeKind::Mod, pending_attr_test),
                    Some(Pending::Impl) => {
                        let text_start = impl_text_start.take().unwrap_or(i);
                        let text = &code[text_start..i];
                        (ScopeKind::Impl(impl_type_name(text)), pending_attr_test)
                    }
                    Some(Pending::Trait { name }) => {
                        (ScopeKind::Trait(name), pending_attr_test)
                    }
                    Some(Pending::Fn { item }) => {
                        fns[item].body = Some((i, i + 1)); // end patched on pop
                        (ScopeKind::Fn(item), fns[item].is_test)
                    }
                    None => (ScopeKind::Block, false),
                };
                let attr_line = if pending_attr_line != 0 {
                    pending_attr_line
                } else {
                    line
                };
                scopes.push(Scope {
                    kind,
                    is_test: own_test,
                    start_line: line,
                    attr_line,
                });
                pending_attr_test = false;
                pending_attr_line = 0;
                i += 1;
            }
            '}' => {
                if let Some(scope) = scopes.pop() {
                    if let ScopeKind::Fn(idx) = scope.kind {
                        if let Some((s, _)) = fns[idx].body {
                            fns[idx].body = Some((s, i + 1));
                        }
                        fns[idx].end_line = line;
                    }
                    if scope.is_test {
                        mark_test(&mut test_lines, scope.attr_line.min(scope.start_line), line);
                    }
                }
                i += 1;
            }
            ';' => {
                // Statement boundary: bodyless items and attrs resolve.
                pending = None;
                impl_text_start = None;
                pending_attr_test = false;
                pending_attr_line = 0;
                i += 1;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len()
                    && ((b[i] as char).is_alphanumeric() || b[i] == b'_')
                {
                    i += 1;
                }
                let word = &code[start..i];
                match word {
                    "mod" => pending = Some(Pending::Mod),
                    "trait" => {
                        // Next word is the trait name.
                        let mut j = i;
                        while j < b.len() && (b[j] as char).is_whitespace() {
                            if b[j] == b'\n' {
                                line += 1;
                            }
                            j += 1;
                        }
                        let ns = j;
                        while j < b.len()
                            && ((b[j] as char).is_alphanumeric() || b[j] == b'_')
                        {
                            j += 1;
                        }
                        pending = Some(Pending::Trait {
                            name: code[ns..j].to_string(),
                        });
                        i = j;
                    }
                    "impl" => {
                        pending = Some(Pending::Impl);
                        impl_text_start = Some(i);
                    }
                    "fn" => {
                        // `fn` as a *type* (`fn(u8) -> u8`) has no name;
                        // require an identifier next.
                        let mut j = i;
                        while j < b.len() && (b[j] as char).is_whitespace() {
                            if b[j] == b'\n' {
                                line += 1;
                            }
                            j += 1;
                        }
                        let ns = j;
                        while j < b.len()
                            && ((b[j] as char).is_alphanumeric() || b[j] == b'_')
                        {
                            j += 1;
                        }
                        if j == ns {
                            i = j;
                            continue;
                        }
                        let name = code[ns..j].to_string();
                        let is_test = in_test(&scopes, pending_attr_test);
                        let qualified = match impl_ctx(&scopes) {
                            Some(t) => format!("{t}::{name}"),
                            None => name.clone(),
                        };
                        let sig_line = line;
                        if pending_attr_test {
                            // `#[test]` fn: the attribute line onward is
                            // test collateral even before the body opens.
                            mark_test(
                                &mut test_lines,
                                if pending_attr_line != 0 { pending_attr_line } else { sig_line },
                                sig_line,
                            );
                        }
                        fns.push(FnItem {
                            name,
                            qualified,
                            sig_line,
                            end_line: sig_line,
                            body: None,
                            is_test,
                        });
                        pending = Some(Pending::Fn { item: fns.len() - 1 });
                        i = j;
                    }
                    _ => {}
                }
            }
            '(' | '[' => {
                // Skip balanced parens/brackets so `{` inside closure
                // arguments or array types cannot be mistaken for an
                // item body *while an item header is pending*. Outside a
                // pending header the braces are real scopes (closures) —
                // step in normally.
                if pending.is_some() {
                    let open = b[i];
                    let close = if open == b'(' { b')' } else { b']' };
                    let mut depth = 0i32;
                    while i < b.len() {
                        if b[i] == open {
                            depth += 1;
                        } else if b[i] == close {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        } else if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    // Unbalanced tail: close any dangling fn scopes at EOF.
    while let Some(scope) = scopes.pop() {
        if let ScopeKind::Fn(idx) = scope.kind {
            if let Some((s, _)) = fns[idx].body {
                fns[idx].body = Some((s, code.len()));
            }
            fns[idx].end_line = line;
        }
        if scope.is_test {
            mark_test(&mut test_lines, scope.attr_line.min(scope.start_line), line);
        }
    }

    ParsedFile {
        stripped,
        fns,
        test_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(p: &ParsedFile) -> Vec<&str> {
        p.fns.iter().map(|f| f.name.as_str()).collect()
    }

    #[test]
    fn free_fn_and_method_qualified() {
        let p = parse(
            "fn free() { body(); }\nstruct S;\nimpl S {\n    fn m(&self) -> u8 { 1 }\n}\n",
        );
        assert_eq!(names(&p), vec!["free", "m"]);
        assert_eq!(p.fns[0].qualified, "free");
        assert_eq!(p.fns[1].qualified, "S::m");
        assert_eq!(p.fns[0].sig_line, 1);
        assert_eq!(p.fns[1].sig_line, 4);
    }

    #[test]
    fn trait_impl_qualifies_by_implementing_type() {
        let p = parse("impl<T> Drop for Guard<'_, T> {\n    fn drop(&mut self) {}\n}\n");
        assert_eq!(p.fns[0].qualified, "Guard::drop");
    }

    #[test]
    fn generic_impl_with_fn_bound() {
        let p = parse("impl<F: Fn(u8) -> u8> Wrap<F> {\n    fn call_it(&self) {}\n}\n");
        assert_eq!(p.fns[0].qualified, "Wrap::call_it");
    }

    #[test]
    fn body_spans_cover_nested_braces() {
        let src = "fn outer() {\n    if x { y(); }\n    match z { _ => {} }\n}\nfn after() {}\n";
        let p = parse(src);
        assert_eq!(names(&p), vec!["outer", "after"]);
        let (s, e) = p.fns[0].body.unwrap();
        let body = &p.stripped.code[s..e];
        assert!(body.starts_with('{') && body.ends_with('}'));
        assert!(body.contains("y();"));
        assert_eq!(p.fns[0].end_line, 4);
        assert_eq!(p.fns[1].sig_line, 5);
    }

    #[test]
    fn cfg_test_mod_marks_lines_and_fns() {
        let src = "fn serve() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\nfn after() {}\n";
        let p = parse(src);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test, "helper inside cfg(test) mod");
        assert!(p.fns[2].is_test);
        let after = p.fns.iter().find(|f| f.name == "after").unwrap();
        assert!(!after.is_test);
        assert!(p.is_test_line(2), "the #[cfg(test)] attribute line");
        assert!(p.is_test_line(4));
        assert!(!p.is_test_line(1));
        assert!(!p.is_test_line(8));
    }

    #[test]
    fn test_attr_on_fn_marks_it() {
        let src = "#[test]\nfn t() { std::thread::spawn(|| {}); }\nfn real() {}\n";
        let p = parse(src);
        assert!(p.fns[0].is_test);
        assert!(!p.fns[1].is_test);
        assert!(p.is_test_line(1) && p.is_test_line(2));
        assert!(!p.is_test_line(3));
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let p = parse("#[cfg(feature = \"x\")]\nfn gated() {}\n");
        assert!(!p.fns[0].is_test);
    }

    #[test]
    fn bodyless_trait_method() {
        let p = parse("trait T {\n    fn required(&self);\n    fn with_default(&self) {}\n}\n");
        assert_eq!(names(&p), vec!["required", "with_default"]);
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
        assert_eq!(p.fns[0].qualified, "T::required");
    }

    #[test]
    fn fn_type_in_signature_is_not_an_item() {
        let p = parse("fn takes(cb: fn(u8) -> u8) -> u8 { cb(1) }\n");
        assert_eq!(names(&p), vec!["takes"]);
    }

    #[test]
    fn where_clause_and_return_type_before_body() {
        let p = parse(
            "fn g<T>(x: T) -> Vec<u8>\nwhere\n    T: Into<Vec<u8>>,\n{\n    x.into()\n}\n",
        );
        assert_eq!(names(&p), vec!["g"]);
        let (s, e) = p.fns[0].body.unwrap();
        assert!(p.stripped.code[s..e].contains("x.into()"));
    }

    #[test]
    fn nested_fn_spans_nest() {
        let src = "fn outer() {\n    fn inner() { leaf(); }\n    inner();\n}\n";
        let p = parse(src);
        assert_eq!(names(&p), vec!["outer", "inner"]);
        let nested = p.nested_spans(0);
        assert_eq!(nested.len(), 1);
        assert_eq!(Some(nested[0]), p.fns[1].body);
        // fn_at resolves to the innermost function.
        let (is_, _) = p.fns[1].body.unwrap();
        assert_eq!(p.fn_at(is_ + 2), Some(1));
    }

    #[test]
    fn strings_and_comments_cannot_fake_items()
    {
        let src = "fn real() {\n    let s = \"fn fake() {\";\n    // fn comment_fake() {\n}\n";
        let p = parse(src);
        assert_eq!(names(&p), vec!["real"]);
        assert_eq!(p.fns[0].end_line, 4);
    }

    #[test]
    fn closure_braces_inside_call_args() {
        let src = "fn f() {\n    net.listen(host, port, move |s| {\n        handle(s);\n    });\n}\nfn g() {}\n";
        let p = parse(src);
        assert_eq!(names(&p), vec!["f", "g"]);
        let (s, e) = p.fns[0].body.unwrap();
        assert!(p.stripped.code[s..e].contains("handle(s);"));
    }
}
