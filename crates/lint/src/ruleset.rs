//! The declarative ruleset: obligation / taint / gauge rules as data.
//!
//! v3 re-expresses the hand-written interprocedural rules as rows in a
//! [`Ruleset`] — `{sources, sanitizers, sinks}` triples plus message
//! templates — compiled by [`crate::summaries`] into per-function facts
//! and evaluated by the generic engines in [`crate::interproc`] and
//! [`crate::dataflow`]. A new "X must happen before Y" invariant (e.g.
//! ROADMAP item 5's `auth-before-enqueue`) is a one-row addition here
//! plus a name in [`crate::rules::RULE_NAMES`], not a new analysis.
//!
//! The checked-in `lint-rules.toml` at the workspace root is the
//! canonical copy; [`load`] parses it with a hand-rolled TOML-subset
//! reader (sections, string keys, single-line string arrays — no
//! dependency, like the rest of the crate) and falls back to
//! [`builtin`] when the file is absent (fixture roots, `--self`).
//! `builtin()` and the checked-in file must stay identical; a unit test
//! enforces it.

use crate::callgraph::CallSite;
use crate::rules::RULE_NAMES;
use std::path::Path;

/// A call-site pattern: `name` or `Qualifier::name`. A bare name
/// matches any call of that name (method, free, or path-qualified); a
/// qualified pattern additionally requires the call's last path
/// segment (`RequestParser::new`, `xml::parse`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallPat {
    /// Required qualifier (last path segment), if any.
    pub qualifier: Option<String>,
    /// The called name.
    pub name: String,
}

impl CallPat {
    /// Parses `"name"` or `"Qualifier::name"`.
    pub fn parse(s: &str) -> CallPat {
        match s.rsplit_once("::") {
            Some((q, n)) => CallPat {
                qualifier: Some(q.rsplit("::").next().unwrap_or(q).to_string()),
                name: n.to_string(),
            },
            None => CallPat {
                qualifier: None,
                name: s.to_string(),
            },
        }
    }

    /// Whether this pattern matches a call site.
    pub fn matches(&self, c: &CallSite) -> bool {
        self.name == c.name
            && match &self.qualifier {
                None => true,
                Some(q) => c.qualifier.as_deref() == Some(q.as_str()),
            }
    }

    /// Whether any pattern in `pats` matches `c`.
    pub fn any(pats: &[CallPat], c: &CallSite) -> bool {
        pats.iter().any(|p| p.matches(c))
    }
}

/// A typestate call pattern, richer than [`CallPat`] because protocol
/// transitions are usually keyed by *which object* a method is called
/// on: `*` (any call — in binding mode, any call on the tracked
/// object), `recv.name` (method `name` on a receiver whose last dotted
/// segment is `recv`, e.g. `wal.append` matches `self.wal.append(..)`),
/// `Qualifier::name`, or a bare `name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsPat {
    /// Matches any call (binding mode pre-filters to the tracked
    /// object, so `*` there means "any use of the object").
    Any,
    /// Matches method `name` on a receiver ending in `.recv`.
    Recv {
        /// Required last segment of the receiver chain.
        recv: String,
        /// The method name.
        name: String,
    },
    /// Bare or `Qualifier::name` matching, as [`CallPat`].
    Call(CallPat),
}

impl TsPat {
    /// Parses `"*"`, `"recv.name"`, `"Qualifier::name"`, or `"name"`.
    pub fn parse(s: &str) -> TsPat {
        if s == "*" {
            return TsPat::Any;
        }
        if !s.contains("::") {
            if let Some((r, n)) = s.rsplit_once('.') {
                return TsPat::Recv {
                    recv: r.to_string(),
                    name: n.to_string(),
                };
            }
        }
        TsPat::Call(CallPat::parse(s))
    }

    /// Whether the pattern matches a call site (`Any` matches every
    /// call — the engine pre-filters by tracked object first).
    pub fn matches(&self, c: &CallSite) -> bool {
        match self {
            TsPat::Any => true,
            TsPat::Recv { recv, name } => {
                *name == c.name
                    && c.receiver.rsplit('.').next() == Some(recv.as_str())
            }
            TsPat::Call(p) => p.matches(c),
        }
    }

    /// The TOML spelling this pattern parses back from.
    pub fn render(&self) -> String {
        match self {
            TsPat::Any => "*".to_string(),
            TsPat::Recv { recv, name } => format!("{recv}.{name}"),
            TsPat::Call(p) => match &p.qualifier {
                Some(q) => format!("{q}::{}", p.name),
                None => p.name.clone(),
            },
        }
    }
}

/// One automaton transition: in state `from`, a call matching `pat`
/// moves the machine to `to`. Spelled `"from => to : pat"` in TOML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsArc {
    /// Source state.
    pub from: String,
    /// Destination state.
    pub to: String,
    /// Call pattern that fires the arc.
    pub pat: TsPat,
}

impl TsArc {
    fn parse(s: &str) -> Result<TsArc, String> {
        let err = || format!("transition `{s}` must be `from => to : call-pattern`");
        let (from, rest) = s.split_once(" => ").ok_or_else(err)?;
        let (to, pat) = rest.split_once(" : ").ok_or_else(err)?;
        Ok(TsArc {
            from: from.trim().to_string(),
            to: to.trim().to_string(),
            pat: TsPat::parse(pat.trim()),
        })
    }

    fn render(&self) -> String {
        format!("{} => {} : {}", self.from, self.to, self.pat.render())
    }
}

/// One error transition: in state `state`, a call matching `pat` is an
/// immediate violation. Spelled `"state : pat : message"` in TOML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsErr {
    /// State the error arms in.
    pub state: String,
    /// Call pattern that triggers it.
    pub pat: TsPat,
    /// Finding message; `{fn}`, `{call}` placeholders.
    pub message: String,
}

impl TsErr {
    fn parse(s: &str) -> Result<TsErr, String> {
        let mut parts = s.splitn(3, " : ");
        match (parts.next(), parts.next(), parts.next()) {
            (Some(state), Some(pat), Some(msg)) => Ok(TsErr {
                state: state.trim().to_string(),
                pat: TsPat::parse(pat.trim()),
                message: msg.trim().to_string(),
            }),
            _ => Err(format!("error row `{s}` must be `state : call-pattern : message`")),
        }
    }

    fn render(&self) -> String {
        format!("{} : {} : {}", self.state, self.pat.render(), self.message)
    }
}

/// A protocol-lifecycle automaton, checked path-sensitively by
/// [`crate::typestate`]: calls fire transitions, unmatched calls
/// self-loop, error rows fire immediately, and (when `exit_message` is
/// set) a `return` / fall-through exit in a non-accepting state is a
/// finding. Helpers that perform transitions propagate them to callers
/// through interprocedural effect summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypestateRule {
    /// Rule id (must be in [`RULE_NAMES`]).
    pub name: &'static str,
    /// One-line rule doc (surfaced by `--explain`).
    pub doc: String,
    /// Path prefixes the automaton runs under (empty = everywhere).
    pub scopes: Vec<String>,
    /// `"ambient"` — one machine per function; `"binding"` — one
    /// machine per object bound by a `creates` call.
    pub track: String,
    /// Declared states; the first is the start state.
    pub states: Vec<String>,
    /// States a function may exit in without a finding.
    pub accepting: Vec<String>,
    /// Binding mode: calls whose bound result starts a tracked object.
    pub creates: Vec<TsPat>,
    /// Transition arcs.
    pub transitions: Vec<TsArc>,
    /// Error transitions.
    pub errors: Vec<TsErr>,
    /// Non-empty enables non-accepting-exit checking (`Return` and
    /// fall-through only — `?`, `break`, panics are exempt);
    /// `{fn}`, `{state}` placeholders.
    pub exit_message: String,
}

/// The wait-for-graph analysis ([`crate::waitgraph`]): one row
/// configures both the deadlock-cycle rule (`name`) and the
/// shutdown-liveness rule (`liveness_name`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitgraphRule {
    /// Deadlock-cycle rule id.
    pub name: &'static str,
    /// Blocking-pop-with-no-close rule id.
    pub liveness_name: &'static str,
    /// One-line rule doc (surfaced by `--explain`).
    pub doc: String,
    /// Field/binding base types treated as blocking queues.
    pub queue_types: Vec<String>,
    /// Potentially-unbounded blocking consume methods.
    pub blocking_pops: Vec<String>,
    /// Blocking produce methods (block when a bounded queue is full).
    pub blocking_pushes: Vec<String>,
    /// Shutdown methods that release parked consumers.
    pub closers: Vec<String>,
    /// Path prefixes exempt (the queue implementation itself).
    pub exempt: Vec<String>,
}

/// "Every path into a sink must have passed a satisfier first" —
/// unsatisfied sinks propagate the obligation to callers; an entry
/// point reached with the obligation still open is a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObligationRule {
    /// Rule id (must be in [`RULE_NAMES`]).
    pub name: &'static str,
    /// One-line rule doc (surfaced by `--explain`).
    pub doc: String,
    /// Path prefix the rule is scoped to.
    pub scope: String,
    /// Sink calls that demand the obligation.
    pub sinks: Vec<CallPat>,
    /// Calls that satisfy it (directly or transitively).
    pub satisfiers: Vec<CallPat>,
    /// Noun used in witness chains (`"forward sink"`).
    pub sink_noun: String,
    /// Excerpt template; `{fn}` is the entry-point function.
    pub contract: String,
}

/// "A trigger call's argument text must not contain a forbidden
/// spelling" (serve sites taking `Limits::default()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgRule {
    /// Rule id.
    pub name: &'static str,
    /// One-line rule doc (surfaced by `--explain`).
    pub doc: String,
    /// Path prefixes the rule is scoped to (any match applies).
    pub scopes: Vec<String>,
    /// Calls whose argument lists are inspected.
    pub triggers: Vec<CallPat>,
    /// Forbidden substring of the (blanked) argument text.
    pub forbidden: String,
    /// Witness template; `{call}`, `{fn}`, `{file}`, `{line}`.
    pub witness: String,
}

/// "No function reachable from an entry point may contain a forbidden
/// spelling" (zero-alloc drain path). Suppressions on call-site lines
/// are edge-aware: they prune propagation through that edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachRule {
    /// Rule id.
    pub name: &'static str,
    /// One-line rule doc (surfaced by `--explain`).
    pub doc: String,
    /// Path prefix entry points must live under.
    pub scope: String,
    /// Exact entry-point function names.
    pub entries: Vec<String>,
    /// Entry-point name prefixes (`route_raw` matches `route_raw_ack`).
    pub entry_prefixes: Vec<String>,
    /// Forbidden spellings, matched lexically in reachable bodies.
    pub markers: Vec<String>,
    /// Witness template; `{marker}`, `{fn}`, `{chain}`.
    pub witness: String,
}

/// "Bytes from a source must pass a sanitizer before reaching a sink"
/// — a variable-level taint lattice evaluated by [`crate::dataflow`],
/// with interprocedural source/sanitizer/sink summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintRule {
    /// Rule id.
    pub name: &'static str,
    /// One-line rule doc (surfaced by `--explain`).
    pub doc: String,
    /// Path prefixes exempt from the rule (the crates that implement
    /// the primitives themselves).
    pub exempt: Vec<String>,
    /// Calls whose results (and `&mut` arguments) become tainted.
    pub sources: Vec<CallPat>,
    /// Calls that clear taint from their arguments.
    pub sanitizers: Vec<CallPat>,
    /// Calls that must never receive a tainted argument.
    pub sinks: Vec<CallPat>,
    /// Excerpt template; `{call}`, `{var}`, `{src}`, `{file}`, `{line}`.
    pub contract: String,
}

/// "Every gauge increment is matched by a decrement on all paths out
/// of the enclosing function" — checked per function, only for gauge
/// classes the function both increments and decrements (balance intent
/// is local; cross-function pairs like push/pop counters are exempt).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeRule {
    /// Rule id.
    pub name: &'static str,
    /// One-line rule doc (surfaced by `--explain`).
    pub doc: String,
    /// Field base types treated as gauges.
    pub types: Vec<String>,
    /// Path prefixes exempt (the telemetry crate implements gauges).
    pub exempt: Vec<String>,
}

/// The full declarative ruleset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ruleset {
    /// Obligation-propagation rules.
    pub obligations: Vec<ObligationRule>,
    /// Argument-inspection rules.
    pub arg_rules: Vec<ArgRule>,
    /// Reachability rules.
    pub reach_rules: Vec<ReachRule>,
    /// Taint-dataflow rules.
    pub taint_rules: Vec<TaintRule>,
    /// Gauge-balance rules.
    pub gauge_rules: Vec<GaugeRule>,
    /// Protocol-lifecycle automata.
    pub typestate_rules: Vec<TypestateRule>,
    /// Wait-for-graph rules (deadlock cycles + pop liveness).
    pub waitgraph_rules: Vec<WaitgraphRule>,
}

fn pats(names: &[&str]) -> Vec<CallPat> {
    names.iter().map(|n| CallPat::parse(n)).collect()
}

fn strs(names: &[&str]) -> Vec<String> {
    names.iter().map(|n| n.to_string()).collect()
}

fn tpats(names: &[&str]) -> Vec<TsPat> {
    names.iter().map(|n| TsPat::parse(n)).collect()
}

fn arcs(rows: &[&str]) -> Vec<TsArc> {
    rows.iter().map(|r| TsArc::parse(r).expect("builtin transition")).collect()
}

fn terrs(rows: &[&str]) -> Vec<TsErr> {
    rows.iter().map(|r| TsErr::parse(r).expect("builtin error row")).collect()
}

/// The built-in ruleset — must stay identical to the checked-in
/// `lint-rules.toml` (used directly for roots without the file:
/// fixture trees, `--self`).
pub fn builtin() -> Ruleset {
    Ruleset {
        obligations: vec![
            ObligationRule {
                name: "wsa-rewrite-before-forward",
                doc: "Every path from envelope receipt to a forward enqueue \
                      passes a ReplyTo rewrite first — the paper's \
                      MSG-Dispatcher contract."
                    .into(),
                scope: "crates/core/".into(),
                sinks: pats(&["enqueue", "ack_enqueue"]),
                satisfiers: pats(&["rewrite_for_forward", "splice_forward"]),
                sink_noun: "forward sink".into(),
                contract: "path to forward enqueue without a ReplyTo rewrite \
                           (no rewrite on any route into `{fn}`)"
                    .into(),
            },
            ObligationRule {
                name: "shard-route-before-enqueue",
                doc: "Fleet deposits pass the consistent-hash routing step \
                      before any enqueue, keeping ring ownership truthful."
                    .into(),
                scope: "crates/core/".into(),
                sinks: pats(&["enqueue_fleet"]),
                satisfiers: pats(&["shard_route"]),
                sink_noun: "fleet sink".into(),
                contract: "path to fleet enqueue without a shard-route step                          (no `shard_route` on any route into `{fn}`)".into(),
            },
        ],
        arg_rules: vec![ArgRule {
            name: "limits-at-serve-site",
            doc: "Serve sites thread Limits from config, never \
                  Limits::default(), so parser bounds stay operable."
                .into(),
            scopes: strs(&["crates/core/src/rt/", "crates/core/src/sim/"]),
            triggers: pats(&["serve_connection", "serve", "RequestParser::new"]),
            forbidden: "Limits::default".into(),
            witness: "serve site `{call}` in {fn} ({file}:{line}) constructs \
                      Limits::default() instead of threading config limits"
                .into(),
        }],
        reach_rules: vec![ReachRule {
            name: "alloc-in-drain",
            doc: "The WsThread drain / route_raw dispatch path allocates \
                  nothing in steady state."
                .into(),
            scope: "crates/core/".into(),
            entries: strs(&["drain"]),
            entry_prefixes: strs(&["route_raw"]),
            markers: strs(&["String::from(", ".to_string()", "Vec::new()", "format!("]),
            witness: "allocation `{marker}` in {fn} on drain path: {chain}".into(),
        }],
        taint_rules: vec![TaintRule {
            name: "unvalidated-envelope-to-sink",
            doc: "Socket bytes pass envelope validation before any forward \
                  splice, WAL append, or enqueue — the dispatcher is the \
                  trust boundary."
                .into(),
            exempt: strs(&["crates/http/", "crates/xml/", "crates/soap/"]),
            sources: pats(&["try_read", "feed"]),
            sanitizers: pats(&[
                "verify_element",
                "verify_element_with_prefixes",
                "Envelope::parse",
                "xml::parse",
                "Document::parse",
            ]),
            sinks: pats(&[
                "splice_forward",
                "splice_forward_into",
                "append",
                "append_durable",
                "enqueue",
                "ack_enqueue",
                "enqueue_fleet",
            ]),
            contract: "unvalidated bytes reach `{call}`: `{var}` tainted by \
                       `{src}` at {file}:{line} was never sanitized"
                .into(),
        }],
        gauge_rules: vec![GaugeRule {
            name: "gauge-balance",
            doc: "A gauge incremented in a function is decremented on every \
                  non-panic path out of it — the gauges-return-to-0 teardown \
                  invariant, statically."
                .into(),
            types: strs(&["Gauge"]),
            exempt: strs(&["crates/telemetry/"]),
        }],
        typestate_rules: vec![
            TypestateRule {
                name: "wal-ack-before-durable",
                doc: "A WAL append is committed (fsynced) before the \
                      function returns — an ack sent from the appended \
                      state races durability; the static twin of the \
                      250-seed crash sweep."
                    .into(),
                scopes: strs(&["crates/store/", "crates/core/"]),
                track: "ambient".into(),
                states: strs(&["idle", "appended", "durable"]),
                accepting: strs(&["idle", "durable"]),
                creates: vec![],
                transitions: arcs(&[
                    "idle => appended : wal.append",
                    "durable => appended : wal.append",
                    "appended => durable : wal.commit",
                ]),
                errors: vec![],
                exit_message: "`{fn}` can return with a WAL record appended \
                               but not committed (state `{state}`) — an ack \
                               on this path races durability"
                    .into(),
            },
            TypestateRule {
                name: "scratch-use-after-take",
                doc: "A pooled scratch guard is never touched again after \
                      `take_out` moves its buffer out — later writes land \
                      in a buffer the pool hands to the next envelope."
                    .into(),
                scopes: strs(&["crates/core/", "crates/soap/"]),
                track: "binding".into(),
                states: strs(&["live", "taken"]),
                accepting: strs(&["live", "taken"]),
                creates: tpats(&["scratch::checkout", "checkout"]),
                transitions: arcs(&["live => taken : take_out"]),
                errors: terrs(&[
                    "taken : * : scratch guard `{var}` used after \
                     `take_out` moved its buffer out — the write lands in \
                     a buffer the pool will reuse for the next envelope",
                ]),
                exit_message: String::new(),
            },
            TypestateRule {
                name: "reactor-conn-accounting",
                doc: "A connection removed from the reactor's conns map is \
                      re-inserted or has `open_conns` decremented on every \
                      non-panic exit, keeping the map and gauge truthful."
                    .into(),
                scopes: strs(&["crates/concurrent/src/reactor.rs"]),
                track: "ambient".into(),
                states: strs(&["idle", "taken"]),
                accepting: strs(&["idle"]),
                creates: vec![],
                transitions: arcs(&[
                    "idle => taken : conns.remove",
                    "taken => idle : conns.insert",
                    "taken => idle : open_conns.dec",
                ]),
                errors: vec![],
                exit_message: "`{fn}` can exit with a connection removed \
                               from the conns map (state `{state}`) but \
                               neither re-inserted nor accounted by an \
                               `open_conns` decrement"
                    .into(),
            },
            TypestateRule {
                name: "fleet-handoff-completion",
                doc: "A claimed ownership handoff reaches completion \
                      (`complete` or the recovery timer that leads there) \
                      on every path — an abandoned claim strands the dead \
                      instance's mailboxes."
                    .into(),
                scopes: strs(&["crates/core/", "crates/fleet/"]),
                track: "ambient".into(),
                states: strs(&["idle", "claimed", "released"]),
                accepting: strs(&["idle", "released"]),
                creates: vec![],
                transitions: arcs(&[
                    "idle => claimed : handoffs.claim_for",
                    "claimed => released : handoffs.complete",
                    "claimed => released : set_timer",
                ]),
                errors: vec![],
                exit_message: "`{fn}` can exit with a handoff claimed \
                               (state `{state}`) but never completed or \
                               scheduled for recovery"
                    .into(),
            },
        ],
        waitgraph_rules: vec![WaitgraphRule {
            name: "blocking-cycle",
            liveness_name: "queue-pop-no-close",
            doc: "Blocking operations (lock acquires, blocking queue \
                  pops/pushes) form an acyclic wait-for graph, and every \
                  potentially-unbounded pop has a close() somewhere to \
                  release it at shutdown."
                .into(),
            queue_types: strs(&["FifoQueue"]),
            blocking_pops: strs(&["pop"]),
            blocking_pushes: strs(&["push"]),
            closers: strs(&["close"]),
            exempt: strs(&["crates/concurrent/src/queue.rs", "crates/telemetry/"]),
        }],
    }
}

/// Loads `<root>/lint-rules.toml`, falling back to [`builtin`] when the
/// file is absent. A present-but-malformed file is an error: a typo'd
/// ruleset silently reverting to defaults would un-enforce rules.
pub fn load(root: &Path) -> Result<Ruleset, String> {
    let path = root.join("lint-rules.toml");
    // wsd-lint: allow(raw-file-io): the ruleset is checked-in lint config, not durable state
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Ok(builtin());
    };
    parse_toml(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Interns a rule name against [`RULE_NAMES`] (findings carry
/// `&'static str` rule ids; an unknown name in the TOML is an error —
/// every declarative rule must also be registered for suppressions and
/// SARIF rule metadata).
fn intern_rule(name: &str) -> Result<&'static str, String> {
    RULE_NAMES
        .iter()
        .find(|r| **r == name)
        .copied()
        .ok_or_else(|| format!("unknown rule name `{name}` (not in RULE_NAMES)"))
}

/// One parsed `key = value` where value is a string or string array.
enum Val {
    Str(String),
    List(Vec<String>),
}

fn parse_value(raw: &str) -> Result<Val, String> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(end) = rest.rfind('"') else {
            return Err("unterminated string".into());
        };
        return Ok(Val::Str(rest[..end].to_string()));
    }
    if let Some(rest) = raw.strip_prefix('[') {
        let Some(body) = rest.strip_suffix(']') else {
            return Err("unterminated array (arrays must be single-line)".into());
        };
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let inner = part
                .strip_prefix('"')
                .and_then(|p| p.strip_suffix('"'))
                .ok_or_else(|| format!("array item `{part}` is not a quoted string"))?;
            items.push(inner.to_string());
        }
        return Ok(Val::List(items));
    }
    Err(format!("unsupported value `{raw}` (expected \"str\" or [\"a\", ...])"))
}

/// Hand-rolled parser for the TOML subset the ruleset uses:
/// `[[section]]` table arrays, `key = "string"`, and single-line
/// `key = ["a", "b"]` arrays. Comments (`#`) and blank lines ignored.
pub fn parse_toml(text: &str) -> Result<Ruleset, String> {
    let mut rs = Ruleset::default();
    // Current section kind and the index of the row being filled.
    let mut section: Option<(String, usize)> = None;
    // `[[typestate]]` header line per row, for the end-of-parse state
    // validation (errors there should point at the offending row).
    let mut ts_lines: Vec<usize> = Vec::new();

    for (lno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let at = |e: String| format!("line {}: {e}", lno + 1);
        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let idx = match name {
                "obligation" => {
                    rs.obligations.push(ObligationRule {
                        name: "",
                        doc: String::new(),
                        scope: String::new(),
                        sinks: vec![],
                        satisfiers: vec![],
                        sink_noun: String::new(),
                        contract: String::new(),
                    });
                    rs.obligations.len() - 1
                }
                "arg-rule" => {
                    rs.arg_rules.push(ArgRule {
                        name: "",
                        doc: String::new(),
                        scopes: vec![],
                        triggers: vec![],
                        forbidden: String::new(),
                        witness: String::new(),
                    });
                    rs.arg_rules.len() - 1
                }
                "reach-rule" => {
                    rs.reach_rules.push(ReachRule {
                        name: "",
                        doc: String::new(),
                        scope: String::new(),
                        entries: vec![],
                        entry_prefixes: vec![],
                        markers: vec![],
                        witness: String::new(),
                    });
                    rs.reach_rules.len() - 1
                }
                "taint" => {
                    rs.taint_rules.push(TaintRule {
                        name: "",
                        doc: String::new(),
                        exempt: vec![],
                        sources: vec![],
                        sanitizers: vec![],
                        sinks: vec![],
                        contract: String::new(),
                    });
                    rs.taint_rules.len() - 1
                }
                "gauge" => {
                    rs.gauge_rules.push(GaugeRule {
                        name: "",
                        doc: String::new(),
                        types: vec![],
                        exempt: vec![],
                    });
                    rs.gauge_rules.len() - 1
                }
                "typestate" => {
                    ts_lines.push(lno + 1);
                    rs.typestate_rules.push(TypestateRule {
                        name: "",
                        doc: String::new(),
                        scopes: vec![],
                        track: String::new(),
                        states: vec![],
                        accepting: vec![],
                        creates: vec![],
                        transitions: vec![],
                        errors: vec![],
                        exit_message: String::new(),
                    });
                    rs.typestate_rules.len() - 1
                }
                "waitgraph" => {
                    rs.waitgraph_rules.push(WaitgraphRule {
                        name: "",
                        liveness_name: "",
                        doc: String::new(),
                        queue_types: vec![],
                        blocking_pops: vec![],
                        blocking_pushes: vec![],
                        closers: vec![],
                        exempt: vec![],
                    });
                    rs.waitgraph_rules.len() - 1
                }
                other => return Err(at(format!("unknown section `[[{other}]]`"))),
            };
            section = Some((name.to_string(), idx));
            continue;
        }
        let Some((key, raw_val)) = line.split_once('=') else {
            return Err(at(format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim();
        let val = parse_value(raw_val).map_err(&at)?;
        let Some((kind, idx)) = &section else {
            return Err(at(format!("`{key}` outside any [[section]]")));
        };
        let idx = *idx;
        let want_str = |v: &Val| -> Result<String, String> {
            match v {
                Val::Str(s) => Ok(s.clone()),
                _ => Err(at(format!("`{key}` expects a string"))),
            }
        };
        let want_list = |v: &Val| -> Result<Vec<String>, String> {
            match v {
                Val::List(l) => Ok(l.clone()),
                _ => Err(at(format!("`{key}` expects an array"))),
            }
        };
        let to_pats = |v: &Val| -> Result<Vec<CallPat>, String> {
            Ok(want_list(v)?.iter().map(|s| CallPat::parse(s)).collect())
        };
        match (kind.as_str(), key) {
            ("obligation", "name") => rs.obligations[idx].name = intern_rule(&want_str(&val)?)?,
            ("obligation", "doc") => rs.obligations[idx].doc = want_str(&val)?,
            ("obligation", "scope") => rs.obligations[idx].scope = want_str(&val)?,
            ("obligation", "sinks") => rs.obligations[idx].sinks = to_pats(&val)?,
            ("obligation", "satisfiers") => rs.obligations[idx].satisfiers = to_pats(&val)?,
            ("obligation", "sink-noun") => rs.obligations[idx].sink_noun = want_str(&val)?,
            ("obligation", "contract") => rs.obligations[idx].contract = want_str(&val)?,
            ("arg-rule", "name") => rs.arg_rules[idx].name = intern_rule(&want_str(&val)?)?,
            ("arg-rule", "doc") => rs.arg_rules[idx].doc = want_str(&val)?,
            ("arg-rule", "scopes") => rs.arg_rules[idx].scopes = want_list(&val)?,
            ("arg-rule", "triggers") => rs.arg_rules[idx].triggers = to_pats(&val)?,
            ("arg-rule", "forbidden") => rs.arg_rules[idx].forbidden = want_str(&val)?,
            ("arg-rule", "witness") => rs.arg_rules[idx].witness = want_str(&val)?,
            ("reach-rule", "name") => rs.reach_rules[idx].name = intern_rule(&want_str(&val)?)?,
            ("reach-rule", "doc") => rs.reach_rules[idx].doc = want_str(&val)?,
            ("reach-rule", "scope") => rs.reach_rules[idx].scope = want_str(&val)?,
            ("reach-rule", "entries") => rs.reach_rules[idx].entries = want_list(&val)?,
            ("reach-rule", "entry-prefixes") => {
                rs.reach_rules[idx].entry_prefixes = want_list(&val)?
            }
            ("reach-rule", "markers") => rs.reach_rules[idx].markers = want_list(&val)?,
            ("reach-rule", "witness") => rs.reach_rules[idx].witness = want_str(&val)?,
            ("taint", "name") => rs.taint_rules[idx].name = intern_rule(&want_str(&val)?)?,
            ("taint", "doc") => rs.taint_rules[idx].doc = want_str(&val)?,
            ("taint", "exempt") => rs.taint_rules[idx].exempt = want_list(&val)?,
            ("taint", "sources") => rs.taint_rules[idx].sources = to_pats(&val)?,
            ("taint", "sanitizers") => rs.taint_rules[idx].sanitizers = to_pats(&val)?,
            ("taint", "sinks") => rs.taint_rules[idx].sinks = to_pats(&val)?,
            ("taint", "contract") => rs.taint_rules[idx].contract = want_str(&val)?,
            ("gauge", "name") => rs.gauge_rules[idx].name = intern_rule(&want_str(&val)?)?,
            ("gauge", "doc") => rs.gauge_rules[idx].doc = want_str(&val)?,
            ("gauge", "types") => rs.gauge_rules[idx].types = want_list(&val)?,
            ("gauge", "exempt") => rs.gauge_rules[idx].exempt = want_list(&val)?,
            ("typestate", "name") => {
                rs.typestate_rules[idx].name = intern_rule(&want_str(&val)?)?
            }
            ("typestate", "doc") => rs.typestate_rules[idx].doc = want_str(&val)?,
            ("typestate", "scopes") => rs.typestate_rules[idx].scopes = want_list(&val)?,
            ("typestate", "track") => rs.typestate_rules[idx].track = want_str(&val)?,
            ("typestate", "states") => rs.typestate_rules[idx].states = want_list(&val)?,
            ("typestate", "accepting") => {
                rs.typestate_rules[idx].accepting = want_list(&val)?
            }
            ("typestate", "creates") => {
                rs.typestate_rules[idx].creates =
                    want_list(&val)?.iter().map(|s| TsPat::parse(s)).collect()
            }
            ("typestate", "transitions") => {
                rs.typestate_rules[idx].transitions = want_list(&val)?
                    .iter()
                    .map(|s| TsArc::parse(s))
                    .collect::<Result<_, _>>()
                    .map_err(&at)?
            }
            ("typestate", "errors") => {
                rs.typestate_rules[idx].errors = want_list(&val)?
                    .iter()
                    .map(|s| TsErr::parse(s))
                    .collect::<Result<_, _>>()
                    .map_err(&at)?
            }
            ("typestate", "exit-message") => {
                rs.typestate_rules[idx].exit_message = want_str(&val)?
            }
            ("waitgraph", "name") => {
                rs.waitgraph_rules[idx].name = intern_rule(&want_str(&val)?)?
            }
            ("waitgraph", "liveness-name") => {
                rs.waitgraph_rules[idx].liveness_name = intern_rule(&want_str(&val)?)?
            }
            ("waitgraph", "doc") => rs.waitgraph_rules[idx].doc = want_str(&val)?,
            ("waitgraph", "queue-types") => {
                rs.waitgraph_rules[idx].queue_types = want_list(&val)?
            }
            ("waitgraph", "blocking-pops") => {
                rs.waitgraph_rules[idx].blocking_pops = want_list(&val)?
            }
            ("waitgraph", "blocking-pushes") => {
                rs.waitgraph_rules[idx].blocking_pushes = want_list(&val)?
            }
            ("waitgraph", "closers") => rs.waitgraph_rules[idx].closers = want_list(&val)?,
            ("waitgraph", "exempt") => rs.waitgraph_rules[idx].exempt = want_list(&val)?,
            (k, key) => return Err(at(format!("unknown key `{key}` in [[{k}]]"))),
        }
    }
    for name in rs
        .obligations
        .iter()
        .map(|r| r.name)
        .chain(rs.arg_rules.iter().map(|r| r.name))
        .chain(rs.reach_rules.iter().map(|r| r.name))
        .chain(rs.taint_rules.iter().map(|r| r.name))
        .chain(rs.gauge_rules.iter().map(|r| r.name))
        .chain(rs.typestate_rules.iter().map(|r| r.name))
        .chain(rs.waitgraph_rules.iter().map(|r| r.name))
        .chain(rs.waitgraph_rules.iter().map(|r| r.liveness_name))
    {
        if name.is_empty() {
            return Err("a rule section is missing its `name`".into());
        }
    }
    // Structural validation of each automaton, after all keys are in
    // (row order in the file is free). Errors point at the offending
    // `[[typestate]]` header so a typo'd state is a one-look fix.
    for (ti, r) in rs.typestate_rules.iter().enumerate() {
        let line = ts_lines.get(ti).copied().unwrap_or(0);
        let at = |e: String| format!("line {line}: [[typestate]] `{}`: {e}", r.name);
        if r.states.is_empty() {
            return Err(at("declares no states".into()));
        }
        if r.track != "ambient" && r.track != "binding" {
            return Err(at(format!(
                "track `{}` must be `ambient` or `binding`",
                r.track
            )));
        }
        if r.track == "binding" && r.creates.is_empty() {
            return Err(at("binding-tracked automata need `creates` patterns".into()));
        }
        let undeclared = |s: &str| !r.states.iter().any(|st| st == s);
        for t in &r.transitions {
            for s in [&t.from, &t.to] {
                if undeclared(s) {
                    return Err(at(format!(
                        "transition `{}` references undeclared state `{s}` \
                         (declared: {})",
                        t.render(),
                        r.states.join(", ")
                    )));
                }
            }
        }
        for e in &r.errors {
            if undeclared(&e.state) {
                return Err(at(format!(
                    "error row references undeclared state `{}` (declared: {})",
                    e.state,
                    r.states.join(", ")
                )));
            }
        }
        for a in &r.accepting {
            if undeclared(a) {
                return Err(at(format!(
                    "accepting state `{a}` is undeclared (declared: {})",
                    r.states.join(", ")
                )));
            }
        }
    }
    Ok(rs)
}

/// `--explain` support: a rule's engine kind, doc string, and the TOML
/// row it parses back from, looked up across every section (the
/// waitgraph row answers for both of its rule names).
pub fn explain_rule(rs: &Ruleset, name: &str) -> Option<(&'static str, String, String)> {
    let mut only = Ruleset::default();
    let (kind, doc) = if let Some(r) = rs.obligations.iter().find(|r| r.name == name) {
        only.obligations.push(r.clone());
        ("obligation (interprocedural)", r.doc.clone())
    } else if let Some(r) = rs.arg_rules.iter().find(|r| r.name == name) {
        only.arg_rules.push(r.clone());
        ("argument inspection (call-site)", r.doc.clone())
    } else if let Some(r) = rs.reach_rules.iter().find(|r| r.name == name) {
        only.reach_rules.push(r.clone());
        ("reachability (call-graph)", r.doc.clone())
    } else if let Some(r) = rs.taint_rules.iter().find(|r| r.name == name) {
        only.taint_rules.push(r.clone());
        ("taint (path-sensitive dataflow)", r.doc.clone())
    } else if let Some(r) = rs.gauge_rules.iter().find(|r| r.name == name) {
        only.gauge_rules.push(r.clone());
        ("gauge balance (path-sensitive dataflow)", r.doc.clone())
    } else if let Some(r) = rs.typestate_rules.iter().find(|r| r.name == name) {
        only.typestate_rules.push(r.clone());
        ("typestate automaton (path-sensitive dataflow)", r.doc.clone())
    } else if let Some(r) = rs
        .waitgraph_rules
        .iter()
        .find(|r| r.name == name || r.liveness_name == name)
    {
        only.waitgraph_rules.push(r.clone());
        ("wait-for graph (blocking cycles + shutdown liveness)", r.doc.clone())
    } else {
        return None;
    };
    let toml = render_toml(&only)
        .lines()
        .filter(|l| !l.starts_with('#'))
        .skip_while(|l| l.trim().is_empty())
        .collect::<Vec<_>>()
        .join("\n");
    Some((kind, doc, toml))
}

/// Renders the ruleset back to the TOML subset (used to generate the
/// checked-in file and by the round-trip test).
pub fn render_toml(rs: &Ruleset) -> String {
    fn s(out: &mut String, key: &str, v: &str) {
        out.push_str(&format!("{key} = \"{v}\"\n"));
    }
    fn l(out: &mut String, key: &str, v: &[String]) {
        let items: Vec<String> = v.iter().map(|i| format!("\"{i}\"")).collect();
        out.push_str(&format!("{key} = [{}]\n", items.join(", ")));
    }
    fn lp(out: &mut String, key: &str, v: &[CallPat]) {
        let items: Vec<String> = v
            .iter()
            .map(|p| match &p.qualifier {
                Some(q) => format!("\"{q}::{}\"", p.name),
                None => format!("\"{}\"", p.name),
            })
            .collect();
        out.push_str(&format!("{key} = [{}]\n", items.join(", ")));
    }
    let mut out = String::from(
        "# wsd-lint declarative ruleset (DESIGN.md §9.2–9.3). Each section is\n\
         # one interprocedural/dataflow/typestate rule; names must exist in\n\
         # RULE_NAMES. This file must stay identical to `ruleset::builtin()`\n\
         # (unit-tested; regenerate with the `regenerate_lint_rules_toml` test).\n",
    );
    for r in &rs.obligations {
        out.push_str("\n[[obligation]]\n");
        s(&mut out, "name", r.name);
        s(&mut out, "doc", &r.doc);
        s(&mut out, "scope", &r.scope);
        lp(&mut out, "sinks", &r.sinks);
        lp(&mut out, "satisfiers", &r.satisfiers);
        s(&mut out, "sink-noun", &r.sink_noun);
        s(&mut out, "contract", &r.contract);
    }
    for r in &rs.arg_rules {
        out.push_str("\n[[arg-rule]]\n");
        s(&mut out, "name", r.name);
        s(&mut out, "doc", &r.doc);
        l(&mut out, "scopes", &r.scopes);
        lp(&mut out, "triggers", &r.triggers);
        s(&mut out, "forbidden", &r.forbidden);
        s(&mut out, "witness", &r.witness);
    }
    for r in &rs.reach_rules {
        out.push_str("\n[[reach-rule]]\n");
        s(&mut out, "name", r.name);
        s(&mut out, "doc", &r.doc);
        s(&mut out, "scope", &r.scope);
        l(&mut out, "entries", &r.entries);
        l(&mut out, "entry-prefixes", &r.entry_prefixes);
        l(&mut out, "markers", &r.markers);
        s(&mut out, "witness", &r.witness);
    }
    for r in &rs.taint_rules {
        out.push_str("\n[[taint]]\n");
        s(&mut out, "name", r.name);
        s(&mut out, "doc", &r.doc);
        l(&mut out, "exempt", &r.exempt);
        lp(&mut out, "sources", &r.sources);
        lp(&mut out, "sanitizers", &r.sanitizers);
        lp(&mut out, "sinks", &r.sinks);
        s(&mut out, "contract", &r.contract);
    }
    for r in &rs.gauge_rules {
        out.push_str("\n[[gauge]]\n");
        s(&mut out, "name", r.name);
        s(&mut out, "doc", &r.doc);
        l(&mut out, "types", &r.types);
        l(&mut out, "exempt", &r.exempt);
    }
    for r in &rs.typestate_rules {
        out.push_str("\n[[typestate]]\n");
        s(&mut out, "name", r.name);
        s(&mut out, "doc", &r.doc);
        l(&mut out, "scopes", &r.scopes);
        s(&mut out, "track", &r.track);
        l(&mut out, "states", &r.states);
        l(&mut out, "accepting", &r.accepting);
        let creates: Vec<String> = r.creates.iter().map(|p| p.render()).collect();
        l(&mut out, "creates", &creates);
        let transitions: Vec<String> = r.transitions.iter().map(|t| t.render()).collect();
        l(&mut out, "transitions", &transitions);
        let errors: Vec<String> = r.errors.iter().map(|e| e.render()).collect();
        l(&mut out, "errors", &errors);
        s(&mut out, "exit-message", &r.exit_message);
    }
    for r in &rs.waitgraph_rules {
        out.push_str("\n[[waitgraph]]\n");
        s(&mut out, "name", r.name);
        s(&mut out, "liveness-name", r.liveness_name);
        s(&mut out, "doc", &r.doc);
        l(&mut out, "queue-types", &r.queue_types);
        l(&mut out, "blocking-pops", &r.blocking_pops);
        l(&mut out, "blocking-pushes", &r.blocking_pushes);
        l(&mut out, "closers", &r.closers);
        l(&mut out, "exempt", &r.exempt);
    }
    out
}

/// Fills a message template: `{fn}`, `{call}`, `{file}`, `{line}`, ...
pub fn fill(template: &str, pairs: &[(&str, &str)]) -> String {
    let mut out = template.to_string();
    for (k, v) in pairs {
        out = out.replace(&format!("{{{k}}}"), v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn callpat_parses_and_matches() {
        let bare = CallPat::parse("enqueue");
        assert_eq!(bare.qualifier, None);
        let q = CallPat::parse("RequestParser::new");
        assert_eq!(q.qualifier.as_deref(), Some("RequestParser"));
        assert_eq!(q.name, "new");
        let deep = CallPat::parse("a::b::c");
        assert_eq!(deep.qualifier.as_deref(), Some("b"));
        assert_eq!(deep.name, "c");
    }

    #[test]
    fn toml_round_trips_the_builtin() {
        let rs = builtin();
        let text = render_toml(&rs);
        let parsed = parse_toml(&text).expect("round trip");
        assert_eq!(parsed, rs);
    }

    #[test]
    fn checked_in_ruleset_matches_builtin() {
        let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        let loaded = load(&root).expect("load workspace ruleset");
        assert_eq!(
            loaded,
            builtin(),
            "lint-rules.toml has drifted from ruleset::builtin() — regenerate \
             it with ruleset::render_toml(&builtin())"
        );
    }

    #[test]
    fn absent_file_falls_back_to_builtin() {
        let rs = load(Path::new("/nonexistent-fixture-root")).unwrap();
        assert_eq!(rs, builtin());
    }

    #[test]
    fn unknown_rule_name_is_rejected() {
        let err = parse_toml("[[gauge]]\nname = \"no-such-rule\"\n").unwrap_err();
        assert!(err.contains("no-such-rule"), "{err}");
    }

    #[test]
    fn malformed_value_is_rejected() {
        assert!(parse_toml("[[gauge]]\nname = 42\n").is_err());
        assert!(parse_toml("[[nope]]\n").is_err());
        assert!(parse_toml("name = \"x\"\n").is_err());
    }

    #[test]
    fn tspat_parses_every_spelling() {
        assert_eq!(TsPat::parse("*"), TsPat::Any);
        assert_eq!(
            TsPat::parse("wal.append"),
            TsPat::Recv { recv: "wal".into(), name: "append".into() }
        );
        assert_eq!(TsPat::parse("scratch::checkout"), TsPat::Call(CallPat::parse("scratch::checkout")));
        assert_eq!(TsPat::parse("set_timer"), TsPat::Call(CallPat::parse("set_timer")));
        for spelling in ["*", "wal.append", "scratch::checkout", "set_timer"] {
            assert_eq!(TsPat::parse(spelling).render(), spelling);
        }
    }

    #[test]
    fn undeclared_state_is_rejected_with_the_header_line() {
        let toml = "\n[[typestate]]\nname = \"wal-ack-before-durable\"\n\
                    track = \"ambient\"\nstates = [\"idle\", \"appended\"]\n\
                    accepting = [\"idle\"]\n\
                    transitions = [\"idle => durible : wal.append\"]\n";
        let err = parse_toml(toml).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("undeclared state `durible`"), "{err}");

        let toml = "[[typestate]]\nname = \"wal-ack-before-durable\"\n\
                    track = \"ambient\"\nstates = [\"idle\"]\n\
                    accepting = [\"done\"]\n";
        let err = parse_toml(toml).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("accepting state `done`"), "{err}");
    }

    #[test]
    fn bad_track_and_bindingless_creates_are_rejected() {
        let toml = "[[typestate]]\nname = \"wal-ack-before-durable\"\n\
                    track = \"global\"\nstates = [\"idle\"]\n";
        assert!(parse_toml(toml).unwrap_err().contains("`global`"));
        let toml = "[[typestate]]\nname = \"scratch-use-after-take\"\n\
                    track = \"binding\"\nstates = [\"live\"]\n";
        assert!(parse_toml(toml).unwrap_err().contains("creates"));
    }

    #[test]
    fn malformed_transition_row_is_rejected() {
        let toml = "[[typestate]]\nname = \"wal-ack-before-durable\"\n\
                    track = \"ambient\"\nstates = [\"idle\"]\n\
                    transitions = [\"idle -> idle : f\"]\n";
        let err = parse_toml(toml).unwrap_err();
        assert!(err.contains("from => to"), "{err}");
    }

    /// Not a check: rewrites the checked-in `lint-rules.toml` from
    /// [`builtin`]. Run with `cargo test -p wsd-lint regenerate -- --ignored`
    /// after changing the builtin ruleset.
    #[test]
    #[ignore = "writes the checked-in lint-rules.toml"]
    fn regenerate_lint_rules_toml() {
        let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        std::fs::write(root.join("lint-rules.toml"), render_toml(&builtin())).unwrap();
    }

    #[test]
    fn fill_replaces_placeholders() {
        assert_eq!(
            fill("sink `{call}` in {fn}", &[("call", "enqueue"), ("fn", "D::f")]),
            "sink `enqueue` in D::f"
        );
    }
}
