//! The declarative ruleset: obligation / taint / gauge rules as data.
//!
//! v3 re-expresses the hand-written interprocedural rules as rows in a
//! [`Ruleset`] — `{sources, sanitizers, sinks}` triples plus message
//! templates — compiled by [`crate::summaries`] into per-function facts
//! and evaluated by the generic engines in [`crate::interproc`] and
//! [`crate::dataflow`]. A new "X must happen before Y" invariant (e.g.
//! ROADMAP item 5's `auth-before-enqueue`) is a one-row addition here
//! plus a name in [`crate::rules::RULE_NAMES`], not a new analysis.
//!
//! The checked-in `lint-rules.toml` at the workspace root is the
//! canonical copy; [`load`] parses it with a hand-rolled TOML-subset
//! reader (sections, string keys, single-line string arrays — no
//! dependency, like the rest of the crate) and falls back to
//! [`builtin`] when the file is absent (fixture roots, `--self`).
//! `builtin()` and the checked-in file must stay identical; a unit test
//! enforces it.

use crate::callgraph::CallSite;
use crate::rules::RULE_NAMES;
use std::path::Path;

/// A call-site pattern: `name` or `Qualifier::name`. A bare name
/// matches any call of that name (method, free, or path-qualified); a
/// qualified pattern additionally requires the call's last path
/// segment (`RequestParser::new`, `xml::parse`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallPat {
    /// Required qualifier (last path segment), if any.
    pub qualifier: Option<String>,
    /// The called name.
    pub name: String,
}

impl CallPat {
    /// Parses `"name"` or `"Qualifier::name"`.
    pub fn parse(s: &str) -> CallPat {
        match s.rsplit_once("::") {
            Some((q, n)) => CallPat {
                qualifier: Some(q.rsplit("::").next().unwrap_or(q).to_string()),
                name: n.to_string(),
            },
            None => CallPat {
                qualifier: None,
                name: s.to_string(),
            },
        }
    }

    /// Whether this pattern matches a call site.
    pub fn matches(&self, c: &CallSite) -> bool {
        self.name == c.name
            && match &self.qualifier {
                None => true,
                Some(q) => c.qualifier.as_deref() == Some(q.as_str()),
            }
    }

    /// Whether any pattern in `pats` matches `c`.
    pub fn any(pats: &[CallPat], c: &CallSite) -> bool {
        pats.iter().any(|p| p.matches(c))
    }
}

/// "Every path into a sink must have passed a satisfier first" —
/// unsatisfied sinks propagate the obligation to callers; an entry
/// point reached with the obligation still open is a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObligationRule {
    /// Rule id (must be in [`RULE_NAMES`]).
    pub name: &'static str,
    /// Path prefix the rule is scoped to.
    pub scope: String,
    /// Sink calls that demand the obligation.
    pub sinks: Vec<CallPat>,
    /// Calls that satisfy it (directly or transitively).
    pub satisfiers: Vec<CallPat>,
    /// Noun used in witness chains (`"forward sink"`).
    pub sink_noun: String,
    /// Excerpt template; `{fn}` is the entry-point function.
    pub contract: String,
}

/// "A trigger call's argument text must not contain a forbidden
/// spelling" (serve sites taking `Limits::default()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgRule {
    /// Rule id.
    pub name: &'static str,
    /// Path prefixes the rule is scoped to (any match applies).
    pub scopes: Vec<String>,
    /// Calls whose argument lists are inspected.
    pub triggers: Vec<CallPat>,
    /// Forbidden substring of the (blanked) argument text.
    pub forbidden: String,
    /// Witness template; `{call}`, `{fn}`, `{file}`, `{line}`.
    pub witness: String,
}

/// "No function reachable from an entry point may contain a forbidden
/// spelling" (zero-alloc drain path). Suppressions on call-site lines
/// are edge-aware: they prune propagation through that edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachRule {
    /// Rule id.
    pub name: &'static str,
    /// Path prefix entry points must live under.
    pub scope: String,
    /// Exact entry-point function names.
    pub entries: Vec<String>,
    /// Entry-point name prefixes (`route_raw` matches `route_raw_ack`).
    pub entry_prefixes: Vec<String>,
    /// Forbidden spellings, matched lexically in reachable bodies.
    pub markers: Vec<String>,
    /// Witness template; `{marker}`, `{fn}`, `{chain}`.
    pub witness: String,
}

/// "Bytes from a source must pass a sanitizer before reaching a sink"
/// — a variable-level taint lattice evaluated by [`crate::dataflow`],
/// with interprocedural source/sanitizer/sink summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintRule {
    /// Rule id.
    pub name: &'static str,
    /// Path prefixes exempt from the rule (the crates that implement
    /// the primitives themselves).
    pub exempt: Vec<String>,
    /// Calls whose results (and `&mut` arguments) become tainted.
    pub sources: Vec<CallPat>,
    /// Calls that clear taint from their arguments.
    pub sanitizers: Vec<CallPat>,
    /// Calls that must never receive a tainted argument.
    pub sinks: Vec<CallPat>,
    /// Excerpt template; `{call}`, `{var}`, `{src}`, `{file}`, `{line}`.
    pub contract: String,
}

/// "Every gauge increment is matched by a decrement on all paths out
/// of the enclosing function" — checked per function, only for gauge
/// classes the function both increments and decrements (balance intent
/// is local; cross-function pairs like push/pop counters are exempt).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeRule {
    /// Rule id.
    pub name: &'static str,
    /// Field base types treated as gauges.
    pub types: Vec<String>,
    /// Path prefixes exempt (the telemetry crate implements gauges).
    pub exempt: Vec<String>,
}

/// The full declarative ruleset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ruleset {
    /// Obligation-propagation rules.
    pub obligations: Vec<ObligationRule>,
    /// Argument-inspection rules.
    pub arg_rules: Vec<ArgRule>,
    /// Reachability rules.
    pub reach_rules: Vec<ReachRule>,
    /// Taint-dataflow rules.
    pub taint_rules: Vec<TaintRule>,
    /// Gauge-balance rules.
    pub gauge_rules: Vec<GaugeRule>,
}

fn pats(names: &[&str]) -> Vec<CallPat> {
    names.iter().map(|n| CallPat::parse(n)).collect()
}

fn strs(names: &[&str]) -> Vec<String> {
    names.iter().map(|n| n.to_string()).collect()
}

/// The built-in ruleset — must stay identical to the checked-in
/// `lint-rules.toml` (used directly for roots without the file:
/// fixture trees, `--self`).
pub fn builtin() -> Ruleset {
    Ruleset {
        obligations: vec![
            ObligationRule {
                name: "wsa-rewrite-before-forward",
                scope: "crates/core/".into(),
                sinks: pats(&["enqueue", "ack_enqueue"]),
                satisfiers: pats(&["rewrite_for_forward", "splice_forward"]),
                sink_noun: "forward sink".into(),
                contract: "path to forward enqueue without a ReplyTo rewrite \
                           (no rewrite on any route into `{fn}`)"
                    .into(),
            },
            ObligationRule {
                name: "shard-route-before-enqueue",
                scope: "crates/core/".into(),
                sinks: pats(&["enqueue_fleet"]),
                satisfiers: pats(&["shard_route"]),
                sink_noun: "fleet sink".into(),
                contract: "path to fleet enqueue without a shard-route step                          (no `shard_route` on any route into `{fn}`)".into(),
            },
        ],
        arg_rules: vec![ArgRule {
            name: "limits-at-serve-site",
            scopes: strs(&["crates/core/src/rt/", "crates/core/src/sim/"]),
            triggers: pats(&["serve_connection", "serve", "RequestParser::new"]),
            forbidden: "Limits::default".into(),
            witness: "serve site `{call}` in {fn} ({file}:{line}) constructs \
                      Limits::default() instead of threading config limits"
                .into(),
        }],
        reach_rules: vec![ReachRule {
            name: "alloc-in-drain",
            scope: "crates/core/".into(),
            entries: strs(&["drain"]),
            entry_prefixes: strs(&["route_raw"]),
            markers: strs(&["String::from(", ".to_string()", "Vec::new()", "format!("]),
            witness: "allocation `{marker}` in {fn} on drain path: {chain}".into(),
        }],
        taint_rules: vec![TaintRule {
            name: "unvalidated-envelope-to-sink",
            exempt: strs(&["crates/http/", "crates/xml/", "crates/soap/"]),
            sources: pats(&["try_read", "feed"]),
            sanitizers: pats(&[
                "verify_element",
                "verify_element_with_prefixes",
                "Envelope::parse",
                "xml::parse",
                "Document::parse",
            ]),
            sinks: pats(&[
                "splice_forward",
                "splice_forward_into",
                "append",
                "append_durable",
                "enqueue",
                "ack_enqueue",
                "enqueue_fleet",
            ]),
            contract: "unvalidated bytes reach `{call}`: `{var}` tainted by \
                       `{src}` at {file}:{line} was never sanitized"
                .into(),
        }],
        gauge_rules: vec![GaugeRule {
            name: "gauge-balance",
            types: strs(&["Gauge"]),
            exempt: strs(&["crates/telemetry/"]),
        }],
    }
}

/// Loads `<root>/lint-rules.toml`, falling back to [`builtin`] when the
/// file is absent. A present-but-malformed file is an error: a typo'd
/// ruleset silently reverting to defaults would un-enforce rules.
pub fn load(root: &Path) -> Result<Ruleset, String> {
    let path = root.join("lint-rules.toml");
    // wsd-lint: allow(raw-file-io): the ruleset is checked-in lint config, not durable state
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Ok(builtin());
    };
    parse_toml(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Interns a rule name against [`RULE_NAMES`] (findings carry
/// `&'static str` rule ids; an unknown name in the TOML is an error —
/// every declarative rule must also be registered for suppressions and
/// SARIF rule metadata).
fn intern_rule(name: &str) -> Result<&'static str, String> {
    RULE_NAMES
        .iter()
        .find(|r| **r == name)
        .copied()
        .ok_or_else(|| format!("unknown rule name `{name}` (not in RULE_NAMES)"))
}

/// One parsed `key = value` where value is a string or string array.
enum Val {
    Str(String),
    List(Vec<String>),
}

fn parse_value(raw: &str) -> Result<Val, String> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(end) = rest.rfind('"') else {
            return Err("unterminated string".into());
        };
        return Ok(Val::Str(rest[..end].to_string()));
    }
    if let Some(rest) = raw.strip_prefix('[') {
        let Some(body) = rest.strip_suffix(']') else {
            return Err("unterminated array (arrays must be single-line)".into());
        };
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let inner = part
                .strip_prefix('"')
                .and_then(|p| p.strip_suffix('"'))
                .ok_or_else(|| format!("array item `{part}` is not a quoted string"))?;
            items.push(inner.to_string());
        }
        return Ok(Val::List(items));
    }
    Err(format!("unsupported value `{raw}` (expected \"str\" or [\"a\", ...])"))
}

/// Hand-rolled parser for the TOML subset the ruleset uses:
/// `[[section]]` table arrays, `key = "string"`, and single-line
/// `key = ["a", "b"]` arrays. Comments (`#`) and blank lines ignored.
pub fn parse_toml(text: &str) -> Result<Ruleset, String> {
    let mut rs = Ruleset::default();
    // Current section kind and the index of the row being filled.
    let mut section: Option<(String, usize)> = None;

    for (lno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let at = |e: String| format!("line {}: {e}", lno + 1);
        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let idx = match name {
                "obligation" => {
                    rs.obligations.push(ObligationRule {
                        name: "",
                        scope: String::new(),
                        sinks: vec![],
                        satisfiers: vec![],
                        sink_noun: String::new(),
                        contract: String::new(),
                    });
                    rs.obligations.len() - 1
                }
                "arg-rule" => {
                    rs.arg_rules.push(ArgRule {
                        name: "",
                        scopes: vec![],
                        triggers: vec![],
                        forbidden: String::new(),
                        witness: String::new(),
                    });
                    rs.arg_rules.len() - 1
                }
                "reach-rule" => {
                    rs.reach_rules.push(ReachRule {
                        name: "",
                        scope: String::new(),
                        entries: vec![],
                        entry_prefixes: vec![],
                        markers: vec![],
                        witness: String::new(),
                    });
                    rs.reach_rules.len() - 1
                }
                "taint" => {
                    rs.taint_rules.push(TaintRule {
                        name: "",
                        exempt: vec![],
                        sources: vec![],
                        sanitizers: vec![],
                        sinks: vec![],
                        contract: String::new(),
                    });
                    rs.taint_rules.len() - 1
                }
                "gauge" => {
                    rs.gauge_rules.push(GaugeRule {
                        name: "",
                        types: vec![],
                        exempt: vec![],
                    });
                    rs.gauge_rules.len() - 1
                }
                other => return Err(at(format!("unknown section `[[{other}]]`"))),
            };
            section = Some((name.to_string(), idx));
            continue;
        }
        let Some((key, raw_val)) = line.split_once('=') else {
            return Err(at(format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim();
        let val = parse_value(raw_val).map_err(&at)?;
        let Some((kind, idx)) = &section else {
            return Err(at(format!("`{key}` outside any [[section]]")));
        };
        let idx = *idx;
        let want_str = |v: &Val| -> Result<String, String> {
            match v {
                Val::Str(s) => Ok(s.clone()),
                _ => Err(at(format!("`{key}` expects a string"))),
            }
        };
        let want_list = |v: &Val| -> Result<Vec<String>, String> {
            match v {
                Val::List(l) => Ok(l.clone()),
                _ => Err(at(format!("`{key}` expects an array"))),
            }
        };
        let to_pats = |v: &Val| -> Result<Vec<CallPat>, String> {
            Ok(want_list(v)?.iter().map(|s| CallPat::parse(s)).collect())
        };
        match (kind.as_str(), key) {
            ("obligation", "name") => rs.obligations[idx].name = intern_rule(&want_str(&val)?)?,
            ("obligation", "scope") => rs.obligations[idx].scope = want_str(&val)?,
            ("obligation", "sinks") => rs.obligations[idx].sinks = to_pats(&val)?,
            ("obligation", "satisfiers") => rs.obligations[idx].satisfiers = to_pats(&val)?,
            ("obligation", "sink-noun") => rs.obligations[idx].sink_noun = want_str(&val)?,
            ("obligation", "contract") => rs.obligations[idx].contract = want_str(&val)?,
            ("arg-rule", "name") => rs.arg_rules[idx].name = intern_rule(&want_str(&val)?)?,
            ("arg-rule", "scopes") => rs.arg_rules[idx].scopes = want_list(&val)?,
            ("arg-rule", "triggers") => rs.arg_rules[idx].triggers = to_pats(&val)?,
            ("arg-rule", "forbidden") => rs.arg_rules[idx].forbidden = want_str(&val)?,
            ("arg-rule", "witness") => rs.arg_rules[idx].witness = want_str(&val)?,
            ("reach-rule", "name") => rs.reach_rules[idx].name = intern_rule(&want_str(&val)?)?,
            ("reach-rule", "scope") => rs.reach_rules[idx].scope = want_str(&val)?,
            ("reach-rule", "entries") => rs.reach_rules[idx].entries = want_list(&val)?,
            ("reach-rule", "entry-prefixes") => {
                rs.reach_rules[idx].entry_prefixes = want_list(&val)?
            }
            ("reach-rule", "markers") => rs.reach_rules[idx].markers = want_list(&val)?,
            ("reach-rule", "witness") => rs.reach_rules[idx].witness = want_str(&val)?,
            ("taint", "name") => rs.taint_rules[idx].name = intern_rule(&want_str(&val)?)?,
            ("taint", "exempt") => rs.taint_rules[idx].exempt = want_list(&val)?,
            ("taint", "sources") => rs.taint_rules[idx].sources = to_pats(&val)?,
            ("taint", "sanitizers") => rs.taint_rules[idx].sanitizers = to_pats(&val)?,
            ("taint", "sinks") => rs.taint_rules[idx].sinks = to_pats(&val)?,
            ("taint", "contract") => rs.taint_rules[idx].contract = want_str(&val)?,
            ("gauge", "name") => rs.gauge_rules[idx].name = intern_rule(&want_str(&val)?)?,
            ("gauge", "types") => rs.gauge_rules[idx].types = want_list(&val)?,
            ("gauge", "exempt") => rs.gauge_rules[idx].exempt = want_list(&val)?,
            (k, key) => return Err(at(format!("unknown key `{key}` in [[{k}]]"))),
        }
    }
    for name in rs
        .obligations
        .iter()
        .map(|r| r.name)
        .chain(rs.arg_rules.iter().map(|r| r.name))
        .chain(rs.reach_rules.iter().map(|r| r.name))
        .chain(rs.taint_rules.iter().map(|r| r.name))
        .chain(rs.gauge_rules.iter().map(|r| r.name))
    {
        if name.is_empty() {
            return Err("a rule section is missing its `name`".into());
        }
    }
    Ok(rs)
}

/// Renders the ruleset back to the TOML subset (used to generate the
/// checked-in file and by the round-trip test).
pub fn render_toml(rs: &Ruleset) -> String {
    fn s(out: &mut String, key: &str, v: &str) {
        out.push_str(&format!("{key} = \"{v}\"\n"));
    }
    fn l(out: &mut String, key: &str, v: &[String]) {
        let items: Vec<String> = v.iter().map(|i| format!("\"{i}\"")).collect();
        out.push_str(&format!("{key} = [{}]\n", items.join(", ")));
    }
    fn lp(out: &mut String, key: &str, v: &[CallPat]) {
        let items: Vec<String> = v
            .iter()
            .map(|p| match &p.qualifier {
                Some(q) => format!("\"{q}::{}\"", p.name),
                None => format!("\"{}\"", p.name),
            })
            .collect();
        out.push_str(&format!("{key} = [{}]\n", items.join(", ")));
    }
    let mut out = String::from(
        "# wsd-lint declarative ruleset (DESIGN.md §9.2). Each section is one\n\
         # interprocedural/dataflow rule; names must exist in RULE_NAMES. This\n\
         # file must stay identical to `ruleset::builtin()` (unit-tested).\n",
    );
    for r in &rs.obligations {
        out.push_str("\n[[obligation]]\n");
        s(&mut out, "name", r.name);
        s(&mut out, "scope", &r.scope);
        lp(&mut out, "sinks", &r.sinks);
        lp(&mut out, "satisfiers", &r.satisfiers);
        s(&mut out, "sink-noun", &r.sink_noun);
        s(&mut out, "contract", &r.contract);
    }
    for r in &rs.arg_rules {
        out.push_str("\n[[arg-rule]]\n");
        s(&mut out, "name", r.name);
        l(&mut out, "scopes", &r.scopes);
        lp(&mut out, "triggers", &r.triggers);
        s(&mut out, "forbidden", &r.forbidden);
        s(&mut out, "witness", &r.witness);
    }
    for r in &rs.reach_rules {
        out.push_str("\n[[reach-rule]]\n");
        s(&mut out, "name", r.name);
        s(&mut out, "scope", &r.scope);
        l(&mut out, "entries", &r.entries);
        l(&mut out, "entry-prefixes", &r.entry_prefixes);
        l(&mut out, "markers", &r.markers);
        s(&mut out, "witness", &r.witness);
    }
    for r in &rs.taint_rules {
        out.push_str("\n[[taint]]\n");
        s(&mut out, "name", r.name);
        l(&mut out, "exempt", &r.exempt);
        lp(&mut out, "sources", &r.sources);
        lp(&mut out, "sanitizers", &r.sanitizers);
        lp(&mut out, "sinks", &r.sinks);
        s(&mut out, "contract", &r.contract);
    }
    for r in &rs.gauge_rules {
        out.push_str("\n[[gauge]]\n");
        s(&mut out, "name", r.name);
        l(&mut out, "types", &r.types);
        l(&mut out, "exempt", &r.exempt);
    }
    out
}

/// Fills a message template: `{fn}`, `{call}`, `{file}`, `{line}`, ...
pub fn fill(template: &str, pairs: &[(&str, &str)]) -> String {
    let mut out = template.to_string();
    for (k, v) in pairs {
        out = out.replace(&format!("{{{k}}}"), v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn callpat_parses_and_matches() {
        let bare = CallPat::parse("enqueue");
        assert_eq!(bare.qualifier, None);
        let q = CallPat::parse("RequestParser::new");
        assert_eq!(q.qualifier.as_deref(), Some("RequestParser"));
        assert_eq!(q.name, "new");
        let deep = CallPat::parse("a::b::c");
        assert_eq!(deep.qualifier.as_deref(), Some("b"));
        assert_eq!(deep.name, "c");
    }

    #[test]
    fn toml_round_trips_the_builtin() {
        let rs = builtin();
        let text = render_toml(&rs);
        let parsed = parse_toml(&text).expect("round trip");
        assert_eq!(parsed, rs);
    }

    #[test]
    fn checked_in_ruleset_matches_builtin() {
        let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        let loaded = load(&root).expect("load workspace ruleset");
        assert_eq!(
            loaded,
            builtin(),
            "lint-rules.toml has drifted from ruleset::builtin() — regenerate \
             it with ruleset::render_toml(&builtin())"
        );
    }

    #[test]
    fn absent_file_falls_back_to_builtin() {
        let rs = load(Path::new("/nonexistent-fixture-root")).unwrap();
        assert_eq!(rs, builtin());
    }

    #[test]
    fn unknown_rule_name_is_rejected() {
        let err = parse_toml("[[gauge]]\nname = \"no-such-rule\"\n").unwrap_err();
        assert!(err.contains("no-such-rule"), "{err}");
    }

    #[test]
    fn malformed_value_is_rejected() {
        assert!(parse_toml("[[gauge]]\nname = 42\n").is_err());
        assert!(parse_toml("[[nope]]\n").is_err());
        assert!(parse_toml("name = \"x\"\n").is_err());
    }

    #[test]
    fn fill_replaces_placeholders() {
        assert_eq!(
            fill("sink `{call}` in {fn}", &[("call", "enqueue"), ("fn", "D::f")]),
            "sink `enqueue` in D::f"
        );
    }
}
