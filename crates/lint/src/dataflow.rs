//! The intraprocedural dataflow engine (v3).
//!
//! [`crate::summaries`] computes whole-function boolean facts; this
//! module walks *inside* a function body, tracking an abstract state
//! through the statement structure of the blanked code: sequencing,
//! `if`/`else if`/`else` chains, `match` arms, `while`/`for`/`loop`
//! bodies (iterated to a fixpoint), `let ... else` diverging arms, and
//! the early exits (`return`, `?`, `break`/`continue`, panic macros).
//! It is a structural walker, not a full CFG: branches are joined with
//! a union lattice, loops run until the state stabilizes, and anything
//! the walker cannot classify degrades to a linear over-approximation
//! of the statement text (which can only *add* facts, never lose them).
//!
//! Two analyses run on the walker, both driven by the declarative
//! [`crate::ruleset`]:
//!
//! * **taint** ([`TaintRule`]) — variables bound from a source call
//!   (or passed to one by `&mut`) are tainted; a sanitizer call clears
//!   the taint of its arguments; a sink call receiving a tainted
//!   variable is a finding, with a source→sink code flow. Function
//!   summaries make it interprocedural: a fn passing a *parameter* to
//!   a sink is itself sink-like (fixpoint), and a fn transitively
//!   calling a sanitizer clears its arguments (computed in
//!   [`crate::summaries`]).
//! * **gauge balance** ([`GaugeRule`]) — for every gauge class a
//!   function both increments and decrements, each increment must be
//!   matched by a decrement on every non-panic path out of the
//!   function; the finding's flow names the increment and the exit.
//!
//! Known approximations (deliberate, all FP-safe for taint): `match`
//! pattern bindings do not inherit the scrutinee's taint, closure
//! bodies are analyzed inline with the enclosing fn, and a `return`
//! nested in braces inside one statement records the exit without
//! terminating the statement's fallthrough.

use crate::callgraph::{line_at, line_index, CallSite, Graph};
use crate::parser::ParsedFile;
use crate::rules::{is_test_path, Finding, FlowStep};
use crate::ruleset::{fill, CallPat, GaugeRule, Ruleset, TaintRule};
use crate::summaries::{contains_word, Facts, FileEntry};
use std::collections::{BTreeMap, BTreeSet};

/// How control leaves a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// `return` (or the tail of the function body).
    Return,
    /// The `?` operator.
    Try,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Panic,
    /// `break` (consumed by the nearest loop).
    Break,
    /// `continue` (consumed by the nearest loop).
    Continue,
    /// Falling off the end of the function body.
    End,
}

/// Union join for map-shaped states: keys accumulate, the first
/// witness for a key wins. This is the single join both analyses use;
/// the lattice-law tests below target it directly.
pub fn join_union<K: Ord + Clone, V: Clone>(a: &mut BTreeMap<K, V>, b: &BTreeMap<K, V>) {
    for (k, v) in b {
        a.entry(k.clone()).or_insert_with(|| v.clone());
    }
}

/// Statement context handed to [`Flow`] hooks.
pub struct StmtCtx<'a> {
    /// The statement's blanked text.
    pub text: &'a str,
    /// Byte offset of the statement start.
    pub start: usize,
    /// `let` binding introduced by this statement, if any.
    pub binding: Option<String>,
    /// 1-based line of the statement start.
    pub line: usize,
    /// True when this segment is a branch condition (`if` condition,
    /// `match` scrutinee, loop header, `let .. else` RHS): provisional
    /// facts survive the statement so [`Flow::branch`] can consume
    /// them on the branch-entry states.
    pub cond: bool,
}

/// One analysis over the walker.
pub trait Flow {
    /// The abstract state.
    type State: Clone + PartialEq + Default;
    /// Lattice join (must only grow `a`).
    fn join(&self, a: &mut Self::State, b: &Self::State);
    /// Transfer for one call site.
    fn call(&mut self, st: &mut Self::State, c: &CallSite, ctx: &StmtCtx);
    /// Branch refinement: `st` is entering a branch guarded by the
    /// condition text `cond`, on the side where the condition held
    /// (`positive`) or failed (`!positive`). The walker only calls
    /// this when it can determine the polarity (`if let`, `is_some`/
    /// `is_none`/`is_ok`/`is_err` conditions, `let .. else`, `match`
    /// arms); unclassifiable conditions refine neither side. Default:
    /// no refinement.
    fn branch(&mut self, _st: &mut Self::State, _cond: &str, _positive: bool) {}
    /// End-of-statement hook (binding assignment for taint).
    fn stmt_done(&mut self, st: &mut Self::State, ctx: &StmtCtx);
    /// A path leaves the function with state `st`.
    fn exit(&mut self, st: &Self::State, kind: ExitKind, line: usize);
}

fn is_word(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Then-branch polarity of a condition text, when determinable:
/// `Some(true)` means the then/body side is the condition-held side,
/// `Some(false)` means the then side is the condition-*failed* side
/// (`is_none`/`is_err` tests), `None` means the walker cannot tell and
/// must refine neither branch. Negated forms (`!x.is_none()`) are
/// deliberately left unclassified rather than guessed.
fn cond_polarity(cond: &str) -> Option<bool> {
    if cond.contains('!') {
        None
    } else if cond.contains("let ") {
        Some(true)
    } else if cond.contains(".is_none()") || cond.contains(".is_err()") {
        Some(false)
    } else if cond.contains(".is_some()") || cond.contains(".is_ok()") {
        Some(true)
    } else {
        None
    }
}

/// The ident starting at `i`, if any.
fn word_at(code: &str, i: usize) -> &str {
    let b = code.as_bytes();
    if i >= b.len() || !is_word(b[i]) || (i > 0 && is_word(b[i - 1])) {
        return "";
    }
    let mut j = i;
    while j < b.len() && is_word(b[j]) {
        j += 1;
    }
    &code[i..j]
}

/// Structural walker over one function body.
pub struct Walker<'a> {
    code: &'a str,
    calls: &'a [CallSite],
    /// Nested fn item spans — opaque to this fn's analysis.
    skip: Vec<(usize, usize)>,
    starts: Vec<usize>,
}

type Pending<S> = Vec<(ExitKind, usize, S)>;

impl<'a> Walker<'a> {
    /// Builds a walker for `graph_fn`'s body; returns `None` for
    /// bodyless items.
    pub fn new(
        code: &'a str,
        parsed: &ParsedFile,
        local_idx: usize,
        calls: &'a [CallSite],
    ) -> Option<(Walker<'a>, (usize, usize))> {
        let item = parsed.fns.get(local_idx)?;
        let (bs, be) = item.body?;
        let be = be.min(code.len());
        Some((
            Walker {
                code,
                calls,
                skip: parsed.nested_spans(local_idx),
                starts: line_index(code),
            },
            (bs, be),
        ))
    }

    fn line(&self, off: usize) -> usize {
        line_at(&self.starts, off)
    }

    fn in_skip(&self, off: usize) -> Option<usize> {
        self.skip.iter().find(|(s, e)| *s <= off && off < *e).map(|(_, e)| *e)
    }

    /// Runs `f` over the body span: entry state flows through the
    /// statement structure; every path out of the body reaches
    /// [`Flow::exit`] (the fall-through end as [`ExitKind::End`]).
    pub fn run<F: Flow>(&self, f: &mut F, span: (usize, usize), entry: F::State) {
        let mut pending = Vec::new();
        let (fall, _) = self.block(f, span.0, span.1, Some(entry), &mut pending);
        if let Some(st) = fall {
            f.exit(&st, ExitKind::End, self.line(span.1.saturating_sub(1).max(span.0)));
        }
        // Stray break/continue at fn level (closure bodies analyzed
        // inline) — not fn exits; dropped.
    }

    /// `{` at paren-depth 0 after `from`, with its matching `}`.
    fn find_block(&self, from: usize, limit: usize) -> Option<(usize, usize)> {
        let b = self.code.as_bytes();
        let mut pd = 0i32;
        let mut i = from;
        while i < limit {
            match b[i] {
                b'(' | b'[' => pd += 1,
                b')' | b']' => pd -= 1,
                b'{' if pd <= 0 => {
                    let mut depth = 0i32;
                    let mut j = i;
                    while j < limit {
                        match b[j] {
                            b'{' => depth += 1,
                            b'}' => {
                                depth -= 1;
                                if depth == 0 {
                                    return Some((i, j));
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    return Some((i, limit));
                }
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Next `;` at paren- and brace-depth 0 in `[from, limit)`, or
    /// `limit`.
    fn stmt_semi(&self, from: usize, limit: usize) -> usize {
        let b = self.code.as_bytes();
        let (mut pd, mut bd) = (0i32, 0i32);
        let mut i = from;
        while i < limit {
            match b[i] {
                b'(' | b'[' => pd += 1,
                b')' | b']' => pd -= 1,
                b'{' => bd += 1,
                b'}' => {
                    bd -= 1;
                    if bd < 0 {
                        return i;
                    }
                }
                b';' if pd == 0 && bd == 0 => return i,
                _ => {}
            }
            i += 1;
        }
        limit
    }

    /// Offset of the word `needle` at paren/brace depth 0 in
    /// `[from, limit)`.
    fn depth0_word(&self, needle: &str, from: usize, limit: usize) -> Option<usize> {
        let b = self.code.as_bytes();
        let (mut pd, mut bd) = (0i32, 0i32);
        let mut i = from;
        while i < limit {
            match b[i] {
                b'(' | b'[' => pd += 1,
                b')' | b']' => pd -= 1,
                b'{' => bd += 1,
                b'}' => bd -= 1,
                _ => {
                    if pd == 0 && bd == 0 && word_at(self.code, i) == needle {
                        return Some(i);
                    }
                }
            }
            i += 1;
        }
        None
    }

    fn join_opt<F: Flow>(f: &F, acc: &mut Option<F::State>, other: Option<F::State>) {
        match (acc.as_mut(), other) {
            (_, None) => {}
            (Some(a), Some(b)) => f.join(a, &b),
            (None, Some(b)) => *acc = Some(b),
        }
    }

    /// Walks one `{ ... }` span (exclusive braces). Returns the
    /// fall-through state (None when all paths diverge) and the
    /// break/continue states for the nearest enclosing loop.
    fn block<F: Flow>(
        &self,
        f: &mut F,
        s: usize,
        e: usize,
        entry: Option<F::State>,
        pending: &mut Pending<F::State>,
    ) -> (Option<F::State>, ()) {
        let b = self.code.as_bytes();
        let mut i = s;
        let mut cur = entry;
        while i < e {
            if cur.is_none() {
                break; // rest of the block is unreachable
            }
            if let Some(end) = self.in_skip(i) {
                i = end.min(e);
                continue;
            }
            let c = b[i];
            if c.is_ascii_whitespace() || c == b';' {
                i += 1;
                continue;
            }
            // Loop labels: `'outer: loop { .. }`.
            if c == b'\'' {
                let mut j = i + 1;
                while j < e && is_word(b[j]) {
                    j += 1;
                }
                if j < e && b[j] == b':' && j > i + 1 {
                    i = j + 1;
                    continue;
                }
            }
            let word = word_at(self.code, i);
            match word {
                "if" => i = self.handle_if(f, i, e, &mut cur, pending),
                "while" | "for" | "loop" => i = self.handle_loop(f, word, i, e, &mut cur, pending),
                "match" => i = self.handle_match(f, i, e, &mut cur, pending),
                "let" => i = self.handle_let(f, i, e, &mut cur, pending),
                "unsafe" | "" if c == b'{' || word == "unsafe" => {
                    let from = if word == "unsafe" { i + 6 } else { i };
                    let Some((bs, be)) = self.find_block(from, e) else {
                        i += 1;
                        continue;
                    };
                    let (fall, _) = self.block(f, bs + 1, be, cur.take(), pending);
                    cur = fall;
                    i = (be + 1).min(e);
                }
                "fn" => {
                    // Nested fn item outside the recorded skip spans
                    // (shouldn't happen) — jump past its body.
                    match self.find_block(i, e) {
                        Some((_, be)) => i = be + 1,
                        None => i = e,
                    }
                }
                _ => {
                    // Plain statement (or tail expression).
                    let end = self.stmt_semi(i, e);
                    let diverged = self.segment(f, &mut cur, i, end, pending, false);
                    if diverged {
                        cur = None;
                    }
                    i = (end + 1).min(e);
                }
            }
        }
        (cur, ())
    }

    /// `if` / `else if` / `else` chain starting at `i` (on `if`).
    fn handle_if<F: Flow>(
        &self,
        f: &mut F,
        mut i: usize,
        e: usize,
        cur: &mut Option<F::State>,
        pending: &mut Pending<F::State>,
    ) -> usize {
        let mut outs: Option<F::State> = None;
        loop {
            // Condition events run on the not-yet-taken state.
            let Some((bs, be)) = self.find_block(i + 2, e) else {
                return e;
            };
            self.segment(f, cur, i + 2, bs, pending, true);
            let cond_text = &self.code[i + 2..bs];
            let mut then_entry = cur.clone();
            if let Some(pos) = cond_polarity(cond_text) {
                if let Some(st) = then_entry.as_mut() {
                    f.branch(st, cond_text, pos);
                }
                if let Some(st) = cur.as_mut() {
                    f.branch(st, cond_text, !pos);
                }
            }
            let (fall, _) = self.block(f, bs + 1, be, then_entry, pending);
            Self::join_opt(f, &mut outs, fall);
            i = (be + 1).min(e);
            // `else` / `else if`?
            let mut j = i;
            while j < e && self.code.as_bytes()[j].is_ascii_whitespace() {
                j += 1;
            }
            if word_at(self.code, j) != "else" {
                // No else: the skip path falls through.
                Self::join_opt(f, &mut outs, cur.take());
                *cur = outs;
                return i;
            }
            let mut k = j + 4;
            while k < e && self.code.as_bytes()[k].is_ascii_whitespace() {
                k += 1;
            }
            if word_at(self.code, k) == "if" {
                i = k;
                continue;
            }
            // Trailing `else { .. }`.
            let Some((bs2, be2)) = self.find_block(k, e) else {
                return e;
            };
            let (fall, _) = self.block(f, bs2 + 1, be2, cur.take(), pending);
            Self::join_opt(f, &mut outs, fall);
            *cur = outs;
            return (be2 + 1).min(e);
        }
    }

    /// `while` / `for` / `loop` starting at `i`.
    fn handle_loop<F: Flow>(
        &self,
        f: &mut F,
        kw: &str,
        i: usize,
        e: usize,
        cur: &mut Option<F::State>,
        pending: &mut Pending<F::State>,
    ) -> usize {
        let Some((bs, be)) = self.find_block(i + kw.len(), e) else {
            return e;
        };
        // Header (condition / iterator) events.
        self.segment(f, cur, i + kw.len(), bs, pending, true);
        let header = &self.code[i + kw.len()..bs];
        let mut zero_iter = if kw == "loop" { None } else { cur.clone() };

        // Iterate the body to a fixpoint on the entry state; break
        // states collect into the loop's fall-through.
        let mut entry = cur.clone();
        if kw == "while" {
            if let Some(pos) = cond_polarity(header) {
                if let Some(st) = entry.as_mut() {
                    f.branch(st, header, pos);
                }
                if let Some(st) = zero_iter.as_mut() {
                    f.branch(st, header, !pos);
                }
            }
        }
        let mut breaks: Option<F::State> = None;
        for _ in 0..4 {
            let mut body_pending: Pending<F::State> = Vec::new();
            let (fall, _) = self.block(f, bs + 1, be, entry.clone(), &mut body_pending);
            let mut next = entry.clone();
            Self::join_opt(f, &mut next, fall);
            breaks = None;
            for (kind, _, st) in body_pending {
                match kind {
                    ExitKind::Break => Self::join_opt(f, &mut breaks, Some(st)),
                    ExitKind::Continue => Self::join_opt(f, &mut next, Some(st)),
                    _ => {}
                }
            }
            if next == entry {
                break;
            }
            entry = next;
        }
        let mut out = zero_iter;
        Self::join_opt(f, &mut out, breaks);
        *cur = out;
        (be + 1).min(e)
    }

    /// `match` starting at `i`.
    fn handle_match<F: Flow>(
        &self,
        f: &mut F,
        i: usize,
        e: usize,
        cur: &mut Option<F::State>,
        pending: &mut Pending<F::State>,
    ) -> usize {
        let Some((bs, be)) = self.find_block(i + 5, e) else {
            return e;
        };
        self.segment(f, cur, i + 5, bs, pending, true);
        let scrutinee = &self.code[i + 5..bs];
        let entry = cur.take();
        let mut outs: Option<F::State> = None;
        let mut j = bs + 1;
        let b = self.code.as_bytes();
        while j < be {
            if b[j].is_ascii_whitespace() || b[j] == b',' {
                j += 1;
                continue;
            }
            // Pattern: up to `=>` at depth 0.
            let (mut pd, mut bd) = (0i32, 0i32);
            let mut arrow = None;
            let mut k = j;
            while k + 1 < be {
                match b[k] {
                    b'(' | b'[' => pd += 1,
                    b')' | b']' => pd -= 1,
                    b'{' => bd += 1,
                    b'}' => bd -= 1,
                    b'=' if b[k + 1] == b'>' && pd == 0 && bd == 0 => {
                        arrow = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let Some(arrow) = arrow else { break };
            let mut body = arrow + 2;
            while body < be && b[body].is_ascii_whitespace() {
                body += 1;
            }
            let mut arm_state = entry.clone();
            // An arm whose pattern names the failure constructors sits
            // on the condition-failed side of the scrutinee.
            let pat_text = &self.code[j..arrow];
            let positive = !(pat_text.contains("None") || pat_text.contains("Err"));
            if let Some(st) = arm_state.as_mut() {
                f.branch(st, scrutinee, positive);
            }
            if body < be && b[body] == b'{' {
                let Some((abs, abe)) = self.find_block(body, be) else {
                    break;
                };
                let (fall, _) = self.block(f, abs + 1, abe, arm_state, pending);
                Self::join_opt(f, &mut outs, fall);
                j = abe + 1;
            } else {
                // Expression arm: up to `,` at depth 0.
                let (mut pd, mut bd) = (0i32, 0i32);
                let mut k = body;
                while k < be {
                    match b[k] {
                        b'(' | b'[' => pd += 1,
                        b')' | b']' => pd -= 1,
                        b'{' => bd += 1,
                        b'}' => bd -= 1,
                        b',' if pd == 0 && bd == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                let diverged = self.segment(f, &mut arm_state, body, k, pending, false);
                if !diverged {
                    Self::join_opt(f, &mut outs, arm_state);
                }
                j = k + 1;
            }
        }
        *cur = outs;
        (be + 1).min(e)
    }

    /// `let` statement starting at `i`, including `let ... else`.
    fn handle_let<F: Flow>(
        &self,
        f: &mut F,
        i: usize,
        e: usize,
        cur: &mut Option<F::State>,
        pending: &mut Pending<F::State>,
    ) -> usize {
        let semi = self.stmt_semi(i, e);
        // `let PAT = RHS else { DIVERGE };`
        if let Some(else_at) = self.depth0_word("else", i, semi) {
            if let Some((bs, be)) = self.find_block(else_at + 4, semi.max(else_at + 5)) {
                self.segment(f, cur, i, else_at, pending, true);
                let cond_text = &self.code[i..else_at];
                // The else arm diverges; its fall-through (a non-
                // diverging else block — invalid Rust) is dropped. It
                // is the pattern-match-failed side of the binding.
                let mut else_entry = cur.clone();
                if let Some(st) = else_entry.as_mut() {
                    f.branch(st, cond_text, false);
                }
                let _ = self.block(f, bs + 1, be, else_entry, pending);
                // Binding applies on the continue (match-held) path.
                if let Some(st) = cur.as_mut() {
                    f.branch(st, cond_text, true);
                    let ctx = StmtCtx {
                        text: cond_text,
                        start: i,
                        binding: crate::summaries::let_binding(cond_text),
                        line: self.line(i),
                        cond: false,
                    };
                    f.stmt_done(st, &ctx);
                }
                return (semi + 1).min(e);
            }
        }
        // `let x = { ... };` — a block-expression RHS (the lock-scope
        // idiom). Walked structurally: early `return`s inside the
        // block exit with the state *at that point*, not with events
        // sequenced later in the block.
        if let Some((bs, be)) = self.rhs_block(i, semi) {
            self.segment(f, cur, i, bs, pending, false);
            let (fall, _) = self.block(f, bs + 1, be, cur.take(), pending);
            *cur = fall;
            if cur.is_some() && be + 1 < semi {
                self.segment(f, cur, be + 1, semi, pending, false);
            }
            if let Some(st) = cur.as_mut() {
                let text = &self.code[i..semi];
                let ctx = StmtCtx {
                    text,
                    start: i,
                    binding: crate::summaries::let_binding(text),
                    line: self.line(i),
                    cond: false,
                };
                f.stmt_done(st, &ctx);
            }
            return (semi + 1).min(e);
        }
        let diverged = self.segment(f, cur, i, semi, pending, false);
        if diverged {
            *cur = None;
        }
        (semi + 1).min(e)
    }

    /// The `{ ... }` span of a `let x = { ... };` statement whose RHS
    /// is exactly a block expression (`= {` with only whitespace
    /// between) — struct literals, closures, `if`/`match` RHS all stay
    /// on the linear path.
    fn rhs_block(&self, i: usize, semi: usize) -> Option<(usize, usize)> {
        let b = self.code.as_bytes();
        let (mut pd, mut bd) = (0i32, 0i32);
        let mut k = i;
        while k < semi {
            match b[k] {
                b'(' | b'[' => pd += 1,
                b')' | b']' => pd -= 1,
                b'{' => bd += 1,
                b'}' => bd -= 1,
                b'=' if pd == 0 && bd == 0 => {
                    // A bare binding `=`: not `==`, `=>`, `<=` etc.
                    if b.get(k + 1) == Some(&b'=')
                        || b.get(k + 1) == Some(&b'>')
                        || (k > 0 && b"=<>!+-*/%&|^".contains(&b[k - 1]))
                    {
                        k += 1;
                        continue;
                    }
                    let mut j = k + 1;
                    while j < semi && b[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if j < semi && b[j] == b'{' {
                        return self.find_block(j, semi);
                    }
                    return None;
                }
                _ => {}
            }
            k += 1;
        }
        None
    }

    /// Linear evaluation of a statement/segment: calls and exit tokens
    /// in offset order, then the end-of-statement hook. Returns whether
    /// the segment terminates its path (diverges).
    fn segment<F: Flow>(
        &self,
        f: &mut F,
        cur: &mut Option<F::State>,
        s: usize,
        e: usize,
        pending: &mut Pending<F::State>,
        cond: bool,
    ) -> bool {
        let Some(st) = cur.as_mut() else {
            return false;
        };
        let text = &self.code[s..e];
        let ctx = StmtCtx {
            text,
            start: s,
            binding: if word_at(self.code, s) == "let" {
                crate::summaries::let_binding(text)
            } else {
                None
            },
            line: self.line(s),
            cond,
        };

        enum Ev {
            Call(usize),
            Tok(ExitKind, usize, bool), // kind, offset, at-depth-0
        }
        let mut evs: Vec<(usize, Ev)> = Vec::new();
        for (ci, c) in self.calls.iter().enumerate() {
            if c.offset >= s && c.offset < e {
                evs.push((c.offset, Ev::Call(ci)));
            }
        }
        let b = self.code.as_bytes();
        let mut bd = 0i32;
        let mut k = s;
        while k < e {
            if self.in_skip(k).is_some() {
                k += 1;
                continue;
            }
            match b[k] {
                b'{' => bd += 1,
                b'}' => bd -= 1,
                b'?' => evs.push((k, Ev::Tok(ExitKind::Try, k, bd == 0))),
                _ => {
                    let w = word_at(self.code, k);
                    let kind = match w {
                        "return" => Some(ExitKind::Return),
                        "break" => Some(ExitKind::Break),
                        "continue" => Some(ExitKind::Continue),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                            if b.get(k + w.len()) == Some(&b'!') =>
                        {
                            Some(ExitKind::Panic)
                        }
                        _ => None,
                    };
                    if let Some(kind) = kind {
                        evs.push((k, Ev::Tok(kind, k, bd == 0)));
                    }
                    if !w.is_empty() {
                        k += w.len();
                        continue;
                    }
                }
            }
            k += 1;
        }
        evs.sort_by_key(|(off, _)| *off);

        // Deferred fn-exit terminators: `return x?` processes the call
        // and the `?` first, then emits the return with the final state.
        let mut terminator: Option<(ExitKind, usize, bool)> = None;
        for (_, ev) in evs {
            match ev {
                Ev::Call(ci) => f.call(st, &self.calls[ci], &ctx),
                Ev::Tok(ExitKind::Try, off, _) => f.exit(st, ExitKind::Try, self.line(off)),
                Ev::Tok(kind, off, d0) => {
                    if terminator.is_none() {
                        terminator = Some((kind, off, d0));
                    } else if let Some((_, _, false)) = terminator {
                        // Prefer a depth-0 terminator over a nested one.
                        if d0 {
                            terminator = Some((kind, off, d0));
                        }
                    }
                }
            }
        }
        f.stmt_done(st, &ctx);
        match terminator {
            Some((ExitKind::Break, off, d0)) => {
                pending.push((ExitKind::Break, self.line(off), st.clone()));
                d0
            }
            Some((ExitKind::Continue, off, d0)) => {
                pending.push((ExitKind::Continue, self.line(off), st.clone()));
                d0
            }
            Some((kind, off, d0)) => {
                f.exit(st, kind, self.line(off));
                d0
            }
            None => false,
        }
    }
}

// ---------------------------------------------------------------------
// Gauge balance
// ---------------------------------------------------------------------

/// Argument text of a call (inside the parens, blanked).
fn args_text<'a>(code: &'a str, c: &CallSite) -> &'a str {
    let open = code[c.offset..c.args_end.min(code.len())]
        .find('(')
        .map(|p| c.offset + p + 1);
    match open {
        Some(o) if c.args_end >= 1 && o < c.args_end => &code[o..c.args_end - 1],
        _ => "",
    }
}

struct GaugeFlow<'a> {
    code: &'a str,
    file: &'a str,
    fn_qualified: &'a str,
    tracked: BTreeSet<String>,
    findings: Vec<Finding>,
    seen: BTreeSet<(usize, String)>,
}

impl<'a> GaugeFlow<'a> {
    /// Classifies a call as +1 / -1 / reset on a tracked gauge class.
    fn classify(&self, c: &CallSite) -> Option<(String, i8)> {
        if !c.is_method {
            return None;
        }
        let seg = c.receiver.rsplit('.').next().unwrap_or("");
        if !self.tracked.contains(seg) {
            return None;
        }
        let delta = match c.name.as_str() {
            "inc" => 1,
            "dec" => -1,
            "set" => 0,
            "add" => {
                if args_text(self.code, c).trim_start().starts_with('-') {
                    -1
                } else {
                    1
                }
            }
            _ => return None,
        };
        Some((seg.to_string(), delta))
    }
}

impl<'a> Flow for GaugeFlow<'a> {
    type State = BTreeMap<String, usize>; // class -> increment line

    fn join(&self, a: &mut Self::State, b: &Self::State) {
        join_union(a, b);
    }

    fn call(&mut self, st: &mut Self::State, c: &CallSite, _ctx: &StmtCtx) {
        if let Some((class, delta)) = self.classify(c) {
            if delta > 0 {
                st.insert(class, c.line);
            } else {
                st.remove(&class);
            }
        }
    }

    fn stmt_done(&mut self, _st: &mut Self::State, _ctx: &StmtCtx) {}

    fn exit(&mut self, st: &Self::State, kind: ExitKind, line: usize) {
        if matches!(kind, ExitKind::Panic | ExitKind::Break | ExitKind::Continue) {
            return; // panic paths tear the process down, not the gauge
        }
        for (class, inc_line) in st {
            if !self.seen.insert((line, class.clone())) {
                continue;
            }
            let how = match kind {
                ExitKind::Return => "the `return` at",
                ExitKind::Try => "the `?` early exit at",
                _ => "the fall-through end at",
            };
            self.findings.push(Finding {
                rule: "gauge-balance",
                file: self.file.to_string(),
                line: *inc_line,
                excerpt: format!(
                    "gauge `{class}` incremented here is not decremented on \
                     {how} line {line} (in {})",
                    self.fn_qualified
                ),
                witness: Some(format!(
                    "{} increments `{class}` ({}:{inc_line}) -> exits at {}:{line} \
                     with the gauge still raised",
                    self.fn_qualified, self.file, self.file
                )),
                flow: vec![
                    FlowStep {
                        file: self.file.to_string(),
                        line: *inc_line,
                        message: format!("gauge `{class}` incremented"),
                    },
                    FlowStep {
                        file: self.file.to_string(),
                        line,
                        message: "path leaves the function without a matching decrement"
                            .to_string(),
                    },
                ],
            });
        }
    }
}

fn gauge_rule(
    rule: &GaugeRule,
    files: &BTreeMap<String, FileEntry>,
    graph: &Graph,
    facts: &Facts,
    findings: &mut Vec<Finding>,
) {
    for f in &graph.fns {
        if rule.exempt.iter().any(|p| f.file.starts_with(p.as_str())) || is_test_path(&f.file) {
            continue;
        }
        let Some(fields) = facts.field_types.get(&f.file) else {
            continue;
        };
        let gauge_fields: BTreeSet<&str> = fields
            .iter()
            .filter(|(_, ty)| rule.types.iter().any(|t| t == *ty))
            .map(|(n, _)| n.as_str())
            .collect();
        if gauge_fields.is_empty() {
            continue;
        }
        let Some(entry) = files.get(&f.file) else { continue };
        let code = &entry.parsed.stripped.code;
        // Only classes this fn both raises and lowers are tracked:
        // balance intent is local (push/pop counter pairs split across
        // functions are legitimately unbalanced per-fn).
        let probe = GaugeFlow {
            code,
            file: &f.file,
            fn_qualified: &f.qualified,
            tracked: gauge_fields.iter().map(|s| s.to_string()).collect(),
            findings: Vec::new(),
            seen: BTreeSet::new(),
        };
        let (mut ups, mut downs) = (BTreeSet::new(), BTreeSet::new());
        for c in &f.calls {
            if let Some((class, delta)) = probe.classify(c) {
                if delta > 0 {
                    ups.insert(class);
                } else if delta < 0 {
                    downs.insert(class);
                }
            }
        }
        let tracked: BTreeSet<String> = ups.intersection(&downs).cloned().collect();
        if tracked.is_empty() {
            continue;
        }
        let Some((walker, span)) = Walker::new(code, &entry.parsed, f.local_idx, &f.calls) else {
            continue;
        };
        let mut flow = GaugeFlow { tracked, ..probe };
        walker.run(&mut flow, span, BTreeMap::new());
        findings.append(&mut flow.findings);
    }
}

// ---------------------------------------------------------------------
// Taint
// ---------------------------------------------------------------------

/// Where a taint came from.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Origin {
    /// A real source call: (source name, file line).
    Source(String, usize),
    /// A function parameter (used for sink-like summaries only).
    Param,
}

type TaintState = BTreeMap<String, Origin>;

struct TaintFlow<'a> {
    code: &'a str,
    file: &'a str,
    rule: &'a TaintRule,
    facts: &'a Facts,
    graph: &'a Graph,
    taint_idx: usize,
    sink_like: &'a BTreeSet<usize>,
    /// Per-statement scratch: RHS produced a fresh taint / was
    /// sanitized.
    rhs_taint: Option<Origin>,
    rhs_clean: bool,
    /// Summary output: some parameter reached a sink.
    param_to_sink: bool,
    record: bool,
    findings: Vec<Finding>,
    seen: &'a mut BTreeSet<(String, usize, String)>,
}

/// `&mut ident` occurrences in an argument list.
fn mut_ref_args(args: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = args[from..].find("&mut ") {
        let s = from + p + 5;
        let b = args.as_bytes();
        let mut j = s;
        while j < b.len() && is_word(b[j]) {
            j += 1;
        }
        if j > s {
            out.push(&args[s..j]);
        }
        from = j.max(s + 1);
    }
    out
}

impl<'a> TaintFlow<'a> {
    fn is_sanitizer(&self, c: &CallSite) -> bool {
        CallPat::any(&self.rule.sanitizers, c)
            || c.callee
                .is_some_and(|t| self.facts.fns[t].sanitizes.contains(&self.taint_idx))
    }

    fn is_source(&self, c: &CallSite) -> bool {
        CallPat::any(&self.rule.sources, c)
    }

    fn is_sink(&self, c: &CallSite) -> bool {
        CallPat::any(&self.rule.sinks, c) || c.callee.is_some_and(|t| self.sink_like.contains(&t))
    }
}

impl<'a> Flow for TaintFlow<'a> {
    type State = TaintState;

    fn join(&self, a: &mut Self::State, b: &Self::State) {
        join_union(a, b);
    }

    fn call(&mut self, st: &mut Self::State, c: &CallSite, _ctx: &StmtCtx) {
        let args = args_text(self.code, c);
        if self.is_sanitizer(c) {
            let cleared: Vec<String> = st
                .keys()
                .filter(|v| contains_word(args, v))
                .cloned()
                .collect();
            for v in cleared {
                st.remove(&v);
            }
            self.rhs_clean = true;
            return;
        }
        if self.is_sink(c) {
            for (v, origin) in st.iter() {
                if !contains_word(args, v) && !contains_word(&c.receiver, v) {
                    continue;
                }
                match origin {
                    Origin::Param => self.param_to_sink = true,
                    Origin::Source(src, src_line) => {
                        if !self.record
                            || !self.seen.insert((self.file.to_string(), c.line, v.clone()))
                        {
                            continue;
                        }
                        let excerpt = fill(
                            &self.rule.contract,
                            &[
                                ("call", &c.name),
                                ("var", v),
                                ("src", src),
                                ("file", self.file),
                                ("line", &src_line.to_string()),
                            ],
                        );
                        let fn_q = self
                            .graph
                            .by_file
                            .get(self.file)
                            .and_then(|idxs| {
                                idxs.iter()
                                    .map(|i| &self.graph.fns[*i])
                                    .find(|f| f.calls.iter().any(|cc| cc.offset == c.offset))
                            })
                            .map(|f| f.qualified.as_str())
                            .unwrap_or("?");
                        self.findings.push(Finding {
                            rule: self.rule.name,
                            file: self.file.to_string(),
                            line: c.line,
                            excerpt,
                            witness: Some(format!(
                                "`{v}` tainted by `{src}` ({}:{src_line}) reaches sink \
                                 `{}` ({}:{}) in {fn_q} with no sanitizer on the path",
                                self.file, c.name, self.file, c.line
                            )),
                            flow: vec![
                                FlowStep {
                                    file: self.file.to_string(),
                                    line: *src_line,
                                    message: format!("`{v}` tainted by source `{src}`"),
                                },
                                FlowStep {
                                    file: self.file.to_string(),
                                    line: c.line,
                                    message: format!(
                                        "sink `{}` receives `{v}` unsanitized",
                                        c.name
                                    ),
                                },
                            ],
                        });
                    }
                }
            }
            return;
        }
        if self.is_source(c) {
            self.rhs_taint = Some(Origin::Source(c.name.clone(), c.line));
            for v in mut_ref_args(args) {
                st.insert(v.to_string(), Origin::Source(c.name.clone(), c.line));
            }
        }
    }

    fn stmt_done(&mut self, st: &mut Self::State, ctx: &StmtCtx) {
        if let Some(binding) = &ctx.binding {
            if self.rhs_clean {
                st.remove(binding);
            } else if let Some(origin) = self.rhs_taint.take() {
                st.insert(binding.clone(), origin);
            } else {
                // Propagation: `let slice = &buf[..n];` inherits buf's
                // taint; a clean RHS rebinds the name clean.
                let rhs = ctx.text.split_once('=').map(|(_, r)| r).unwrap_or("");
                let inherited = st
                    .iter()
                    .find(|(v, _)| v.as_str() != binding && contains_word(rhs, v))
                    .map(|(_, o)| o.clone());
                match inherited {
                    Some(o) => {
                        st.insert(binding.clone(), o);
                    }
                    None => {
                        st.remove(binding);
                    }
                }
            }
        }
        self.rhs_taint = None;
        self.rhs_clean = false;
    }

    fn exit(&mut self, _st: &Self::State, _kind: ExitKind, _line: usize) {}
}

fn taint_rule(
    rule: &TaintRule,
    taint_idx: usize,
    files: &BTreeMap<String, FileEntry>,
    graph: &Graph,
    facts: &Facts,
    findings: &mut Vec<Finding>,
) {
    // Fixpoint on the sink-like summary: a fn whose parameter reaches a
    // sink is itself a sink at its call sites. Summary rounds run until
    // the set stops growing, then one recording round emits findings.
    let mut sink_like: BTreeSet<usize> = BTreeSet::new();
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    let mut record = false;
    for _round in 0..8 {
        let mut grown = false;
        for (fi, f) in graph.fns.iter().enumerate() {
            let Some(entry) = files.get(&f.file) else { continue };
            // Cheap relevance gate before the expensive path walk: a fn
            // with no source-, sanitizer- or sink-shaped call (including
            // calls into currently sink-like fns) can neither record a
            // finding nor grow the summary this round.
            let relevant = f.calls.iter().any(|c| {
                CallPat::any(&rule.sources, c)
                    || CallPat::any(&rule.sinks, c)
                    || CallPat::any(&rule.sanitizers, c)
                    || c.callee.is_some_and(|t| {
                        sink_like.contains(&t) || facts.fns[t].sanitizes.contains(&taint_idx)
                    })
            });
            if !relevant {
                continue;
            }
            let code = &entry.parsed.stripped.code;
            let Some((walker, span)) = Walker::new(code, &entry.parsed, f.local_idx, &f.calls)
            else {
                continue;
            };
            let exempt = rule.exempt.iter().any(|p| f.file.starts_with(p.as_str()))
                || is_test_path(&f.file);
            // A fn *named* like a sink is the sink machinery itself.
            let is_sink_impl = rule.sinks.iter().any(|p| p.name == f.name);
            let mut flow = TaintFlow {
                code,
                file: &f.file,
                rule,
                facts,
                graph,
                taint_idx,
                sink_like: &sink_like,
                rhs_taint: None,
                rhs_clean: false,
                param_to_sink: false,
                record: record && !exempt,
                findings: Vec::new(),
                seen: &mut seen,
            };
            let mut entry_state = TaintState::new();
            for p in crate::summaries::fn_params(code, &entry.parsed, f.local_idx) {
                entry_state.insert(p, Origin::Param);
            }
            walker.run(&mut flow, span, entry_state);
            let param_to_sink = flow.param_to_sink;
            let mut found = std::mem::take(&mut flow.findings);
            drop(flow);
            if param_to_sink && !is_sink_impl && sink_like.insert(fi) {
                grown = true;
            }
            findings.append(&mut found);
        }
        if record {
            break;
        }
        if !grown {
            record = true; // summaries stable — final recording round
        }
    }
}

/// Runs all declarative dataflow rules (taint + gauge balance).
/// Findings are unfiltered; suppressions apply in the caller.
pub fn run(
    files: &BTreeMap<String, FileEntry>,
    graph: &Graph,
    facts: &Facts,
    ruleset: &Ruleset,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, rule) in ruleset.taint_rules.iter().enumerate() {
        taint_rule(rule, i, files, graph, facts, &mut findings);
    }
    for rule in &ruleset.gauge_rules {
        gauge_rule(rule, files, graph, facts, &mut findings);
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::parser::{parse, ParsedFile};
    use crate::ruleset::builtin;
    use crate::summaries::compute;

    // ---- harness -------------------------------------------------------

    /// Deterministic xorshift64 PRNG — the property tests below need
    /// randomized states without a dependency (and without
    /// `Math.random`-style ambient entropy).
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    const KEYS: &[&str] = &["a", "b", "c", "d", "e", "f", "g", "h"];

    fn rand_state(rng: &mut XorShift) -> BTreeMap<String, usize> {
        let mask = rng.next();
        KEYS.iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(i, k)| (k.to_string(), (mask >> (8 + i)) as usize & 0xff))
            .collect()
    }

    fn joined(a: &BTreeMap<String, usize>, b: &BTreeMap<String, usize>) -> BTreeMap<String, usize> {
        let mut out = a.clone();
        join_union(&mut out, b);
        out
    }

    // ---- lattice laws for join_union -----------------------------------

    #[test]
    fn join_is_idempotent() {
        let mut rng = XorShift(0x9e3779b97f4a7c15);
        for _ in 0..500 {
            let a = rand_state(&mut rng);
            assert_eq!(joined(&a, &a), a);
        }
    }

    #[test]
    fn join_is_commutative_on_domains_with_first_witness_bias() {
        let mut rng = XorShift(0x2545f4914f6cdd1d);
        for _ in 0..500 {
            let (a, b) = (rand_state(&mut rng), rand_state(&mut rng));
            let ab = joined(&a, &b);
            let ba = joined(&b, &a);
            // Domains agree; witnesses are left-biased by design.
            let ka: Vec<&String> = ab.keys().collect();
            let kb: Vec<&String> = ba.keys().collect();
            assert_eq!(ka, kb);
            for (k, v) in &ab {
                assert_eq!(v, a.get(k).unwrap_or_else(|| &b[k]), "first witness wins");
            }
        }
    }

    #[test]
    fn join_is_monotone_and_preserves_existing_witnesses() {
        let mut rng = XorShift(0xdeadbeefcafef00d);
        for _ in 0..500 {
            let (a, b) = (rand_state(&mut rng), rand_state(&mut rng));
            let ab = joined(&a, &b);
            for (k, v) in &a {
                assert_eq!(ab.get(k), Some(v), "join must only grow, never rewrite");
            }
            for k in b.keys() {
                assert!(ab.contains_key(k), "join must absorb the other branch");
            }
        }
    }

    #[test]
    fn join_is_associative() {
        let mut rng = XorShift(0x0123456789abcdef);
        for _ in 0..300 {
            let (a, b, c) = (rand_state(&mut rng), rand_state(&mut rng), rand_state(&mut rng));
            assert_eq!(joined(&joined(&a, &b), &c), joined(&a, &joined(&b, &c)));
        }
    }

    // ---- transfer never loses taint ------------------------------------

    #[test]
    fn taint_transfer_never_drops_vars_on_non_sanitizer_calls() {
        // A fn whose calls cover the interesting shapes: a source, a
        // neutral helper, and a method sink.
        let src = r#"
struct S;
impl S {
    fn h(&self, sock: &mut Sock, out: &mut Out, buf: &mut [u8]) {
        let n = sock.try_read(buf);
        frob(n);
        consume(buf);
        out.append(n);
    }
}
"#;
        let parsed: BTreeMap<String, ParsedFile> =
            [("crates/store/src/x.rs".to_string(), parse(src))].into_iter().collect();
        let files: BTreeMap<String, FileEntry> = [(
            "crates/store/src/x.rs".to_string(),
            FileEntry { source: src.to_string(), parsed: parse(src) },
        )]
        .into_iter()
        .collect();
        let mut graph = build(&parsed, &|_| false);
        let rs = builtin();
        let facts = compute(&files, &mut graph, &rs);
        let rule = &rs.taint_rules[0];
        let fi = graph.fns.iter().position(|f| f.name == "h").unwrap();
        let f = &graph.fns[fi];
        let code = &files[&f.file].parsed.stripped.code;

        let sink_like = BTreeSet::new();
        let mut seen = BTreeSet::new();
        let mut rng = XorShift(0x5DEECE66D);
        for _ in 0..200 {
            let mut st: TaintState = rand_state(&mut rng)
                .into_keys()
                .map(|k| (k, Origin::Param))
                .collect();
            st.insert("n".to_string(), Origin::Source("try_read".to_string(), 5));
            for c in &f.calls {
                if CallPat::any(&rule.sanitizers, c) {
                    continue;
                }
                let before: Vec<String> = st.keys().cloned().collect();
                let ctx = StmtCtx {
                    text: &code[c.offset..c.args_end.min(code.len())],
                    start: c.offset,
                    binding: None,
                    line: c.line,
                    cond: false,
                };
                let mut flow = TaintFlow {
                    code,
                    file: &f.file,
                    rule,
                    facts: &facts,
                    graph: &graph,
                    taint_idx: 0,
                    sink_like: &sink_like,
                    rhs_taint: None,
                    rhs_clean: false,
                    param_to_sink: false,
                    record: false,
                    findings: Vec::new(),
                    seen: &mut seen,
                };
                flow.call(&mut st, c, &ctx);
                for k in &before {
                    assert!(
                        st.contains_key(k),
                        "non-sanitizer call `{}` dropped `{k}` from the taint state",
                        c.name
                    );
                }
            }
        }
    }

    // ---- walker exit structure -----------------------------------------

    struct Rec {
        exits: Vec<(ExitKind, bool)>,
    }
    impl Flow for Rec {
        type State = BTreeMap<String, usize>;
        fn join(&self, a: &mut Self::State, b: &Self::State) {
            join_union(a, b);
        }
        fn call(&mut self, st: &mut Self::State, c: &CallSite, _ctx: &StmtCtx) {
            if c.name == "set" {
                st.insert("x".to_string(), c.line);
            }
        }
        fn stmt_done(&mut self, _st: &mut Self::State, _ctx: &StmtCtx) {}
        fn exit(&mut self, st: &Self::State, kind: ExitKind, _line: usize) {
            self.exits.push((kind, st.contains_key("x")));
        }
    }

    fn exits_of(src: &str, fname: &str) -> Vec<(ExitKind, bool)> {
        let parsed: BTreeMap<String, ParsedFile> =
            [("crates/x/src/a.rs".to_string(), parse(src))].into_iter().collect();
        let graph = build(&parsed, &|_| false);
        let fi = graph.fns.iter().position(|f| f.name == fname).unwrap();
        let f = &graph.fns[fi];
        let pf = &parsed[&f.file];
        let (walker, span) =
            Walker::new(&pf.stripped.code, pf, f.local_idx, &f.calls).expect("body");
        let mut rec = Rec { exits: Vec::new() };
        walker.run(&mut rec, span, BTreeMap::new());
        rec.exits
    }

    fn kinds(v: &[(ExitKind, bool)]) -> Vec<ExitKind> {
        v.iter().map(|(k, _)| *k).collect()
    }

    #[test]
    fn straight_line_fn_falls_through_once() {
        let e = exits_of("fn f() { g(); }\n", "f");
        assert_eq!(kinds(&e), vec![ExitKind::End]);
    }

    #[test]
    fn early_return_and_fallthrough_both_exit() {
        let e = exits_of("fn f(x: bool) {\n    if x {\n        return;\n    }\n    g();\n}\n", "f");
        assert_eq!(kinds(&e), vec![ExitKind::Return, ExitKind::End]);
    }

    #[test]
    fn question_mark_exits_inline() {
        let e = exits_of("fn f() -> R {\n    g()?;\n    h();\n    done()\n}\n", "f");
        assert!(kinds(&e).contains(&ExitKind::Try), "{e:?}");
        assert!(kinds(&e).contains(&ExitKind::End), "{e:?}");
    }

    #[test]
    fn panic_branch_exits_as_panic() {
        let e = exits_of("fn f(x: bool) {\n    if x {\n        panic!(\"no\");\n    }\n    g();\n}\n", "f");
        assert_eq!(kinds(&e), vec![ExitKind::Panic, ExitKind::End]);
    }

    #[test]
    fn break_is_consumed_by_the_loop() {
        let e = exits_of(
            "fn f() {\n    loop {\n        if c() {\n            break;\n        }\n        g();\n    }\n    h();\n}\n",
            "f",
        );
        assert_eq!(kinds(&e), vec![ExitKind::End], "{e:?}");
    }

    #[test]
    fn if_else_state_joins_as_union() {
        // `set()` on one branch only: the fall-through end must still
        // see it (may-analysis union join).
        let one = exits_of(
            "fn f(x: bool) {\n    if x {\n        set();\n    } else {\n        g();\n    }\n    h();\n}\n",
            "f",
        );
        assert_eq!(one, vec![(ExitKind::End, true)]);
        let neither = exits_of(
            "fn f(x: bool) {\n    if x {\n        g();\n    } else {\n        g();\n    }\n    h();\n}\n",
            "f",
        );
        assert_eq!(neither, vec![(ExitKind::End, false)]);
    }

    #[test]
    fn match_arm_state_joins_as_union() {
        let e = exits_of(
            "fn f(v: u8) {\n    match v {\n        0 => set(),\n        _ => {}\n    }\n    h();\n}\n",
            "f",
        );
        assert_eq!(e, vec![(ExitKind::End, true)]);
    }

    #[test]
    fn let_else_diverging_arm_exits_and_fallthrough_continues() {
        let e = exits_of(
            "fn f(v: Option<u8>) {\n    let Some(x) = v else {\n        return;\n    };\n    g();\n}\n",
            "f",
        );
        assert_eq!(kinds(&e), vec![ExitKind::Return, ExitKind::End], "{e:?}");
    }

    #[test]
    fn set_before_return_reaches_that_exit_only() {
        let e = exits_of(
            "fn f(x: bool) {\n    if x {\n        set();\n        return;\n    }\n    h();\n}\n",
            "f",
        );
        assert_eq!(e, vec![(ExitKind::Return, true), (ExitKind::End, false)]);
    }

    #[test]
    fn loop_body_state_reaches_the_loop_exit() {
        // set() inside the loop: after the loop the union must carry it.
        let e = exits_of(
            "fn f() {\n    loop {\n        set();\n        if c() {\n            break;\n        }\n    }\n    h();\n}\n",
            "f",
        );
        assert_eq!(e, vec![(ExitKind::End, true)], "{e:?}");
    }
}
