//! Workspace walker: every `.rs` file we own, workspace-relative paths.

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, vendored
/// third-party code (not ours to lint), VCS metadata.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "node_modules"];

/// Collects all `.rs` files under `root`, sorted, as `/`-separated
/// workspace-relative path strings paired with absolute paths.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        // wsd-lint: allow(raw-file-io): the walker enumerates the source tree
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_own_sources_and_skips_vendor() {
        // CARGO_MANIFEST_DIR = crates/lint; workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let files = rust_files(root).unwrap();
        assert!(files.iter().any(|(rel, _)| rel == "crates/lint/src/walk.rs"));
        assert!(files.iter().all(|(rel, _)| !rel.starts_with("vendor/")));
        assert!(files.iter().all(|(rel, _)| !rel.contains("/target/")));
    }
}
