//! `wsd-lint`: the workspace invariant checker.
//!
//! The compiler cannot see the project's *disciplines* — that every
//! thread flows through `wsd-concurrent`, every timestamp through the
//! telemetry clock, every serve-site queue stays bounded. This crate
//! makes them checkable: a hand-rolled lexer ([`lexer`]) blanks strings
//! and comments so rules match only real code, the engine ([`rules`])
//! evaluates the named invariants with `#[cfg(test)]` exemption and
//! reasoned suppressions, and a ratchet baseline ([`baseline`]) fails
//! the build on *new* findings while existing debt burns down.
//!
//! No dependencies, by design: the build is offline and the linter must
//! never be the thing that breaks the build for environmental reasons.

#![warn(missing_docs)]

pub mod baseline;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use rules::{lint_source, suppressions_in, Finding, RULE_NAMES};

/// Lints every workspace `.rs` file under `root`; findings come back
/// sorted by (file, line, rule). Also returns the total suppression
/// count (all carrying reasons — reason-less ones surface as
/// `bad-suppression` findings instead).
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let mut findings = Vec::new();
    let mut suppressions = 0usize;
    for (rel, abs) in walk::rust_files(root)? {
        let Ok(source) = std::fs::read_to_string(&abs) else {
            continue; // non-UTF8 — nothing for a lexical linter to do
        };
        findings.extend(rules::lint_source(&rel, &source));
        suppressions += rules::suppressions_in(&source).len();
    }
    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    Ok((findings, suppressions))
}
