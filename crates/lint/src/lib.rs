//! `wsd-lint`: the workspace invariant checker.
//!
//! The compiler cannot see the project's *disciplines* — that every
//! thread flows through `wsd-concurrent`, every timestamp through the
//! telemetry clock, every serve-site queue stays bounded, and that no
//! CxThread blocks while holding shared state. This crate makes them
//! checkable: a hand-rolled lexer ([`lexer`]) blanks strings and
//! comments so rules match only real code, an item parser ([`parser`])
//! recovers `fn`/`impl`/`mod` structure, a call graph ([`callgraph`])
//! resolves intra-workspace calls, per-function summaries
//! ([`summaries`]) compute acquires-lock / may-block / rewrites-wsa /
//! records-telemetry-stage facts, and two rule layers evaluate the
//! named invariants — lexical ([`rules`]) and interprocedural
//! ([`interproc`]) — with `#[cfg(test)]` exemption, reasoned
//! suppressions, a ratchet baseline ([`baseline`]) that fails the build
//! only on *new* findings, and a SARIF emitter ([`sarif`]) for CI.
//!
//! No dependencies, by design: the build is offline and the linter must
//! never be the thing that breaks the build for environmental reasons.

#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod interproc;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod summaries;
pub mod walk;

use std::collections::BTreeMap;
use std::path::Path;

pub use rules::{lint_source, suppressions_in, Finding, RULE_NAMES};

/// Everything one analysis pass produces: findings (lexical +
/// interprocedural, suppression-filtered, sorted), the suppression
/// count, and the structures the findings were derived from — exposed
/// so tests (e.g. the dynamic lock-order cross-check in
/// `wsd-concurrent`) can interrogate the graph and edge set directly.
pub struct WorkspaceAnalysis {
    /// All unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Total count of well-formed, reasoned suppressions seen.
    pub suppressions: usize,
    /// The resolved workspace call graph.
    pub graph: callgraph::Graph,
    /// Per-function dataflow facts (parallel to `graph.fns`).
    pub facts: summaries::Facts,
    /// The static lock-order edge set (`held -> acquired`), for the
    /// cross-check against `wsd_concurrent::ordered::audit::edges()`.
    pub lock_edges: Vec<interproc::Edge>,
}

/// Full analysis of every workspace `.rs` file under `root`.
///
/// `self_mode` is the `--self` configuration: per-rule path scoping is
/// dropped (paths are then relative to `crates/lint`, matching no
/// scope) so the linter holds itself to the complete rule set.
pub fn analyze_workspace(root: &Path, self_mode: bool) -> std::io::Result<WorkspaceAnalysis> {
    let mut files: BTreeMap<String, summaries::FileEntry> = BTreeMap::new();
    for (rel, abs) in walk::rust_files(root)? {
        // wsd-lint: allow(raw-file-io): the linter reads the sources it lints
        let Ok(source) = std::fs::read_to_string(&abs) else {
            continue; // non-UTF8 — nothing for a lexical linter to do
        };
        let parsed = parser::parse(&source);
        files.insert(rel, summaries::FileEntry { source, parsed });
    }

    let mut findings = Vec::new();
    let mut suppressions = 0usize;
    for (rel, entry) in &files {
        findings.extend(rules::lint_source_parsed(
            rel,
            &entry.source,
            &entry.parsed,
            self_mode,
        ));
        suppressions += rules::suppressions_in(&entry.source).len();
    }

    // Interprocedural layer: test-path files are excluded from the
    // graph wholesale (fixtures deliberately seed violations, and test
    // helpers must not capture bare-name resolution).
    let parsed_for_graph: BTreeMap<String, parser::ParsedFile> = files
        .iter()
        .filter(|(rel, _)| !rules::is_test_path(rel))
        .map(|(rel, e)| (rel.clone(), parser::parse(&e.source)))
        .collect();
    let mut graph = callgraph::build(&parsed_for_graph, &|_| false);
    let facts = summaries::compute(&files, &mut graph);
    let (interproc_findings, lock_edges) = interproc::run(&files, &graph, &facts);

    // Interprocedural findings honour the same suppression comments.
    for f in interproc_findings {
        let sups = files
            .get(&f.file)
            .map(|e| rules::active_suppressions(&e.parsed.stripped.comments))
            .unwrap_or_default();
        let silenced = sups.iter().any(|(line, is_line, rule)| {
            rule == f.rule && (*line == f.line || (*is_line && line + 1 == f.line))
        });
        if !silenced {
            findings.push(f);
        }
    }

    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    Ok(WorkspaceAnalysis {
        findings,
        suppressions,
        graph,
        facts,
        lock_edges,
    })
}

/// Lints every workspace `.rs` file under `root`; findings come back
/// sorted by (file, line, rule). Also returns the total suppression
/// count (all carrying reasons — reason-less ones surface as
/// `bad-suppression` findings instead).
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let wa = analyze_workspace(root, false)?;
    Ok((wa.findings, wa.suppressions))
}
