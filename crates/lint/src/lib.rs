//! `wsd-lint`: the workspace invariant checker.
//!
//! The compiler cannot see the project's *disciplines* — that every
//! thread flows through `wsd-concurrent`, every timestamp through the
//! telemetry clock, every serve-site queue stays bounded, and that no
//! CxThread blocks while holding shared state. This crate makes them
//! checkable: a hand-rolled lexer ([`lexer`]) blanks strings and
//! comments so rules match only real code, an item parser ([`parser`])
//! recovers `fn`/`impl`/`mod` structure, a call graph ([`callgraph`])
//! resolves intra-workspace calls, per-function summaries
//! ([`summaries`]) compute acquires-lock / may-block / satisfies /
//! sanitizes facts, and three rule layers evaluate the named
//! invariants — lexical ([`rules`]), interprocedural ([`interproc`])
//! and path-sensitive dataflow ([`dataflow`]) — with the obligation,
//! taint and gauge rules expressed as *data* in a checked-in ruleset
//! ([`ruleset`], `lint-rules.toml`), `#[cfg(test)]` exemption, reasoned
//! suppressions audited for liveness (`unused-suppression`), a ratchet
//! baseline ([`baseline`]) that fails the build only on *new* findings,
//! and a SARIF emitter ([`sarif`]) with `codeFlows` for CI.
//!
//! No dependencies, by design: the build is offline and the linter must
//! never be the thing that breaks the build for environmental reasons.

#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod interproc;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod ruleset;
pub mod sarif;
pub mod summaries;
pub mod typestate;
pub mod waitgraph;
pub mod walk;

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

pub use rules::{lint_source, suppressions_in, Finding, RULE_NAMES};

/// Everything one analysis pass produces: findings (lexical +
/// interprocedural + dataflow, suppression-filtered, sorted), the
/// suppression count, and the structures the findings were derived
/// from — exposed so tests (e.g. the dynamic lock-order cross-check in
/// `wsd-concurrent`) can interrogate the graph and edge set directly.
pub struct WorkspaceAnalysis {
    /// All unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Total count of well-formed, reasoned suppressions seen.
    pub suppressions: usize,
    /// The resolved workspace call graph.
    pub graph: callgraph::Graph,
    /// Per-function dataflow facts (parallel to `graph.fns`).
    pub facts: summaries::Facts,
    /// The static lock-order edge set (`held -> acquired`), for the
    /// cross-check against `wsd_concurrent::ordered::audit::edges()`.
    pub lock_edges: Vec<interproc::Edge>,
    /// Wall-clock milliseconds per engine stage, in run order — the
    /// `--json` `check_ms` breakdown that makes budget regressions
    /// attributable to a stage.
    pub timings: Vec<(&'static str, u128)>,
}

/// Full analysis of every workspace `.rs` file under `root`.
///
/// `self_mode` is the `--self` configuration: per-rule path scoping is
/// dropped (paths are then relative to `crates/lint`, matching no
/// scope) so the linter holds itself to the complete rule set.
pub fn analyze_workspace(root: &Path, self_mode: bool) -> std::io::Result<WorkspaceAnalysis> {
    let ruleset = ruleset::load(root)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut files: BTreeMap<String, summaries::FileEntry> = BTreeMap::new();
    for (rel, abs) in walk::rust_files(root)? {
        // wsd-lint: allow(raw-file-io): the linter reads the sources it lints
        let Ok(source) = std::fs::read_to_string(&abs) else {
            continue; // non-UTF8 — nothing for a lexical linter to do
        };
        let parsed = parser::parse(&source);
        files.insert(rel, summaries::FileEntry { source, parsed });
    }

    // Suppressions that silenced at least one finding (or pruned a
    // reachability edge), as (file, directive line, rule). Whatever is
    // left over at the end is dead weight — an `unused-suppression`.
    let mut used: BTreeSet<(String, usize, String)> = BTreeSet::new();

    // wsd-lint: allow(raw-clock): measuring the linter's own stage wall time, not event time
    let mut stage_start = std::time::Instant::now();
    let mut timings: Vec<(&'static str, u128)> = Vec::new();
    let lap = |name: &'static str, start: &mut std::time::Instant, out: &mut Vec<(&'static str, u128)>| {
        out.push((name, start.elapsed().as_millis()));
        // wsd-lint: allow(raw-clock): stage timer restart for the next engine lap
        *start = std::time::Instant::now();
    };

    let mut findings = Vec::new();
    let mut suppressions = 0usize;
    for (rel, entry) in &files {
        let (fs, consumed) =
            rules::lint_source_uses(rel, &entry.source, &entry.parsed, self_mode);
        findings.extend(fs);
        for (line, rule) in consumed {
            used.insert((rel.clone(), line, rule));
        }
        suppressions += rules::suppressions_in(&entry.source).len();
    }
    lap("lexical", &mut stage_start, &mut timings);

    // Interprocedural layer: test-path files are excluded from the
    // graph wholesale (fixtures deliberately seed violations, and test
    // helpers must not capture bare-name resolution).
    let parsed_for_graph: BTreeMap<String, parser::ParsedFile> = files
        .iter()
        .filter(|(rel, _)| !rules::is_test_path(rel))
        .map(|(rel, e)| (rel.clone(), parser::parse(&e.source)))
        .collect();
    let mut graph = callgraph::build(&parsed_for_graph, &|_| false);
    let facts = summaries::compute(&files, &mut graph, &ruleset);
    lap("graph", &mut stage_start, &mut timings);
    let (interproc_findings, lock_edges, edge_allows) =
        interproc::run(&files, &graph, &facts, &ruleset);
    used.extend(edge_allows);
    lap("interproc", &mut stage_start, &mut timings);
    let dataflow_findings = dataflow::run(&files, &graph, &facts, &ruleset);
    lap("dataflow", &mut stage_start, &mut timings);
    let typestate_findings = typestate::run(&files, &graph, &ruleset);
    lap("typestate", &mut stage_start, &mut timings);
    let waitgraph_findings = waitgraph::run(&files, &graph, &facts, &ruleset);
    lap("waitgraph", &mut stage_start, &mut timings);

    // Interprocedural, dataflow, typestate and waitgraph findings
    // honour the same suppression comments.
    for f in interproc_findings
        .into_iter()
        .chain(dataflow_findings)
        .chain(typestate_findings)
        .chain(waitgraph_findings)
    {
        let sups = files
            .get(&f.file)
            .map(|e| rules::active_suppressions(&e.parsed.stripped.comments))
            .unwrap_or_default();
        let hit = sups.iter().find(|(line, is_line, rule)| {
            rule == f.rule && (*line == f.line || (*is_line && line + 1 == f.line))
        });
        if let Some((line, _, rule)) = hit {
            used.insert((f.file.clone(), *line, rule.clone()));
        } else {
            findings.push(f);
        }
    }

    // `unused-suppression`: every well-formed allow must still be
    // earning its keep. Test collateral is exempt (fixtures carry
    // deliberately stale allows), and outside `--self` so is the
    // analyzer's own source (audited by the self-run, like every other
    // rule).
    for (rel, entry) in &files {
        if rules::is_test_path(rel) {
            continue;
        }
        if !self_mode && !rules::rule_applies("unused-suppression", rel) {
            continue;
        }
        for (line, _, rule) in rules::active_suppressions(&entry.parsed.stripped.comments) {
            if entry.parsed.is_test_line(line) {
                continue;
            }
            if used.contains(&(rel.clone(), line, rule.clone())) {
                continue;
            }
            findings.push(Finding {
                rule: "unused-suppression",
                file: rel.clone(),
                line,
                excerpt: format!("allow({rule}) here silences nothing"),
                witness: Some(format!(
                    "suppression of `{rule}` at {rel}:{line} matched no finding and \
                     pruned no edge — delete it or re-justify it"
                )),
                flow: Vec::new(),
            });
        }
    }

    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    Ok(WorkspaceAnalysis {
        findings,
        suppressions,
        graph,
        facts,
        lock_edges,
        timings,
    })
}

/// Lints every workspace `.rs` file under `root`; findings come back
/// sorted by (file, line, rule). Also returns the total suppression
/// count (all carrying reasons — reason-less ones surface as
/// `bad-suppression` findings instead).
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let wa = analyze_workspace(root, false)?;
    Ok((wa.findings, wa.suppressions))
}
