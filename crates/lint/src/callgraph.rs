//! Workspace call graph over [`crate::parser`] items.
//!
//! Calls are recovered syntactically from the blanked code: an
//! identifier directly followed by `(` is a call site. A site records
//! its qualifier path (`Type::name(..)`), its receiver chain for method
//! calls (`self.inner.state.lock()` → receiver `self.inner.state`), its
//! line, and whether the argument list is empty (several sink
//! heuristics need the arity signal, e.g. `.read()` as a lock
//! acquisition vs `.read(&mut buf)` as blocking IO).
//!
//! Resolution is best-effort and intentionally conservative:
//!
//! * `Type::name` resolves to the unique workspace fn qualified as
//!   `Type::name`.
//! * bare `name(..)` resolves among *free* fns only.
//! * `.name(..)` method calls resolve among methods (same-file
//!   candidates preferred, unique-global fallback), except for names on
//!   the ambiguity skip-list (`new`, `lock`, `push`, ... — shared by
//!   std types and half the workspace), which are never resolved and
//!   are instead handled by the rules' sink/marker tables.
//!
//! Test files and `#[cfg(test)]` items are excluded from the graph
//! entirely: they neither contribute summaries nor pollute bare-name
//! resolution.

use crate::parser::ParsedFile;
use std::collections::{BTreeMap, BTreeSet};

/// Method names too generic to resolve through the graph. Calls to
/// these still appear as [`CallSite`]s (rules match them as sinks or
/// markers by name) but never link to a workspace function.
pub const AMBIGUOUS_METHODS: &[&str] = &[
    "new", "clone", "default", "len", "is_empty", "get", "set", "insert",
    "remove", "push", "pop", "iter", "into_iter", "next", "collect",
    "drain", "clear", "contains", "contains_key", "entry", "or_insert_with",
    "get_or_insert_with", "unwrap", "expect", "map", "and_then", "ok",
    "err", "as_ref", "as_mut", "as_deref", "to_string", "to_xml", "parse",
    "write", "read", "lock", "try_lock", "wait", "wait_timeout",
    "wait_until", "send", "recv", "flush", "call", "start", "stop",
    "shutdown_signal", "take", "join", "get_mut", "extend", "reserve",
    "split_off", "retain", "last", "first", "find", "filter", "fold",
    "position", "count", "any", "all", "min", "max", "sum", "rev",
    "enumerate", "zip", "chain", "skip", "saturating_sub", "saturating_add",
    "wrapping_add", "checked_sub", "to_vec", "as_bytes", "as_str", "into",
    "from", "try_into", "try_from", "cloned", "copied", "trim", "starts_with",
    "ends_with", "split", "splitn", "lines", "chars", "bytes", "fmt",
];

/// Rust keywords that can precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "let", "loop", "else",
    "in", "as", "move", "mut", "ref", "pub", "use", "mod", "impl", "trait",
    "struct", "enum", "where", "unsafe", "async", "await", "dyn", "box",
    "crate", "super", "Self", "self", "true", "false", "const", "static",
];

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (`route_raw`, `lock`, `splice_forward`).
    pub name: String,
    /// `Some("Type")` for `Type::name(..)` path calls (last path segment
    /// before the name; `std::thread::spawn` → qualifier `thread`).
    pub qualifier: Option<String>,
    /// Dotted receiver chain for method calls (`self.inner.state` for
    /// `self.inner.state.lock()`); empty for free/path calls.
    pub receiver: String,
    /// 1-based line.
    pub line: usize,
    /// Byte offset of the name within the blanked code.
    pub offset: usize,
    /// Byte offset just past the matching `)` of the argument list.
    pub args_end: usize,
    /// Whether the argument list is empty (`()`), ignoring whitespace.
    pub args_empty: bool,
    /// Whether this is a `.name(..)` method call.
    pub is_method: bool,
    /// Resolved callee, as an index into [`Graph::fns`], when resolution
    /// succeeded.
    pub callee: Option<usize>,
}

/// A function node in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    /// Repo-relative path of the defining file.
    pub file: String,
    /// Index of this fn within its [`ParsedFile::fns`].
    pub local_idx: usize,
    /// Bare name.
    pub name: String,
    /// `Type::name` or bare name.
    pub qualified: String,
    /// 1-based signature line.
    pub sig_line: usize,
    /// Call sites inside this fn's body (nested fns excluded).
    pub calls: Vec<CallSite>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Every workspace fn, in file order.
    pub fns: Vec<FnNode>,
    /// file path -> indices of fns defined there.
    pub by_file: BTreeMap<String, Vec<usize>>,
}

impl Graph {
    /// All callers of `callee_idx`, as `(caller_idx, call_line)`.
    pub fn callers_of(&self, callee_idx: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, f) in self.fns.iter().enumerate() {
            for c in &f.calls {
                if c.callee == Some(callee_idx) {
                    out.push((i, c.line));
                }
            }
        }
        out
    }
}

fn is_ident_char(c: u8) -> bool {
    (c as char).is_alphanumeric() || c == b'_'
}

/// Scans one fn body for call sites. `body` is the `(start, end)` span in
/// `code`; `skip` holds nested-fn spans whose contents belong elsewhere.
fn scan_calls(
    code: &str,
    line_of: &dyn Fn(usize) -> usize,
    body: (usize, usize),
    skip: &[(usize, usize)],
) -> Vec<CallSite> {
    let b = code.as_bytes();
    let (start, end) = body;
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if let Some(&(_, se)) = skip.iter().find(|(s, e)| *s <= i && i < *e) {
            i = se;
            continue;
        }
        let c = b[i];
        if !(c as char).is_alphabetic() && c != b'_' {
            i += 1;
            continue;
        }
        // Read the identifier.
        let id_start = i;
        while i < end && is_ident_char(b[i]) {
            i += 1;
        }
        let name = &code[id_start..i];
        // Skip whitespace between name and a possible `(` / `!` / `::<`.
        let mut j = i;
        // Turbofish: `name::<T>(...)`.
        if b.get(j) == Some(&b':') && b.get(j + 1) == Some(&b':') && b.get(j + 2) == Some(&b'<') {
            let mut depth = 0i32;
            let mut k = j + 2;
            while k < end {
                match b[k] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k;
        }
        if b.get(j) == Some(&b'!') {
            // Macro invocation: skip its delimited body so `vec![...]`
            // contents still get scanned (they're code) — actually macro
            // args ARE scanned as normal text by continuing; just don't
            // record `name` as a call.
            i = j + 1;
            continue;
        }
        if b.get(j) != Some(&b'(') {
            continue;
        }
        if KEYWORDS.contains(&name) {
            continue;
        }
        // Find the matching `)` and whether args are empty.
        let args_open = j;
        let mut depth = 0i32;
        let mut k = args_open;
        let mut non_ws = false;
        while k < end {
            match b[k] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ch => {
                    if depth >= 1 && !(ch as char).is_whitespace() {
                        non_ws = true;
                    }
                }
            }
            k += 1;
        }
        let args_end = (k + 1).min(end);

        // Classify: method call (`.name`), path call (`Seg::name`), free.
        let mut is_method = false;
        let mut qualifier: Option<String> = None;
        let mut receiver = String::new();
        // Look back past whitespace before the identifier.
        let mut p = id_start;
        while p > start && (b[p - 1] as char).is_whitespace() && b[p - 1] != b'\n' {
            p -= 1;
        }
        if p >= 2 && b[p - 1] == b':' && b[p - 2] == b':' {
            // Path call: capture the segment before `::`.
            let mut q = p - 2;
            let seg_end = q;
            while q > start && is_ident_char(b[q - 1]) {
                q -= 1;
            }
            if q < seg_end {
                qualifier = Some(code[q..seg_end].to_string());
            }
        } else if p > start && b[p - 1] == b'.' {
            is_method = true;
            // Walk back a dotted identifier chain: `a.b.c` or
            // `a.shards[i].c` (index dropped from the recorded chain).
            // Anything else — `foo().bar()` — gets an empty receiver,
            // which is fine: receiver matching is only a refinement.
            let mut segs: Vec<String> = Vec::new();
            let mut q = p - 1;
            loop {
                // Skip one balanced index group, if present.
                if q > start && b[q - 1] == b']' {
                    let mut depth = 0i32;
                    while q > start {
                        q -= 1;
                        match b[q] {
                            b']' => depth += 1,
                            b'[' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                }
                let seg_end = q;
                while q > start && is_ident_char(b[q - 1]) {
                    q -= 1;
                }
                if q == seg_end {
                    segs.clear();
                    break;
                }
                segs.push(code[q..seg_end].to_string());
                if q > start && b[q - 1] == b'.' {
                    q -= 1;
                    continue;
                }
                break;
            }
            segs.reverse();
            receiver = segs.join(".");
        }

        out.push(CallSite {
            name: name.to_string(),
            qualifier,
            receiver,
            line: line_of(id_start),
            offset: id_start,
            args_end,
            args_empty: !non_ws,
            is_method,
            callee: None,
        });
        // Continue *inside* the argument list (nested calls matter).
        i = args_open + 1;
    }
    out
}

/// Builds a line-number lookup for `code`: offset -> 1-based line.
pub fn line_index(code: &str) -> Vec<usize> {
    // starts[k] = byte offset where line k+1 begins.
    let mut starts = vec![0usize];
    for (i, b) in code.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Maps a byte offset to its 1-based line using [`line_index`] output.
pub fn line_at(starts: &[usize], offset: usize) -> usize {
    match starts.binary_search(&offset) {
        Ok(k) => k + 1,
        Err(k) => k,
    }
}

/// Builds the graph from parsed files. `files` maps repo-relative path →
/// parsed file; entries where `skip(path)` is true (test collateral) are
/// excluded wholesale.
pub fn build(files: &BTreeMap<String, ParsedFile>, skip: &dyn Fn(&str) -> bool) -> Graph {
    let mut g = Graph::default();

    // Pass 1: nodes + raw call sites.
    for (path, pf) in files {
        if skip(path) {
            continue;
        }
        let starts = line_index(&pf.stripped.code);
        for (li, f) in pf.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let calls = match f.body {
                Some(span) => {
                    let nested = pf.nested_spans(li);
                    scan_calls(
                        &pf.stripped.code,
                        &|off| line_at(&starts, off),
                        span,
                        &nested,
                    )
                }
                None => Vec::new(),
            };
            let idx = g.fns.len();
            g.fns.push(FnNode {
                file: path.clone(),
                local_idx: li,
                name: f.name.clone(),
                qualified: f.qualified.clone(),
                sig_line: f.sig_line,
                calls,
            });
            g.by_file.entry(path.clone()).or_default().push(idx);
        }
    }

    // Resolution tables.
    let mut by_qualified: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in g.fns.iter().enumerate() {
        by_qualified.entry(&f.qualified).or_default().push(i);
        if f.qualified == f.name {
            free_by_name.entry(&f.name).or_default().push(i);
        } else {
            methods_by_name.entry(&f.name).or_default().push(i);
        }
    }

    let ambiguous: BTreeSet<&str> = AMBIGUOUS_METHODS.iter().copied().collect();

    // Pass 2: resolve.
    let mut resolutions: Vec<(usize, usize, usize)> = Vec::new(); // (fn, call, callee)
    for (fi, f) in g.fns.iter().enumerate() {
        for (ci, c) in f.calls.iter().enumerate() {
            let callee = if let Some(q) = &c.qualifier {
                let key = format!("{q}::{}", c.name);
                match by_qualified.get(key.as_str()) {
                    Some(v) if v.len() == 1 => Some(v[0]),
                    _ => None,
                }
            } else if c.is_method {
                if ambiguous.contains(c.name.as_str()) {
                    None
                } else {
                    match methods_by_name.get(c.name.as_str()) {
                        Some(v) if v.len() == 1 => Some(v[0]),
                        Some(v) => {
                            // Prefer a unique same-file candidate.
                            let same: Vec<usize> = v
                                .iter()
                                .copied()
                                .filter(|&m| g.fns[m].file == f.file)
                                .collect();
                            if same.len() == 1 {
                                Some(same[0])
                            } else {
                                None
                            }
                        }
                        None => None,
                    }
                }
            } else if ambiguous.contains(c.name.as_str()) {
                None
            } else {
                match free_by_name.get(c.name.as_str()) {
                    Some(v) if v.len() == 1 => Some(v[0]),
                    _ => None,
                }
            };
            if let Some(t) = callee {
                if t != fi {
                    resolutions.push((fi, ci, t));
                }
            }
        }
    }
    for (fi, ci, t) in resolutions {
        g.fns[fi].calls[ci].callee = Some(t);
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let map: BTreeMap<String, ParsedFile> = files
            .iter()
            .map(|(p, s)| (p.to_string(), parse(s)))
            .collect();
        build(&map, &|_| false)
    }

    fn node<'g>(g: &'g Graph, q: &str) -> &'g FnNode {
        g.fns.iter().find(|f| f.qualified == q).unwrap()
    }

    #[test]
    fn free_call_resolves() {
        let g = graph_of(&[("a.rs", "fn leaf() {}\nfn root() { leaf(); }\n")]);
        let root = node(&g, "root");
        let c = &root.calls[0];
        assert_eq!(c.name, "leaf");
        let callee = c.callee.unwrap();
        assert_eq!(g.fns[callee].qualified, "leaf");
    }

    #[test]
    fn qualified_call_resolves_cross_file() {
        let g = graph_of(&[
            ("a.rs", "struct Core;\nimpl Core {\n    fn route_raw(&self) {}\n}\n"),
            ("b.rs", "fn f(c: &Core) { Core::route_raw(c); }\n"),
        ]);
        let f = node(&g, "f");
        assert_eq!(g.fns[f.calls[0].callee.unwrap()].qualified, "Core::route_raw");
    }

    #[test]
    fn unique_method_resolves_same_file_preferred() {
        let g = graph_of(&[
            ("a.rs", "impl A {\n    fn drain_batch(&self) {}\n    fn go(&self) { self.drain_batch(); }\n}\n"),
            ("b.rs", "impl B {\n    fn drain_batch(&self) {}\n}\n"),
        ]);
        let go = node(&g, "A::go");
        let callee = go.calls[0].callee.unwrap();
        assert_eq!(g.fns[callee].qualified, "A::drain_batch");
    }

    #[test]
    fn ambiguous_method_names_do_not_resolve() {
        let g = graph_of(&[(
            "a.rs",
            "impl A {\n    fn new() -> A { A }\n}\nfn f() { let a = A::new(); a.lock(); }\n",
        )]);
        let f = node(&g, "f");
        let lock = f.calls.iter().find(|c| c.name == "lock").unwrap();
        assert!(lock.callee.is_none());
        assert!(lock.is_method);
        assert!(lock.args_empty);
    }

    #[test]
    fn receiver_chain_and_arity() {
        let g = graph_of(&[(
            "a.rs",
            "fn f(s: &S) {\n    s.inner.state.lock();\n    s.sock.read(&mut buf);\n}\n",
        )]);
        let f = node(&g, "f");
        let lock = f.calls.iter().find(|c| c.name == "lock").unwrap();
        assert_eq!(lock.receiver, "s.inner.state");
        assert!(lock.args_empty);
        let read = f.calls.iter().find(|c| c.name == "read").unwrap();
        assert!(!read.args_empty);
        assert_eq!(read.line, 3);
    }

    #[test]
    fn indexed_receiver_drops_the_index() {
        let g = graph_of(&[(
            "a.rs",
            "fn f(s: &S, i: usize) { s.shards[i % N].read(); }\n",
        )]);
        let f = node(&g, "f");
        let read = f.calls.iter().find(|c| c.name == "read").unwrap();
        assert_eq!(read.receiver, "s.shards");
        assert!(read.args_empty);
    }

    #[test]
    fn macros_are_not_calls_but_their_args_are_scanned() {
        let g = graph_of(&[(
            "a.rs",
            "fn target() {}\nfn f() { println!(\"{}\", target()); vec![target()]; }\n",
        )]);
        let f = node(&g, "f");
        assert!(f.calls.iter().all(|c| c.name != "println" && c.name != "vec"));
        assert_eq!(f.calls.iter().filter(|c| c.name == "target").count(), 2);
        assert!(f.calls.iter().all(|c| c.callee.is_some()));
    }

    #[test]
    fn test_items_excluded_from_graph() {
        let g = graph_of(&[(
            "a.rs",
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn enqueue() {}\n    #[test]\n    fn t() { enqueue(); }\n}\n",
        )]);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "real");
    }

    #[test]
    fn turbofish_call() {
        let g = graph_of(&[("a.rs", "fn f() { parse_as::<u32>(x); }\n")]);
        let f = node(&g, "f");
        assert_eq!(f.calls[0].name, "parse_as");
    }

    #[test]
    fn callers_of_works() {
        let g = graph_of(&[(
            "a.rs",
            "fn leaf() {}\nfn a() { leaf(); }\nfn b() { leaf(); }\n",
        )]);
        let leaf = g.fns.iter().position(|f| f.name == "leaf").unwrap();
        let callers = g.callers_of(leaf);
        assert_eq!(callers.len(), 2);
    }
}
