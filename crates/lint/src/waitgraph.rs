//! Static blocking-cycle analysis (v4): `static-lock-order`
//! generalized beyond mutexes.
//!
//! A deadlock needs a cycle in the *wait-for* relation, and locks are
//! only one kind of waitable resource: a full bounded [`FifoQueue`]
//! blocks its producers exactly like a held mutex blocks an acquirer,
//! and an empty one parks its consumer. This module builds a wait-for
//! graph whose nodes are lock classes (from [`crate::summaries`]'
//! guard regions) and queue classes (struct fields whose declared base
//! type is a configured queue type), with three edge shapes:
//!
//! * **lock -> queue** — a blocking queue op (`pop`, `push`) inside a
//!   guard region: progress under the lock waits on queue space or
//!   queue items while other threads wait on the lock.
//! * **queue -> lock** — a function that blocks on an unbounded `pop`
//!   and (transitively) acquires a lock: the consumer's progress —
//!   which producers may be waiting on — requires that lock.
//! * **queue -> queue** — a pipeline stage that pops one queue and
//!   blocking-pushes another: draining the first waits on space in
//!   the second.
//!
//! Cycles are reported once per class set with a witness chain, the
//! same shape (and the same DFS) as `static-lock-order`. The
//! thread-spawn topology is deliberately *not* part of the node set:
//! who spawns the consumer doesn't change what it waits on, and
//! modeling it would only add nodes no edge shape above can close a
//! cycle through.
//!
//! The second rule is shutdown **liveness**: an unbounded blocking
//! `pop` on a queue class that no non-test code ever `close()`s parks
//! its consumer thread forever at teardown — the dynamic symptom is a
//! join that never returns. Bounded pops (`pop_timeout`,
//! `pop_timeout_batch`) are exempt by construction; closers are
//! matched by field name workspace-wide, since the close usually
//! lives on the owner's shutdown path in another function.

use crate::callgraph::{CallSite, Graph};
use crate::rules::{is_test_path, Finding, FlowStep};
use crate::ruleset::{Ruleset, WaitgraphRule};
use crate::summaries::{region_calls, Facts, FileEntry};
use std::collections::{BTreeMap, BTreeSet};

/// One wait-for edge: whoever holds/occupies `from` is waiting on
/// `to`.
struct Edge {
    from: String,
    to: String,
    file: String,
    line: usize,
    witness: String,
}

/// The queue class a call operates on, if its receiver's last segment
/// is a field of a configured queue type (declared in this file) or
/// the call resolved to a queue-type method. Classes are file-scoped
/// (`file:field`): two files with a `queue` field are two queues.
fn queue_class(
    rule: &WaitgraphRule,
    facts: &Facts,
    graph: &Graph,
    file: &str,
    c: &CallSite,
) -> Option<String> {
    if !c.is_method {
        return None;
    }
    let seg = c.receiver.rsplit('.').next().unwrap_or("");
    if seg.is_empty() {
        return None;
    }
    let by_field = facts
        .field_types
        .get(file)
        .and_then(|m| m.get(seg))
        .is_some_and(|ty| rule.queue_types.iter().any(|q| q == ty));
    let by_callee = c.callee.is_some_and(|t| {
        let q = &graph.fns[t].qualified;
        rule.queue_types.iter().any(|ty| {
            q.len() > ty.len() + 2 && q.starts_with(ty.as_str()) && q[ty.len()..].starts_with("::")
        })
    });
    if by_field || by_callee {
        Some(format!("{file}:{seg}"))
    } else {
        None
    }
}

fn exempt(rule: &WaitgraphRule, file: &str) -> bool {
    rule.exempt.iter().any(|p| file.starts_with(p.as_str())) || is_test_path(file)
}

fn run_rule(
    rule: &WaitgraphRule,
    files: &BTreeMap<String, FileEntry>,
    graph: &Graph,
    facts: &Facts,
    findings: &mut Vec<Finding>,
) {
    let _ = files;
    // ---- edges ------------------------------------------------------
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let mut add = |from: String, to: String, file: &str, line: usize, witness: String| {
        if from != to {
            edges
                .entry((from.clone(), to.clone()))
                .or_insert(Edge { from, to, file: file.to_string(), line, witness });
        }
    };
    // Liveness bookkeeping: blocking pop sites and closed field names.
    let mut pops: Vec<(String, String, usize, String)> = Vec::new(); // class, file, line, fn
    let mut closed_fields: BTreeSet<String> = BTreeSet::new();

    for (fi, f) in graph.fns.iter().enumerate() {
        if is_test_path(&f.file) {
            continue;
        }
        for c in &f.calls {
            let Some(q) = queue_class(rule, facts, graph, &f.file, c) else { continue };
            if rule.closers.iter().any(|n| n == &c.name) {
                closed_fields.insert(q.rsplit(':').next().unwrap_or("").to_string());
            }
        }
        if exempt(rule, &f.file) {
            continue;
        }
        let ff = &facts.fns[fi];
        // lock -> queue: blocking queue op inside a guard region.
        for region in &ff.regions {
            for c in region_calls(f, region) {
                let Some(q) = queue_class(rule, facts, graph, &f.file, c) else { continue };
                let blocking = (rule.blocking_pops.iter().any(|n| n == &c.name) && c.args_empty)
                    || rule.blocking_pushes.iter().any(|n| n == &c.name);
                if blocking {
                    add(
                        region.class.clone(),
                        q.clone(),
                        &f.file,
                        c.line,
                        format!(
                            "{} ({}:{}) blocks on queue `{q}` while holding `{}`",
                            f.qualified, f.file, c.line, region.class
                        ),
                    );
                }
            }
        }
        // Per-fn pop/push sets for the queue->lock and queue->queue
        // shapes (and the liveness rule).
        for c in &f.calls {
            let Some(q) = queue_class(rule, facts, graph, &f.file, c) else { continue };
            if rule.blocking_pops.iter().any(|n| n == &c.name) && c.args_empty {
                pops.push((q.clone(), f.file.clone(), c.line, f.qualified.clone()));
                // queue -> lock: the consumer's progress needs every
                // lock this fn (transitively) acquires.
                for (class, w) in &ff.acquires {
                    add(
                        q.clone(),
                        class.clone(),
                        &f.file,
                        c.line,
                        format!(
                            "{} ({}:{}) pops `{q}` and acquires `{class}` ({}:{})",
                            f.qualified, f.file, c.line, f.file, w.line
                        ),
                    );
                }
                // queue -> queue: pop one, blocking-push another.
                for c2 in &f.calls {
                    if !rule.blocking_pushes.iter().any(|n| n == &c2.name) {
                        continue;
                    }
                    let Some(q2) = queue_class(rule, facts, graph, &f.file, c2) else {
                        continue;
                    };
                    add(
                        q.clone(),
                        q2.clone(),
                        &f.file,
                        c2.line,
                        format!(
                            "{} ({}:{}) pops `{q}` then blocking-pushes `{q2}` ({}:{})",
                            f.qualified, f.file, c.line, f.file, c2.line
                        ),
                    );
                }
            }
        }
    }

    // ---- cycle detection (same DFS as static-lock-order) ------------
    let edge_list: Vec<Edge> = edges.into_values().collect();
    cycles(rule.name, &edge_list, findings);

    // ---- shutdown liveness ------------------------------------------
    for (class, file, line, fn_q) in pops {
        let field = class.rsplit(':').next().unwrap_or("");
        if closed_fields.contains(field) {
            continue;
        }
        findings.push(Finding {
            rule: rule.liveness_name,
            file: file.clone(),
            line,
            excerpt: format!(
                "blocking `pop` on queue `{field}` in {fn_q} has no `close()` anywhere in \
                 non-test code — shutdown parks this consumer forever"
            ),
            witness: Some(format!(
                "{fn_q} ({file}:{line}) blocks on `{field}` with no close path workspace-wide"
            )),
            flow: vec![FlowStep {
                file,
                line,
                message: format!("consumer parks on `{field}` with no shutdown close"),
            }],
        });
    }
}

/// Reports each wait-for cycle once (keyed by its sorted class set).
fn cycles(rule_name: &'static str, edges: &[Edge], findings: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(e);
    }
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 1 = on stack, 2 = done
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();

    fn dfs<'a>(
        rule_name: &'static str,
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
        color: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a Edge>,
        reported: &mut BTreeSet<Vec<String>>,
        findings: &mut Vec<Finding>,
    ) {
        color.insert(node, 1);
        for e in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
            match color.get(e.to.as_str()).copied().unwrap_or(0) {
                0 => {
                    stack.push(e);
                    dfs(rule_name, e.to.as_str(), adj, color, stack, reported, findings);
                    stack.pop();
                }
                1 => {
                    let mut cycle: Vec<&Edge> = Vec::new();
                    let mut collecting = false;
                    for se in stack.iter() {
                        if se.from == e.to {
                            collecting = true;
                        }
                        if collecting {
                            cycle.push(se);
                        }
                    }
                    cycle.push(e);
                    let mut key: Vec<String> = cycle.iter().map(|c| c.from.clone()).collect();
                    key.sort();
                    if reported.insert(key) {
                        let path: Vec<String> = cycle
                            .iter()
                            .map(|c| c.from.clone())
                            .chain(std::iter::once(e.to.clone()))
                            .collect();
                        let witness = cycle
                            .iter()
                            .map(|c| c.witness.as_str())
                            .collect::<Vec<_>>()
                            .join("; ");
                        let flow = cycle
                            .iter()
                            .map(|c| FlowStep {
                                file: c.file.clone(),
                                line: c.line,
                                message: format!("waits on `{}` while occupying `{}`", c.to, c.from),
                            })
                            .collect();
                        findings.push(Finding {
                            rule: rule_name,
                            file: cycle[0].file.clone(),
                            line: cycle[0].line,
                            excerpt: format!("potential blocking cycle: {}", path.join(" -> ")),
                            witness: Some(witness),
                            flow,
                        });
                    }
                }
                _ => {}
            }
        }
        color.insert(node, 2);
    }

    let nodes: Vec<&str> = adj.keys().copied().collect();
    for n in nodes {
        if color.get(n).copied().unwrap_or(0) == 0 {
            let mut stack = Vec::new();
            dfs(rule_name, n, &adj, &mut color, &mut stack, &mut reported, findings);
        }
    }
}

/// Runs every `[[waitgraph]]` rule. Findings are unfiltered;
/// suppressions apply in the caller.
pub fn run(
    files: &BTreeMap<String, FileEntry>,
    graph: &Graph,
    facts: &Facts,
    ruleset: &Ruleset,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in &ruleset.waitgraph_rules {
        run_rule(rule, files, graph, facts, &mut findings);
    }
    findings
}
