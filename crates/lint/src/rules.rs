//! The named invariant rules and the per-file analysis engine.
//!
//! Each rule is a lexical check over *code* (strings and comments are
//! blanked by [`crate::lexer::strip`] first) plus a path scope: the
//! crates whose discipline the rule enforces, minus the crate that
//! *implements* the abstraction the rule protects. Test code — files
//! under `tests/`, `benches/`, `examples/`, and `#[cfg(test)]` modules —
//! is always exempt: the disciplines govern serve paths, not harnesses.
//!
//! A finding is suppressible only by an adjacent comment of the form
//! `wsd-lint: allow(<rule>): <reason>` — the reason is mandatory, and a
//! malformed suppression is itself reported under the `bad-suppression`
//! rule so silent opt-outs cannot accrete.

use crate::lexer::{strip, Comment};
use crate::parser::{parse, ParsedFile};

/// All enforced rule names, in report order. The first six are
/// lexical (per-line); the next six are interprocedural (call-graph
/// reachability, see [`crate::interproc`] — driven by the declarative
/// [`crate::ruleset`]); `unvalidated-envelope-to-sink` and
/// `gauge-balance` are dataflow rules (see [`crate::dataflow`]); the
/// four protocol-lifecycle rules are `[[typestate]]` automata (see
/// [`crate::typestate`]); `blocking-cycle` and `queue-pop-no-close`
/// come from the wait-for graph (see [`crate::waitgraph`]);
/// `bad-suppression` and `unused-suppression` guard the suppression
/// mechanism itself.
pub const RULE_NAMES: [&str; 22] = [
    "raw-thread-spawn",
    "raw-clock",
    "std-sync-primitive",
    "unwrap-in-dispatcher",
    "unbounded-queue-at-serve-site",
    "raw-file-io",
    "blocking-under-lock",
    "static-lock-order",
    "wsa-rewrite-before-forward",
    "shard-route-before-enqueue",
    "limits-at-serve-site",
    "alloc-in-drain",
    "unvalidated-envelope-to-sink",
    "gauge-balance",
    "wal-ack-before-durable",
    "scratch-use-after-take",
    "reactor-conn-accounting",
    "fleet-handoff-completion",
    "blocking-cycle",
    "queue-pop-no-close",
    "bad-suppression",
    "unused-suppression",
];

/// One step of a finding's witness path (rendered as a SARIF
/// `codeFlow` thread-flow location).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowStep {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What happens at this step (`source taints x`, `sink reached`).
    pub message: String,
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed — or, for interprocedural
    /// rules, a one-line statement of the violated contract.
    pub excerpt: String,
    /// Call-chain witness for interprocedural findings (`f (file:line)
    /// -> g (file:line) -> sink`); `None` for lexical rules.
    pub witness: Option<String>,
    /// Step-by-step witness path for dataflow/interprocedural findings
    /// (empty for lexical rules); drives SARIF `codeFlows`.
    pub flow: Vec<FlowStep>,
}

/// What each rule protects, shown next to findings.
pub fn rule_hint(rule: &str) -> &'static str {
    match rule {
        "raw-thread-spawn" => {
            "threads must go through wsd_concurrent (ThreadPool / Reactor) so \
             gauges and teardown stay truthful"
        }
        "raw-clock" => {
            "timing must flow through wsd_telemetry::Clock (WallClock / \
             VirtualClock) so sim figures stay byte-identical"
        }
        "std-sync-primitive" => "lock with parking_lot, not std::sync",
        "unwrap-in-dispatcher" => {
            "serve paths handle pop/recv/IO failure explicitly (shutdown is \
             not a panic)"
        }
        "unbounded-queue-at-serve-site" => {
            "serve-site queues are bounded: the paper's WS-MsgBox hit its \
             ~50-client OOM wall on exactly this"
        }
        "raw-file-io" => {
            "durable state goes through wsd_store (WAL, fsync discipline, \
             crash recovery) — ad-hoc std::fs writes are invisible to the \
             durability contract"
        }
        "blocking-under-lock" => {
            "no path from a held OrderedMutex/OrderedRwLock guard may \
             reach an unbounded blocking sink — a stalled CxThread under \
             lock wedges every peer of that lock class"
        }
        "static-lock-order" => {
            "lock classes must acquire in one global order; a cycle in \
             the static acquisition graph is a deadlock schedule waiting \
             for the right interleaving"
        }
        "wsa-rewrite-before-forward" => {
            "every path from envelope receipt to a forward enqueue must \
             pass a ReplyTo rewrite (splice_forward / \
             rewrite_for_forward) — the paper's MSG-Dispatcher contract"
        }
        "shard-route-before-enqueue" => {
            "every path from a fleet client to a deposit enqueue must \
             pass the consistent-hash routing step (shard_route) — a \
             deposit aimed at a hard-coded instance breaks the ring's \
             ownership accounting and the handoff ledger with it"
        }
        "limits-at-serve-site" => {
            "serve sites must thread Limits from config, not \
             Limits::default() — otherwise ops cannot tighten parser \
             bounds without a rebuild"
        }
        "alloc-in-drain" => {
            "the dispatch hot path (WsThread drain / route_raw) is \
             zero-alloc in steady state — per-message String/Vec/format! \
             allocation belongs to setup or the reasoned tree-fallback \
             suppressions, not the drain loop"
        }
        "unvalidated-envelope-to-sink" => {
            "bytes read from the firewall-facing socket (try_read / \
             RequestParser::feed) must pass verify_element or a tree \
             parse before reaching a forward splice, WAL append, or \
             enqueue — the dispatcher is the trust boundary"
        }
        "gauge-balance" => {
            "a telemetry gauge incremented in a region must be \
             decremented on every non-panic path out of it (early \
             returns, `?`, let-else arms) — the chaos campaign's \
             gauges-return-to-0 teardown invariant, checked statically"
        }
        "wal-ack-before-durable" => {
            "a function that appends a WAL record must commit (fsync) it \
             before any non-error return — an ack sent from the appended \
             state races durability, the exact loss window the 250-seed \
             crash sweep probes dynamically"
        }
        "scratch-use-after-take" => {
            "once `take_out` moves a pooled scratch buffer's String out, \
             the guard must not be touched again — a later write lands in \
             a buffer the pool will hand to the next envelope"
        }
        "reactor-conn-accounting" => {
            "a connection removed from the reactor's conns map must be \
             re-inserted or have `open_conns` decremented on every \
             non-panic path out — otherwise the gauge and the map drift \
             and shutdown never drains"
        }
        "fleet-handoff-completion" => {
            "a claimed handoff must reach completion (a `complete` call \
             or the recovery timer that leads there) on every path — an \
             abandoned claim strands the dead instance's mailboxes \
             forever"
        }
        "blocking-cycle" => {
            "the wait-for graph over lock classes and blocking queue ops \
             must stay acyclic — a cycle is a deadlock schedule waiting \
             for the right interleaving, beyond what lock order alone \
             can see"
        }
        "queue-pop-no-close" => {
            "an unbounded blocking pop on a queue class with no close() \
             call anywhere in the workspace can never observe shutdown — \
             the consumer parks forever and teardown hangs"
        }
        "bad-suppression" => "suppressions need a known rule and a written reason",
        "unused-suppression" => {
            "an allow whose rule no longer fires on that line is dead \
             armor — remove it so real regressions cannot hide behind it"
        }
        _ => "",
    }
}

fn path_in(file: &str, prefix: &str) -> bool {
    file.starts_with(prefix)
}

/// Whether the file as a whole is test collateral (under `tests/`,
/// `benches/`, `examples/`, or `fixtures/`).
pub fn is_test_path(file: &str) -> bool {
    file.split('/').any(|seg| {
        seg == "tests" || seg == "benches" || seg == "examples" || seg == "fixtures"
    })
}

/// Finds all identifiers invoked as methods (`.name(`) on a code line.
fn method_calls(code_line: &str) -> Vec<&str> {
    let bytes = code_line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'.' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            // Allow turbofish between name and paren: `.recv::<T>(`.
            let mut k = j;
            if bytes.get(k) == Some(&b':') && bytes.get(k + 1) == Some(&b':') {
                while k < bytes.len() && bytes[k] != b'(' && bytes[k] != b'.' {
                    k += 1;
                }
            }
            if j > start && bytes.get(k) == Some(&b'(') {
                out.push(&code_line[start..j]);
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Method names whose `Result`/`Option` is an IO / queue / channel
/// outcome: unwrapping one on a serve path turns shutdown into a panic.
const IO_MARKERS: [&str; 20] = [
    "pop", "try_pop", "pop_front", "pop_timeout", "pop_batch", "pop_timeout_batch", "recv",
    "try_recv", "recv_timeout", "read", "read_exact", "read_to_end", "write", "write_all",
    "flush", "connect", "call", "call_pipelined", "send", "as_mut",
];

pub(crate) fn rule_applies(rule: &str, file: &str) -> bool {
    match rule {
        // wsd-concurrent *is* the thread abstraction.
        "raw-thread-spawn" => !path_in(file, "crates/concurrent/"),
        // wsd-telemetry *is* the clock crate.
        "raw-clock" => !path_in(file, "crates/telemetry/"),
        "std-sync-primitive" => true,
        "unwrap-in-dispatcher" => {
            path_in(file, "crates/core/src/") || path_in(file, "crates/concurrent/src/")
        }
        "unbounded-queue-at-serve-site" => {
            path_in(file, "crates/core/")
                || path_in(file, "crates/concurrent/")
                || path_in(file, "crates/http/")
        }
        // wsd-store *is* the file-IO abstraction.
        "raw-file-io" => !path_in(file, "crates/store/"),
        // The analyzer's own suppressions are audited by `--self`,
        // where every rule is in scope; in a workspace run half its
        // rules are path-scoped away, which would mislabel them stale.
        "unused-suppression" => !path_in(file, "crates/lint/"),
        _ => true,
    }
}

fn line_violates(rule: &str, code_line: &str) -> bool {
    match rule {
        "raw-thread-spawn" => {
            code_line.contains("thread::spawn") || code_line.contains("thread::Builder")
        }
        "raw-clock" => {
            code_line.contains("Instant::now") || code_line.contains("SystemTime::now")
        }
        "std-sync-primitive" => {
            code_line.contains("std::sync::")
                && ["Mutex", "RwLock", "Condvar", "Barrier"]
                    .iter()
                    .any(|p| code_line.contains(p))
        }
        "unwrap-in-dispatcher" => {
            let calls = method_calls(code_line);
            calls.iter().any(|c| *c == "unwrap" || *c == "expect")
                && calls.iter().any(|c| IO_MARKERS.contains(c))
        }
        "unbounded-queue-at-serve-site" => {
            code_line.contains("::unbounded(")
                || code_line.contains(".unbounded(")
                || code_line.contains("mpsc::channel(")
        }
        "raw-file-io" => {
            code_line.contains("std::fs::")
                || code_line.contains("fs::read")
                || code_line.contains("fs::write")
                || code_line.contains("fs::File")
                || code_line.contains("fs::create_dir")
                || code_line.contains("fs::remove_")
                || code_line.contains("File::open")
                || code_line.contains("File::create")
                || code_line.contains("OpenOptions")
        }
        _ => false,
    }
}

/// A parsed `wsd-lint: allow(rule): reason` directive.
#[derive(Debug)]
struct Suppression {
    line: usize,
    is_line_comment: bool,
    rule: String,
    reason: String,
}

fn parse_suppressions(comments: &[Comment]) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // A directive must *start* the comment (prose that merely
        // mentions the syntax, e.g. docs, is not a directive).
        let Some(rest) = c.text.strip_prefix("wsd-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .map(|(rule, tail)| (rule.trim().to_string(), tail.trim()));
        match parsed {
            Some((rule, tail)) if RULE_NAMES.contains(&rule.as_str()) => {
                let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
                if reason.is_empty() {
                    bad.push(Finding {
                        rule: "bad-suppression",
                        file: String::new(),
                        line: c.line,
                        excerpt: format!(
                            "suppression of `{rule}` has no reason — use \
                             `wsd-lint: allow({rule}): <why this site is exempt>`"
                        ),
                        witness: None,
                        flow: Vec::new(),
                    });
                } else {
                    sups.push(Suppression {
                        line: c.line,
                        is_line_comment: c.is_line,
                        rule,
                        reason: reason.to_string(),
                    });
                }
            }
            _ => {
                bad.push(Finding {
                    rule: "bad-suppression",
                    file: String::new(),
                    line: c.line,
                    excerpt: format!(
                        "malformed wsd-lint directive `{}` — expected \
                         `wsd-lint: allow(<rule>): <reason>` with a known rule",
                        c.text
                    ),
                    witness: None,
                    flow: Vec::new(),
                });
            }
        }
    }
    (sups, bad)
}

/// Active (well-formed) suppressions in a file's comments, as
/// `(line, is_line_comment, rule)` — used to filter interprocedural
/// findings, which are produced outside [`lint_source`].
pub(crate) fn active_suppressions(comments: &[Comment]) -> Vec<(usize, bool, String)> {
    let (sups, _) = parse_suppressions(comments);
    sups.into_iter()
        .map(|s| (s.line, s.is_line_comment, s.rule))
        .collect()
}

/// Lints one file's source, returning all unsuppressed findings.
///
/// `file` is the workspace-relative `/`-separated path; it selects which
/// rules apply. Suppressions on the finding's own line, or on a
/// directive-only comment line directly above it, silence that rule for
/// that line.
pub fn lint_source(file: &str, source: &str) -> Vec<Finding> {
    lint_source_parsed(file, source, &parse(source), false)
}

/// [`lint_source`] over an already-parsed file. `force_all` drops the
/// per-rule path scoping (used by `--self`, where paths are relative to
/// `crates/lint` and would otherwise match no scope).
///
/// Test exemption is parser-driven: `#[cfg(test)]` / `#[test]` item
/// spans come from [`crate::parser`], so nested modules, attribute
/// lines, and items following a test module are classified by actual
/// scope structure rather than brace counting.
pub fn lint_source_parsed(
    file: &str,
    source: &str,
    parsed: &ParsedFile,
    force_all: bool,
) -> Vec<Finding> {
    lint_source_uses(file, source, parsed, force_all).0
}

/// [`lint_source_parsed`] plus the suppressions the lexical pass
/// consumed, as `(directive line, rule)` — the raw material for the
/// `unused-suppression` check (see [`crate::lib`]'s used-set assembly).
pub fn lint_source_uses(
    file: &str,
    source: &str,
    parsed: &ParsedFile,
    force_all: bool,
) -> (Vec<Finding>, Vec<(usize, String)>) {
    let (sups, mut bad) = parse_suppressions(&parsed.stripped.comments);
    for b in &mut bad {
        b.file = file.to_string();
    }

    if is_test_path(file) {
        // Test collateral is fully exempt — fixtures deliberately seed
        // violations (including malformed suppressions) for the
        // analyzer's own tests.
        return (Vec::new(), Vec::new());
    }

    let code_lines: Vec<&str> = parsed.stripped.code.lines().collect();
    let src_lines: Vec<&str> = source.lines().collect();
    let mut used: Vec<(usize, String)> = Vec::new();

    let mut suppressed = |rule: &str, line: usize| -> bool {
        let hit = sups.iter().find(|s| {
            s.rule == rule
                && (s.line == line || (s.is_line_comment && s.line + 1 == line))
        });
        if let Some(s) = hit {
            used.push((s.line, s.rule.clone()));
            true
        } else {
            false
        }
    };

    let mut findings = bad;
    for (idx, code_line) in code_lines.iter().enumerate() {
        let line = idx + 1;
        if parsed.is_test_line(line) {
            continue;
        }
        for rule in RULE_NAMES {
            if rule == "bad-suppression" || (!force_all && !rule_applies(rule, file)) {
                continue;
            }
            if line_violates(rule, code_line) && !suppressed(rule, line) {
                findings.push(Finding {
                    rule,
                    file: file.to_string(),
                    line,
                    excerpt: src_lines.get(idx).unwrap_or(&"").trim().to_string(),
                    witness: None,
                    flow: Vec::new(),
                });
            }
        }
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    (findings, used)
}

/// Every suppression in `source`, as `(line, rule, reason)` — used by
/// reports and by tests asserting reasons are present.
pub fn suppressions_in(source: &str) -> Vec<(usize, String, String)> {
    let stripped = strip(source);
    let (sups, _) = parse_suppressions(&stripped.comments);
    sups.into_iter().map(|s| (s.line, s.rule, s.reason)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_in_core_is_flagged() {
        let f = lint_source("crates/core/src/x.rs", "fn f() { std::thread::spawn(|| {}); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "raw-thread-spawn");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn spawn_in_concurrent_is_the_abstraction() {
        let f = lint_source(
            "crates/concurrent/src/pool.rs",
            "fn f() { std::thread::spawn(|| {}); }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn spawn_in_cfg_test_mod_is_exempt() {
        let src = "fn serve() {}\n#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn spawn_after_cfg_test_mod_is_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn serve() { std::thread::spawn(|| {}); }\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "// wsd-lint: allow(raw-thread-spawn): dedicated janitor thread\nstd::thread::spawn(|| {});\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn trailing_suppression_silences_same_line() {
        let src = "std::thread::spawn(|| {}); // wsd-lint: allow(raw-thread-spawn): startup probe\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_bad() {
        let src = "// wsd-lint: allow(raw-thread-spawn)\nstd::thread::spawn(|| {});\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == "bad-suppression"));
        assert!(f.iter().any(|x| x.rule == "raw-thread-spawn"));
    }

    #[test]
    fn unknown_rule_suppression_is_bad() {
        let src = "// wsd-lint: allow(no-such-rule): because\nfn f() {}\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "bad-suppression");
    }

    #[test]
    fn clock_in_strings_and_comments_is_invisible() {
        let src = "let s = \"Instant::now\"; // Instant::now\n/* SystemTime::now */ let r = r#\"Instant::now\"#;\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_on_pop_flagged_only_in_dispatcher_paths() {
        let src = "fn f(q: Q) { q.pop().unwrap(); }\n";
        assert_eq!(lint_source("crates/core/src/x.rs", src).len(), 1);
        assert_eq!(lint_source("crates/concurrent/src/x.rs", src).len(), 1);
        assert!(lint_source("crates/http/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_without_io_marker_is_fine() {
        let src = "fn f() { ThreadPool::new(cfg).expect(\"pool\"); }\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unbounded_queue_flagged() {
        let src = "fn f() { let q: FifoQueue<u8> = FifoQueue::unbounded(); }\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unbounded-queue-at-serve-site");
    }

    #[test]
    fn raw_file_io_flagged_outside_store() {
        let src = "fn f() { let _ = std::fs::write(\"state.bin\", b\"x\"); }\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "raw-file-io");
    }

    #[test]
    fn raw_file_io_in_store_is_the_abstraction() {
        let src = "fn f(p: &Path) { let _ = File::open(p); OpenOptions::new(); }\n";
        assert!(lint_source("crates/store/src/storage.rs", src).is_empty());
    }

    #[test]
    fn raw_file_io_suppression_with_reason_silences() {
        let src = "// wsd-lint: allow(raw-file-io): report artifact, not durable state\nstd::fs::write(\"report.json\", text);\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn std_mutex_flagged_anywhere() {
        let src = "use std::sync::{Arc, Mutex};\n";
        let f = lint_source("crates/telemetry/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "std-sync-primitive");
    }

    #[test]
    fn tests_dirs_are_exempt() {
        let src = "fn t() { std::thread::spawn(|| {}); q.pop().unwrap(); }\n";
        assert!(lint_source("crates/core/tests/model.rs", src).is_empty());
        assert!(lint_source("crates/bench/benches/b.rs", src).is_empty());
        assert!(lint_source("examples/demo.rs", src).is_empty());
    }

    #[test]
    fn method_call_parsing_handles_turbofish_and_ready() {
        let calls = method_calls("st.ready.pop_front().expect(\"x\")");
        assert!(calls.contains(&"pop_front"));
        assert!(calls.contains(&"expect"));
        // `.ready` is a field access, not a call.
        assert!(!calls.contains(&"ready"));
        let calls = method_calls("rx.recv::<u8>().unwrap()");
        assert!(calls.contains(&"recv"));
        assert!(calls.contains(&"unwrap"));
    }
}
