//! The declarative typestate engine (v4).
//!
//! Protocol lifecycles — a WAL record is appended then committed
//! before the function answers, a connection removed from the reactor
//! map is re-inserted or accounted, a claimed handoff reaches
//! completion — are finite automata over call events. [`crate::ruleset`]
//! spells them as `[[typestate]]` rows (states, `CallPat`-keyed
//! transitions, accepting states, error rows); this module checks them
//! path-sensitively on the [`crate::dataflow::Walker`].
//!
//! The abstract state is the *powerset* of automaton states (a
//! may-analysis: after a branch join the machine can be in either
//! side's state), each possible state carrying the line that first
//! entered it as the finding witness. Two tracking modes:
//!
//! * **ambient** (`track = "ambient"`) — one machine per function,
//!   started in the first declared state at the signature. Calls into
//!   helpers apply the helper's *effect summary* (the sequence of arcs
//!   its body fires, computed to a fixpoint over the call graph), so a
//!   helper performing `append` transitions its callers too.
//! * **binding** (`track = "binding"`) — one machine per object bound
//!   by a `creates` call (`let g = scratch::checkout()`); transitions
//!   and error rows fire only on method calls *on that binding*
//!   (receiver equal to it or reached through it). Argument mentions
//!   do not advance the machine.
//!
//! Transitions apply eagerly but leave a *provisional mark* (the call
//! name plus the pre-transition state set) in the flow state; when the
//! walker can classify the surrounding branch polarity
//! ([`crate::dataflow::Flow::branch`]) the condition-failed side
//! reverts the machine, so `let Some(at) = handoffs.claim_for(..)
//! else { return }` does not leak a phantom claim down the else arm.
//! Unclassifiable conditions refine neither side — the transition
//! stays on both, which is exactly what makes a result-discarding
//! `remove` show up on every path.
//!
//! Error rows fire immediately (a call matching the row while the
//! machine may be in its state); non-accepting exits are reported only
//! for `return` and fall-through ends when the rule carries an
//! `exit-message` — `?`, `break`, and panic paths are exempt, matching
//! the gauge-balance convention that unwinding tears the process down,
//! not the protocol.

use crate::callgraph::{line_at, line_index, CallSite, Graph};
use crate::dataflow::{join_union, ExitKind, Flow, StmtCtx, Walker};
use crate::rules::{is_test_path, Finding, FlowStep};
use crate::ruleset::{fill, Ruleset, TsArc, TypestateRule};
use crate::summaries::{contains_word, FileEntry};
use std::collections::{BTreeMap, BTreeSet};

/// One machine's possible automaton states -> first-witness line.
type StateSet = BTreeMap<String, usize>;

/// A provisional transition: which call fired it and the state set it
/// replaced, so a negative branch can revert it.
#[derive(Clone, PartialEq)]
struct Mark {
    var: String,
    call: String,
    prev: StateSet,
}

/// The flow state: tracked machines (keyed by binding name; ambient
/// mode uses the single key `""`) plus the provisional marks of the
/// current condition segment.
#[derive(Clone, PartialEq, Default)]
pub struct TsState {
    machines: BTreeMap<String, StateSet>,
    marks: Vec<Mark>,
}

/// Applies one transition event (the set of arcs a single call fired)
/// to a state set: every state with a firing arc moves, the rest stay.
/// A state can only appear in the result if it survived (no arc from
/// it fired) or an arc targets it — transitions never resurrect a
/// state out of thin air; the proptests below pin that down.
fn step(states: &StateSet, arcs: &[&TsArc], line: usize) -> StateSet {
    let mut next = StateSet::new();
    for (s, w) in states {
        match arcs.iter().find(|a| a.from == *s) {
            Some(a) => {
                next.entry(a.to.clone()).or_insert(line);
            }
            None => {
                next.entry(s.clone()).or_insert(*w);
            }
        }
    }
    next
}

/// Per-fn effect summaries for an ambient rule: the ordered list of
/// transition events (arc-index sets) the fn's body fires, helpers
/// inlined to a bounded fixpoint. A caller applies the events in
/// sequence at the call site.
fn compute_effects(rule: &TypestateRule, graph: &Graph) -> Vec<Vec<Vec<usize>>> {
    let mut eff: Vec<Vec<Vec<usize>>> = vec![Vec::new(); graph.fns.len()];
    for _ in 0..4 {
        let mut changed = false;
        for (fi, f) in graph.fns.iter().enumerate() {
            if !in_scope(rule, &f.file) || is_test_path(&f.file) {
                continue;
            }
            let mut e: Vec<Vec<usize>> = Vec::new();
            for c in &f.calls {
                let fired: Vec<usize> = rule
                    .transitions
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.pat.matches(c))
                    .map(|(i, _)| i)
                    .collect();
                if !fired.is_empty() {
                    e.push(fired);
                } else if let Some(t) = c.callee {
                    e.extend(eff[t].iter().cloned());
                }
                if e.len() > 16 {
                    break; // cap: summaries this long add no precision
                }
            }
            e.truncate(16);
            if e != eff[fi] {
                eff[fi] = e;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    eff
}

fn in_scope(rule: &TypestateRule, file: &str) -> bool {
    rule.scopes.is_empty() || rule.scopes.iter().any(|p| file.starts_with(p.as_str()))
}

struct TsFlow<'a> {
    file: &'a str,
    fn_qualified: &'a str,
    rule: &'a TypestateRule,
    effects: &'a [Vec<Vec<usize>>],
    binding_mode: bool,
    /// Line of a `creates` call on the current statement's RHS.
    rhs_created: Option<usize>,
    findings: Vec<Finding>,
    seen: BTreeSet<(usize, String, String)>,
}

impl<'a> TsFlow<'a> {
    /// Machines the call can act on: the one whose binding is the
    /// call's receiver (binding mode) or the ambient machine.
    fn vars_for(&self, st: &TsState, c: &CallSite) -> Vec<String> {
        if !self.binding_mode {
            return vec![String::new()];
        }
        if !c.is_method {
            return Vec::new();
        }
        st.machines
            .keys()
            .filter(|v| {
                c.receiver == **v
                    || (c.receiver.len() > v.len()
                        && c.receiver.starts_with(v.as_str())
                        && c.receiver.as_bytes()[v.len()] == b'.')
            })
            .cloned()
            .collect()
    }

    fn emit_error(&mut self, message: &str, var: &str, c: &CallSite, state: &str, wline: usize) {
        if !self.seen.insert((c.line, var.to_string(), c.name.clone())) {
            return;
        }
        let shown_var = if var.is_empty() { "<ambient>" } else { var };
        self.findings.push(Finding {
            rule: self.rule.name,
            file: self.file.to_string(),
            line: c.line,
            excerpt: fill(
                message,
                &[("fn", self.fn_qualified), ("call", &c.name), ("var", shown_var)],
            ),
            witness: Some(format!(
                "{} enters state `{state}` ({}:{wline}) -> `{}` called in that state at {}:{}",
                self.fn_qualified, self.file, c.name, self.file, c.line
            )),
            flow: vec![
                FlowStep {
                    file: self.file.to_string(),
                    line: wline,
                    message: format!("machine enters state `{state}`"),
                },
                FlowStep {
                    file: self.file.to_string(),
                    line: c.line,
                    message: format!("`{}` called while still in `{state}`", c.name),
                },
            ],
        });
    }
}

impl<'a> Flow for TsFlow<'a> {
    type State = TsState;

    fn join(&self, a: &mut TsState, b: &TsState) {
        for (var, sb) in &b.machines {
            join_union(a.machines.entry(var.clone()).or_default(), sb);
        }
        // Marks are consumed between a condition segment and its
        // branch entries; by merge time the other branch's are stale.
    }

    fn call(&mut self, st: &mut TsState, c: &CallSite, _ctx: &StmtCtx) {
        if self.binding_mode && self.rule.creates.iter().any(|p| p.matches(c)) {
            self.rhs_created = Some(c.line);
            return; // the creating call is not an event on any machine
        }
        for var in self.vars_for(st, c) {
            let Some(states) = st.machines.get(&var) else { continue };
            let states = states.clone();
            // Error rows observe the pre-transition state.
            for er in &self.rule.errors {
                if let Some(w) = states.get(&er.state) {
                    if er.pat.matches(c) {
                        self.emit_error(&er.message, &var, c, &er.state, *w);
                    }
                }
            }
            let fired: Vec<&TsArc> =
                self.rule.transitions.iter().filter(|a| a.pat.matches(c)).collect();
            let next = if !fired.is_empty() {
                step(&states, &fired, c.line)
            } else if !self.binding_mode {
                // Direct pattern match takes precedence; otherwise the
                // resolved callee's effect summary applies in order.
                let Some(evs) = c.callee.map(|t| &self.effects[t]) else { continue };
                if evs.is_empty() {
                    continue;
                }
                let mut cur = states.clone();
                for ev in evs {
                    let arcs: Vec<&TsArc> =
                        ev.iter().map(|i| &self.rule.transitions[*i]).collect();
                    cur = step(&cur, &arcs, c.line);
                }
                cur
            } else {
                continue;
            };
            if next != states {
                st.marks.retain(|m| m.var != var);
                st.marks.push(Mark { var: var.clone(), call: c.name.clone(), prev: states });
                st.machines.insert(var, next);
            }
        }
    }

    fn branch(&mut self, st: &mut TsState, cond: &str, positive: bool) {
        let marks = std::mem::take(&mut st.marks);
        for m in marks {
            if contains_word(cond, &m.call) {
                // Condition tests this transition's call: the failed
                // side never performed it.
                if !positive {
                    st.machines.insert(m.var.clone(), m.prev.clone());
                }
            } else {
                st.marks.push(m);
            }
        }
    }

    fn stmt_done(&mut self, st: &mut TsState, ctx: &StmtCtx) {
        if let (Some(line), Some(b)) = (self.rhs_created, &ctx.binding) {
            let start = self.rule.states[0].clone();
            st.machines.insert(b.clone(), [(start, line)].into_iter().collect());
        }
        self.rhs_created = None;
        if !ctx.cond {
            st.marks.clear();
        }
    }

    fn exit(&mut self, st: &TsState, kind: ExitKind, line: usize) {
        if self.rule.exit_message.is_empty()
            || !matches!(kind, ExitKind::Return | ExitKind::End)
        {
            return;
        }
        for (var, states) in &st.machines {
            for (s, w) in states {
                if self.rule.accepting.iter().any(|a| a == s) {
                    continue;
                }
                if !self.seen.insert((line, var.clone(), s.clone())) {
                    continue;
                }
                let how = if kind == ExitKind::Return { "`return`" } else { "fall-through end" };
                self.findings.push(Finding {
                    rule: self.rule.name,
                    file: self.file.to_string(),
                    line: *w,
                    excerpt: fill(
                        &self.rule.exit_message,
                        &[("fn", self.fn_qualified), ("state", s)],
                    ),
                    witness: Some(format!(
                        "{} enters state `{s}` ({}:{w}) -> {how} at {}:{line} leaves the \
                         protocol unfinished",
                        self.fn_qualified, self.file, self.file
                    )),
                    flow: vec![
                        FlowStep {
                            file: self.file.to_string(),
                            line: *w,
                            message: format!("machine enters non-accepting state `{s}`"),
                        },
                        FlowStep {
                            file: self.file.to_string(),
                            line,
                            message: format!("path exits with the machine still in `{s}`"),
                        },
                    ],
                });
            }
        }
    }
}

fn run_rule(
    rule: &TypestateRule,
    files: &BTreeMap<String, FileEntry>,
    graph: &Graph,
    findings: &mut Vec<Finding>,
) {
    let binding_mode = rule.track == "binding";
    let effects = if binding_mode {
        vec![Vec::new(); graph.fns.len()]
    } else {
        compute_effects(rule, graph)
    };
    for f in &graph.fns {
        if !in_scope(rule, &f.file) || is_test_path(&f.file) {
            continue;
        }
        // Relevance gate (mirrors the taint gate): only walk fns that
        // can move a machine — a direct transition/creates match or a
        // call into an effectful helper.
        let relevant = f.calls.iter().any(|c| {
            rule.transitions.iter().any(|a| a.pat.matches(c))
                || rule.creates.iter().any(|p| p.matches(c))
                || c.callee.is_some_and(|t| !effects[t].is_empty())
        });
        if !relevant {
            continue;
        }
        let Some(entry) = files.get(&f.file) else { continue };
        let code = &entry.parsed.stripped.code;
        let Some((walker, span)) = Walker::new(code, &entry.parsed, f.local_idx, &f.calls) else {
            continue;
        };
        let mut flow = TsFlow {
            file: &f.file,
            fn_qualified: &f.qualified,
            rule,
            effects: &effects,
            binding_mode,
            rhs_created: None,
            findings: Vec::new(),
            seen: BTreeSet::new(),
        };
        let mut entry_state = TsState::default();
        if !binding_mode {
            let start_line = line_at(&line_index(code), span.0);
            entry_state.machines.insert(
                String::new(),
                [(rule.states[0].clone(), start_line)].into_iter().collect(),
            );
        }
        walker.run(&mut flow, span, entry_state);
        findings.append(&mut flow.findings);
    }
}

/// Runs every `[[typestate]]` rule. Findings are unfiltered;
/// suppressions apply in the caller.
pub fn run(
    files: &BTreeMap<String, FileEntry>,
    graph: &Graph,
    ruleset: &Ruleset,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in &ruleset.typestate_rules {
        run_rule(rule, files, graph, &mut findings);
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ruleset::builtin;

    // Same dependency-free PRNG idiom as the dataflow lattice tests.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    /// The WAL automaton's arcs, the richest shipped machine.
    fn wal_rule() -> TypestateRule {
        builtin()
            .typestate_rules
            .into_iter()
            .find(|r| r.name == "wal-ack-before-durable")
            .expect("builtin wal rule")
    }

    fn rand_set(rng: &mut XorShift, states: &[String]) -> StateSet {
        let mask = rng.next();
        states
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(i, s)| (s.clone(), (mask >> (8 + i)) as usize & 0xff))
            .collect()
    }

    fn joined(a: &StateSet, b: &StateSet) -> StateSet {
        let mut out = a.clone();
        join_union(&mut out, b);
        out
    }

    // ---- automaton-product lattice laws --------------------------------

    #[test]
    fn product_join_is_idempotent_and_commutative_on_domains() {
        let rule = wal_rule();
        let mut rng = XorShift(0xabcdef0123456789);
        for _ in 0..500 {
            let a = rand_set(&mut rng, &rule.states);
            let b = rand_set(&mut rng, &rule.states);
            assert_eq!(joined(&a, &a), a, "idempotent");
            let ab = joined(&a, &b);
            let ba = joined(&b, &a);
            let ka: Vec<&String> = ab.keys().collect();
            let kb: Vec<&String> = ba.keys().collect();
            assert_eq!(ka, kb, "commutative on state domains");
        }
    }

    #[test]
    fn product_join_is_monotone() {
        let rule = wal_rule();
        let mut rng = XorShift(0x1234567887654321);
        for _ in 0..500 {
            let a = rand_set(&mut rng, &rule.states);
            let b = rand_set(&mut rng, &rule.states);
            let ab = joined(&a, &b);
            for (k, v) in &a {
                assert_eq!(ab.get(k), Some(v), "join never rewrites a witness");
            }
            for k in b.keys() {
                assert!(ab.contains_key(k), "join absorbs the other branch");
            }
        }
    }

    #[test]
    fn transition_step_is_monotone_in_the_input_set() {
        let rule = wal_rule();
        let mut rng = XorShift(0x5eed5eed5eed5eed);
        for _ in 0..500 {
            let a = rand_set(&mut rng, &rule.states);
            let b = rand_set(&mut rng, &rule.states);
            let arcs: Vec<&TsArc> = rule.transitions.iter().collect();
            let sa = step(&a, &arcs, 1);
            let sab = step(&joined(&a, &b), &arcs, 1);
            for k in sa.keys() {
                assert!(
                    sab.contains_key(k),
                    "growing the input set must never shrink the output set"
                );
            }
        }
    }

    #[test]
    fn a_transition_never_resurrects_a_state() {
        // Every state in step(S) is either a fired arc's target or a
        // surviving member of S — an error/terminal state the machine
        // has left cannot reappear without an arc into it.
        let rule = wal_rule();
        let mut rng = XorShift(0xfeedfacecafebeef);
        for _ in 0..500 {
            let s = rand_set(&mut rng, &rule.states);
            // Random non-empty arc subset as the event.
            let mask = rng.next() as usize;
            let arcs: Vec<&TsArc> = rule
                .transitions
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, a)| a)
                .collect();
            let out = step(&s, &arcs, 7);
            for k in out.keys() {
                let survived = s.contains_key(k) && !arcs.iter().any(|a| a.from == *k);
                let targeted = arcs.iter().any(|a| a.to == *k && s.contains_key(&a.from));
                assert!(
                    survived || targeted,
                    "state `{k}` resurrected: not a survivor, no arc into it"
                );
            }
        }
    }

    #[test]
    fn terminal_state_is_absorbing_without_arcs_out() {
        // The scratch automaton: once `taken`, no arc leads back to
        // `live`, so {taken} is a fixpoint of every event.
        let rule = builtin()
            .typestate_rules
            .into_iter()
            .find(|r| r.name == "scratch-use-after-take")
            .unwrap();
        let taken: StateSet = [("taken".to_string(), 3)].into_iter().collect();
        let arcs: Vec<&TsArc> = rule.transitions.iter().collect();
        assert_eq!(step(&taken, &arcs, 9), taken);
    }
}
