//! The ratchet baseline: known debt, checked in, only allowed to shrink.
//!
//! `lint-baseline.json` maps `"<file>|<rule>"` to a finding count. A
//! check run fails only when some (file, rule) pair's *current* count
//! exceeds its baselined count — new debt. Counts *below* baseline are
//! reported as burn-down so the file can be re-tightened with
//! `--update-baseline`.

use std::collections::BTreeMap;

use crate::json;
use crate::rules::Finding;

/// Key used in the baseline map.
pub fn key(file: &str, rule: &str) -> String {
    format!("{file}|{rule}")
}

/// Aggregates findings into per-(file, rule) counts.
pub fn counts(findings: &[Finding]) -> BTreeMap<String, u64> {
    let mut map = BTreeMap::new();
    for f in findings {
        *map.entry(key(&f.file, f.rule)).or_insert(0u64) += 1;
    }
    map
}

/// Outcome of comparing current findings against the baseline.
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// Findings in (file, rule) pairs whose count rose above baseline —
    /// these fail the build. When a pair has both old and new findings
    /// we cannot tell which line is "new", so all of that pair's
    /// findings are listed (the count delta is what matters).
    pub new_findings: Vec<Finding>,
    /// Pairs whose current count is below baseline: `(key, baseline,
    /// current)` — debt burned down; baseline should be re-tightened.
    pub burned_down: Vec<(String, u64, u64)>,
    /// Pairs at exactly their baselined count (tolerated debt).
    pub tolerated: u64,
}

/// Compares `findings` against `baseline` (ratchet semantics).
pub fn compare(findings: &[Finding], baseline: &BTreeMap<String, u64>) -> RatchetReport {
    let current = counts(findings);
    let mut report = RatchetReport::default();
    for (k, &cur) in &current {
        let base = baseline.get(k).copied().unwrap_or(0);
        if cur > base {
            report
                .new_findings
                .extend(findings.iter().filter(|f| key(&f.file, f.rule) == *k).cloned());
        } else {
            report.tolerated += cur;
        }
    }
    for (k, &base) in baseline {
        let cur = current.get(k).copied().unwrap_or(0);
        if cur < base {
            report.burned_down.push((k.clone(), base, cur));
        }
    }
    report
}

/// Parses baseline file content.
pub fn parse(content: &str) -> Result<BTreeMap<String, u64>, String> {
    json::parse_object_u64(content)
}

/// Serialises the baseline for `--update-baseline`.
pub fn render(findings: &[Finding]) -> String {
    json::write_object_u64(&counts(findings))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(file: &str, rule: &'static str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            excerpt: String::new(),
            witness: None,
            flow: Vec::new(),
        }
    }

    #[test]
    fn empty_baseline_flags_everything() {
        let findings = vec![f("a.rs", "raw-clock", 1), f("a.rs", "raw-clock", 9)];
        let r = compare(&findings, &BTreeMap::new());
        assert_eq!(r.new_findings.len(), 2);
        assert_eq!(r.tolerated, 0);
    }

    #[test]
    fn at_baseline_is_tolerated() {
        let findings = vec![f("a.rs", "raw-clock", 1)];
        let base = parse("{\"a.rs|raw-clock\": 1}").unwrap();
        let r = compare(&findings, &base);
        assert!(r.new_findings.is_empty());
        assert_eq!(r.tolerated, 1);
    }

    #[test]
    fn above_baseline_fails_with_all_pair_findings() {
        let findings = vec![f("a.rs", "raw-clock", 1), f("a.rs", "raw-clock", 2)];
        let base = parse("{\"a.rs|raw-clock\": 1}").unwrap();
        let r = compare(&findings, &base);
        assert_eq!(r.new_findings.len(), 2);
    }

    #[test]
    fn below_baseline_reports_burndown() {
        let base = parse("{\"a.rs|raw-clock\": 3}").unwrap();
        let r = compare(&[f("a.rs", "raw-clock", 1)], &base);
        assert!(r.new_findings.is_empty());
        assert_eq!(r.burned_down, vec![("a.rs|raw-clock".to_string(), 3, 1)]);
    }

    #[test]
    fn roundtrip_render_parse() {
        let findings = vec![f("a.rs", "raw-clock", 1), f("b.rs", "raw-thread-spawn", 4)];
        let text = render(&findings);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, counts(&findings));
    }
}
