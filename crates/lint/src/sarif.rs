//! Minimal SARIF 2.1.0 emitter for CI annotation.
//!
//! Emits one run with the `wsd-lint` driver, a rule entry per
//! [`crate::rules::RULE_NAMES`] member, and one result per finding.
//! Interprocedural witnesses ride along in the message text so CI
//! surfaces the call chain, not just the sink line, and findings that
//! carry a step-by-step path (obligation chains, taint
//! source→sanitizer-miss→sink traces, gauge witness paths) emit it as
//! a `codeFlows` thread flow so code-scanning UIs render the whole
//! route. Only the subset of the schema that GitHub/GitLab
//! code-scanning ingestion reads is produced — hand-rolled like the
//! rest of the crate (no serde).

use crate::json::escape;
use crate::rules::{rule_hint, Finding, RULE_NAMES};

/// Renders one finding's `flow` as a SARIF `codeFlows` property
/// (single thread flow, one location per step). Empty string when the
/// finding has no recorded path.
fn code_flows(f: &Finding) -> String {
    if f.flow.is_empty() {
        return String::new();
    }
    let steps: Vec<String> = f
        .flow
        .iter()
        .map(|s| {
            format!(
                "{{\"location\": {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}, \"message\": {{\"text\": \"{}\"}}}}}}",
                escape(&s.file),
                s.line.max(1),
                escape(&s.message)
            )
        })
        .collect();
    format!(
        ", \"codeFlows\": [{{\"threadFlows\": [{{\"locations\": [{}]}}]}}]",
        steps.join(", ")
    )
}

/// Renders findings as a SARIF 2.1.0 document.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"wsd-lint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in RULE_NAMES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            escape(rule),
            escape(rule_hint(rule)),
            if i + 1 < RULE_NAMES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let mut message = f.excerpt.clone();
        if let Some(w) = &f.witness {
            message.push_str(" [witness: ");
            message.push_str(w);
            message.push(']');
        }
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]{}}}{}\n",
            escape(f.rule),
            escape(&message),
            escape(&f.file),
            f.line.max(1),
            code_flows(f),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FlowStep;

    #[test]
    fn sarif_shape_and_escaping() {
        let findings = vec![Finding {
            rule: "blocking-under-lock",
            file: "crates/x/src/a.rs".to_string(),
            line: 7,
            excerpt: "join while \"held\"".to_string(),
            witness: Some("A::f (crates/x/src/a.rs:7) -> thread join".to_string()),
            flow: Vec::new(),
        }];
        let doc = render(&findings);
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"ruleId\": \"blocking-under-lock\""));
        assert!(doc.contains("\"startLine\": 7"));
        assert!(doc.contains("\\\"held\\\""));
        assert!(doc.contains("witness: A::f"));
        // No flow steps -> no codeFlows property.
        assert!(!doc.contains("codeFlows"));
        // Every rule is declared.
        for rule in RULE_NAMES {
            assert!(doc.contains(&format!("\"id\": \"{rule}\"")));
        }
    }

    #[test]
    fn code_flows_render_each_step_in_order() {
        let findings = vec![Finding {
            rule: "unvalidated-envelope-to-sink",
            file: "crates/store/src/wal.rs".to_string(),
            line: 9,
            excerpt: "unvalidated bytes reach `append`".to_string(),
            witness: Some("tainted at wal.rs:3".to_string()),
            flow: vec![
                FlowStep {
                    file: "crates/store/src/wal.rs".to_string(),
                    line: 3,
                    message: "tainted by `try_read`".to_string(),
                },
                FlowStep {
                    file: "crates/store/src/wal.rs".to_string(),
                    line: 9,
                    message: "reaches sink `append` unsanitized".to_string(),
                },
            ],
        }];
        let doc = render(&findings);
        assert!(doc.contains("\"codeFlows\""));
        assert!(doc.contains("\"threadFlows\""));
        let a = doc.find("tainted by `try_read`").unwrap();
        let b = doc.find("reaches sink `append` unsanitized").unwrap();
        assert!(a < b, "flow steps must render in path order");
    }

    #[test]
    fn empty_findings_still_valid() {
        let doc = render(&[]);
        assert!(doc.contains("\"results\": [\n      ]"));
    }
}
