//! CLI for the workspace invariant checker.
//!
//! ```text
//! wsd-lint [--root PATH] [--check] [--json PATH] [--update-baseline]
//! ```
//!
//! * default: report all findings against the ratchet baseline
//!   (`<root>/lint-baseline.json`), exit 0.
//! * `--check`: exit 1 when any (file, rule) pair exceeds its baselined
//!   count — i.e. on *new* findings only.
//! * `--update-baseline`: rewrite the baseline to the current counts
//!   (used after burning down debt, never to absorb new debt casually).
//! * `--json PATH`: also write the findings as JSON (`-` for stdout).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use wsd_lint::{baseline, json, lint_workspace, rules};

struct Opts {
    root: PathBuf,
    check: bool,
    update_baseline: bool,
    json_path: Option<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        check: false,
        update_baseline: false,
        json_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a path")?);
            }
            "--check" => opts.check = true,
            "--update-baseline" => opts.update_baseline = true,
            "--json" => {
                opts.json_path = Some(args.next().ok_or("--json needs a path (or -)")?);
            }
            "--help" | "-h" => {
                println!(
                    "wsd-lint [--root PATH] [--check] [--json PATH] [--update-baseline]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn findings_json(findings: &[rules::Finding], new_keys: &BTreeMap<String, ()>) -> String {
    let mut out = String::from("[\n");
    for (idx, f) in findings.iter().enumerate() {
        let is_new = new_keys.contains_key(&baseline::key(&f.file, f.rule));
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"new\": {}, \"excerpt\": \"{}\"}}{}",
            json::escape(f.rule),
            json::escape(&f.file),
            f.line,
            is_new,
            json::escape(&f.excerpt),
            if idx + 1 == findings.len() { "\n" } else { ",\n" }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("wsd-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let (findings, suppression_count) = match lint_workspace(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wsd-lint: walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts.root.join("lint-baseline.json");
    let base = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("wsd-lint: bad baseline {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => BTreeMap::new(), // no baseline file = empty baseline
    };

    if opts.update_baseline {
        let text = baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("wsd-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wsd-lint: baseline rewritten with {} finding(s) across {} (file, rule) pair(s)",
            findings.len(),
            baseline::counts(&findings).len()
        );
        return ExitCode::SUCCESS;
    }

    let report = baseline::compare(&findings, &base);
    let new_keys: BTreeMap<String, ()> = report
        .new_findings
        .iter()
        .map(|f| (baseline::key(&f.file, f.rule), ()))
        .collect();

    // Human diff-style output: findings grouped per file, `+` marks new
    // (above-baseline) findings, `=` marks tolerated baselined debt.
    let mut last_file = "";
    for f in &findings {
        if f.file != last_file {
            println!("--- {}", f.file);
            last_file = &f.file;
        }
        let marker = if new_keys.contains_key(&baseline::key(&f.file, f.rule)) {
            '+'
        } else {
            '='
        };
        println!("{}{:<5} [{}] {}", marker, f.line, f.rule, f.excerpt);
        let hint = rules::rule_hint(f.rule);
        if !hint.is_empty() {
            println!("       -> {hint}");
        }
    }
    for (k, base_n, cur) in &report.burned_down {
        println!(
            "~ {k}: baseline {base_n} -> {cur} — debt burned down; run --update-baseline to ratchet"
        );
    }
    println!(
        "wsd-lint: {} new, {} tolerated (baseline), {} burned-down pair(s), {} suppression(s) with reasons",
        report.new_findings.len(),
        report.tolerated,
        report.burned_down.len(),
        suppression_count
    );

    if let Some(path) = &opts.json_path {
        let text = findings_json(&findings, &new_keys);
        if path == "-" {
            print!("{text}");
        } else if let Err(e) = std::fs::write(path, &text) {
            eprintln!("wsd-lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if opts.check && !report.new_findings.is_empty() {
        eprintln!(
            "wsd-lint: FAIL — {} finding(s) above baseline (fix, or suppress with \
             `// wsd-lint: allow(<rule>): <reason>`)",
            report.new_findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
