//! CLI for the workspace invariant checker.
//!
//! ```text
//! wsd-lint [--root PATH] [--check] [--json PATH] [--sarif PATH]
//!          [--update-baseline] [--self] [--budget-ms N]
//!          [--explain RULE]
//! ```
//!
//! * default: report all findings against the ratchet baseline
//!   (`<root>/lint-baseline.json`), exit 0.
//! * `--check`: exit 1 when any (file, rule) pair exceeds its baselined
//!   count — i.e. on *new* findings only.
//! * `--update-baseline`: rewrite the baseline to the current counts
//!   (used after burning down debt, never to absorb new debt casually).
//! * `--json PATH`: also write the report as JSON (`-` for stdout). The
//!   payload is an object: `findings` plus the ratchet summary
//!   (`burned_down` included, so machine consumers see burn-down too,
//!   not just the diff output).
//! * `--sarif PATH`: also write findings as SARIF 2.1.0 for CI
//!   annotation (`-` for stdout).
//! * `--self`: lint `crates/lint` itself with the full rule set (no
//!   path scoping, no baseline tolerance — any finding fails).
//! * `--budget-ms N`: fail (exit 1) when the analysis wall time exceeds
//!   `N` milliseconds — the linter's own performance is part of the
//!   contract (it runs on every `verify.sh lint`). The measured time is
//!   reported as `check_ms` in the `--json` summary either way, as an
//!   object: `total` plus one entry per engine stage (lexical, graph,
//!   interproc, dataflow, typestate, waitgraph), so budget regressions
//!   are attributable to a stage.
//! * `--explain RULE`: print the rule's doc string, engine kind, and
//!   (for declarative rules) the `lint-rules.toml` source row, then
//!   exit.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use wsd_lint::{analyze_workspace, baseline, json, rules, ruleset, sarif};

struct Opts {
    root: PathBuf,
    check: bool,
    update_baseline: bool,
    json_path: Option<String>,
    sarif_path: Option<String>,
    self_mode: bool,
    budget_ms: Option<u64>,
    explain: Option<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        check: false,
        update_baseline: false,
        json_path: None,
        sarif_path: None,
        self_mode: false,
        budget_ms: None,
        explain: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a path")?);
            }
            "--check" => opts.check = true,
            "--update-baseline" => opts.update_baseline = true,
            "--json" => {
                opts.json_path = Some(args.next().ok_or("--json needs a path (or -)")?);
            }
            "--sarif" => {
                opts.sarif_path = Some(args.next().ok_or("--sarif needs a path (or -)")?);
            }
            "--self" => opts.self_mode = true,
            "--budget-ms" => {
                let n = args.next().ok_or("--budget-ms needs a number")?;
                opts.budget_ms =
                    Some(n.parse().map_err(|_| format!("bad --budget-ms value {n:?}"))?);
            }
            "--explain" => {
                opts.explain = Some(args.next().ok_or("--explain needs a rule name")?);
            }
            "--help" | "-h" => {
                println!(
                    "wsd-lint [--root PATH] [--check] [--json PATH] [--sarif PATH] \
                     [--update-baseline] [--self] [--budget-ms N] [--explain RULE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// The `--json` payload: an object so the ratchet summary (including
/// burned-down pairs) travels with the findings — not only in the
/// human diff output.
fn report_json(
    findings: &[rules::Finding],
    new_keys: &BTreeMap<String, ()>,
    report: &baseline::RatchetReport,
    suppressions: usize,
    check_ms: u128,
    timings: &[(&'static str, u128)],
) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (idx, f) in findings.iter().enumerate() {
        let is_new = new_keys.contains_key(&baseline::key(&f.file, f.rule));
        let witness = match &f.witness {
            Some(w) => format!(", \"witness\": \"{}\"", json::escape(w)),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"new\": {}, \"excerpt\": \"{}\"{}}}{}",
            json::escape(f.rule),
            json::escape(&f.file),
            f.line,
            is_new,
            json::escape(&f.excerpt),
            witness,
            if idx + 1 == findings.len() { "\n" } else { ",\n" }
        ));
    }
    out.push_str("  ],\n  \"burned_down\": [\n");
    for (idx, (k, base_n, cur)) in report.burned_down.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"key\": \"{}\", \"baseline\": {}, \"current\": {}}}{}",
            json::escape(k),
            base_n,
            cur,
            if idx + 1 == report.burned_down.len() {
                "\n"
            } else {
                ",\n"
            }
        ));
    }
    let stages: String = timings
        .iter()
        .map(|(name, ms)| format!(", \"{name}\": {ms}"))
        .collect();
    out.push_str(&format!(
        "  ],\n  \"summary\": {{\"new\": {}, \"tolerated\": {}, \"burned_down\": {}, \"suppressions\": {}, \"check_ms\": {{\"total\": {}{}}}}}\n}}\n",
        report.new_findings.len(),
        report.tolerated,
        report.burned_down.len(),
        suppressions,
        check_ms,
        stages
    ));
    out
}

fn write_out(path: &str, text: &str) -> Result<(), ExitCode> {
    if path == "-" {
        print!("{text}");
        Ok(())
        // wsd-lint: allow(raw-file-io): report artifacts (SARIF/JSON), not durable state
    } else if let Err(e) = std::fs::write(path, text) {
        eprintln!("wsd-lint: cannot write {path}: {e}");
        Err(ExitCode::from(2))
    } else {
        Ok(())
    }
}

/// `--explain RULE`: doc string, engine kind, and (for declarative
/// rules) the `lint-rules.toml` source row.
fn explain(root: &std::path::Path, rule: &str) -> ExitCode {
    let rs = match ruleset::load(root) {
        Ok(rs) => rs,
        Err(e) => {
            eprintln!("wsd-lint: bad ruleset: {e}");
            return ExitCode::from(2);
        }
    };
    let hint = rules::rule_hint(rule);
    match ruleset::explain_rule(&rs, rule) {
        Some((kind, doc, toml)) => {
            println!("{rule} — {kind}");
            if !doc.is_empty() {
                println!("  {doc}");
            }
            if !hint.is_empty() {
                println!("  -> {hint}");
            }
            println!("\nlint-rules.toml source row:");
            for line in toml.lines() {
                println!("  {line}");
            }
            ExitCode::SUCCESS
        }
        None if rules::RULE_NAMES.contains(&rule) => {
            println!("{rule} — built-in (lexical/interprocedural; no TOML row)");
            if !hint.is_empty() {
                println!("  -> {hint}");
            }
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "wsd-lint: unknown rule {rule:?}; known rules: {}",
                rules::RULE_NAMES.join(", ")
            );
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("wsd-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(rule) = &opts.explain {
        return explain(&opts.root, rule);
    }

    // `--self`: the linter lints itself, full rule set, zero tolerance.
    let (root, self_mode) = if opts.self_mode {
        (opts.root.join("crates").join("lint"), true)
    } else {
        (opts.root.clone(), false)
    };

    // wsd-lint: allow(raw-clock): measuring the linter's own wall time, not event time
    let t0 = std::time::Instant::now();
    let analysis = match analyze_workspace(&root, self_mode) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wsd-lint: walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    let check_ms = t0.elapsed().as_millis();
    let (findings, suppression_count) = (analysis.findings, analysis.suppressions);

    if self_mode {
        for f in &findings {
            println!("! {}:{} [{}] {}", f.file, f.line, f.rule, f.excerpt);
            if let Some(w) = &f.witness {
                println!("       witness: {w}");
            }
        }
        if findings.is_empty() {
            println!(
                "wsd-lint --self: clean ({} fn(s) in the self call graph)",
                analysis.graph.fns.len()
            );
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "wsd-lint --self: FAIL — {} finding(s); the linter holds itself to the full rule set",
            findings.len()
        );
        return ExitCode::FAILURE;
    }

    let baseline_path = opts.root.join("lint-baseline.json");
    // wsd-lint: allow(raw-file-io): the ratchet baseline is a checked-in text file
    let base = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("wsd-lint: bad baseline {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => BTreeMap::new(), // no baseline file = empty baseline
    };

    if opts.update_baseline {
        let text = baseline::render(&findings);
        // wsd-lint: allow(raw-file-io): rewriting the ratchet baseline on request
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("wsd-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wsd-lint: baseline rewritten with {} finding(s) across {} (file, rule) pair(s)",
            findings.len(),
            baseline::counts(&findings).len()
        );
        return ExitCode::SUCCESS;
    }

    let report = baseline::compare(&findings, &base);
    let new_keys: BTreeMap<String, ()> = report
        .new_findings
        .iter()
        .map(|f| (baseline::key(&f.file, f.rule), ()))
        .collect();

    // Human diff-style output: findings grouped per file, `+` marks new
    // (above-baseline) findings, `=` marks tolerated baselined debt.
    let mut last_file = "";
    for f in &findings {
        if f.file != last_file {
            println!("--- {}", f.file);
            last_file = &f.file;
        }
        let marker = if new_keys.contains_key(&baseline::key(&f.file, f.rule)) {
            '+'
        } else {
            '='
        };
        println!("{}{:<5} [{}] {}", marker, f.line, f.rule, f.excerpt);
        if let Some(w) = &f.witness {
            println!("       witness: {w}");
        }
        let hint = rules::rule_hint(f.rule);
        if !hint.is_empty() {
            println!("       -> {hint}");
        }
    }
    for (k, base_n, cur) in &report.burned_down {
        println!(
            "~ {k}: baseline {base_n} -> {cur} — debt burned down; run --update-baseline to ratchet"
        );
    }
    println!(
        "wsd-lint: {} new, {} tolerated (baseline), {} burned-down pair(s), {} suppression(s) with reasons, analysis {check_ms}ms",
        report.new_findings.len(),
        report.tolerated,
        report.burned_down.len(),
        suppression_count
    );

    if let Some(path) = &opts.json_path {
        let text = report_json(
            &findings,
            &new_keys,
            &report,
            suppression_count,
            check_ms,
            &analysis.timings,
        );
        if let Err(code) = write_out(path, &text) {
            return code;
        }
    }
    if let Some(path) = &opts.sarif_path {
        let text = sarif::render(&findings);
        if let Err(code) = write_out(path, &text) {
            return code;
        }
    }

    if opts.check && !report.new_findings.is_empty() {
        eprintln!(
            "wsd-lint: FAIL — {} finding(s) above baseline (fix, or suppress with \
             `// wsd-lint: allow(<rule>): <reason>`)",
            report.new_findings.len()
        );
        return ExitCode::FAILURE;
    }
    if let Some(budget) = opts.budget_ms {
        if check_ms > u128::from(budget) {
            eprintln!(
                "wsd-lint: FAIL — analysis took {check_ms}ms, over the {budget}ms budget"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
