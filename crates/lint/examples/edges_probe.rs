//! Diagnostic: dump the static lock classes and acquisition-order edge
//! set for the workspace rooted at the current directory.
//!
//! ```text
//! cargo run -p wsd-lint --example edges_probe
//! ```

fn main() {
    let wa = wsd_lint::analyze_workspace(std::path::Path::new("."), false).unwrap();
    println!("classes: {:?}", wa.facts.classes);
    if wa.lock_edges.is_empty() {
        println!("no lock-order edges: nothing ever acquires one Ordered lock under another");
    }
    for e in &wa.lock_edges {
        println!("edge {} -> {} ({}:{})", e.from, e.to, e.file, e.line);
    }
}
