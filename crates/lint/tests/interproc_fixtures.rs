//! End-to-end coverage for the interprocedural layer: each seeded
//! violation in the `graph_seeded` fixture tree must be caught with the
//! expected witness chain, and the `graph_known_good` twin — same
//! shapes, done right — must produce zero findings (no false
//! positives).

use std::path::PathBuf;

use wsd_lint::analyze_workspace;
use wsd_lint::rules::Finding;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

fn by_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn seeded_graph_violations_are_all_caught_exactly() {
    let wa = analyze_workspace(&fixture_root("graph_seeded"), false).expect("walk fixture");

    let bul = by_rule(&wa.findings, "blocking-under-lock");
    assert_eq!(bul.len(), 2, "{:#?}", wa.findings);
    for f in &bul {
        assert_eq!(f.file, "crates/concurrent/src/pool.rs");
        assert!(f.excerpt.contains("pool.handles"), "{f:?}");
    }
    // The transitive one names the helper in its witness chain.
    assert!(
        bul.iter().any(|f| {
            f.witness
                .as_deref()
                .is_some_and(|w| w.contains("Pool::join_all") && w.contains("thread join"))
        }),
        "{bul:#?}"
    );

    let slo = by_rule(&wa.findings, "static-lock-order");
    assert_eq!(slo.len(), 1, "{:#?}", wa.findings);
    assert!(slo[0].excerpt.contains("pair.left") && slo[0].excerpt.contains("pair.right"));
    // Both orientations of the conflicting edge exist in the edge set.
    assert!(wa.lock_edges.iter().any(|e| e.from == "pair.left" && e.to == "pair.right"));
    assert!(wa.lock_edges.iter().any(|e| e.from == "pair.right" && e.to == "pair.left"));

    let wsa = by_rule(&wa.findings, "wsa-rewrite-before-forward");
    assert_eq!(wsa.len(), 1, "{:#?}", wa.findings);
    assert!(
        wsa[0]
            .witness
            .as_deref()
            .is_some_and(|w| w.contains("Dispatcher::accept") && w.contains("Dispatcher::classify")),
        "{wsa:#?}"
    );

    let shard = by_rule(&wa.findings, "shard-route-before-enqueue");
    assert_eq!(shard.len(), 1, "{:#?}", wa.findings);
    assert_eq!(shard[0].file, "crates/core/src/sim/fleet_hub.rs");
    assert!(
        shard[0]
            .witness
            .as_deref()
            .is_some_and(|w| w.contains("Hub::resend") && w.contains("Hub::retry")),
        "{shard:#?}"
    );

    let lim = by_rule(&wa.findings, "limits-at-serve-site");
    assert_eq!(lim.len(), 1, "{:#?}", wa.findings);
    assert_eq!(lim[0].file, "crates/core/src/rt/serve.rs");
    assert!(lim[0].excerpt.contains("Limits::default"));

    let aid = by_rule(&wa.findings, "alloc-in-drain");
    assert_eq!(aid.len(), 1, "{:#?}", wa.findings);
    assert_eq!(aid[0].file, "crates/core/src/rt/dispatch.rs");
    assert!(aid[0].excerpt.contains("format!"), "{aid:#?}");
    assert!(
        aid[0].witness.as_deref().is_some_and(|w| {
            w.contains("Dispatcher::drain") && w.contains("Dispatcher::emit_ack")
        }),
        "{aid:#?}"
    );

    // Nothing else fires: the seeded total is exactly the six rules.
    assert_eq!(wa.findings.len(), 7, "{:#?}", wa.findings);
}

#[test]
fn known_good_graph_twin_has_zero_findings() {
    let wa = analyze_workspace(&fixture_root("graph_known_good"), false).expect("walk fixture");
    assert!(wa.findings.is_empty(), "false positives: {:#?}", wa.findings);
    // The consistent-order twin still records its (acyclic) edge.
    assert!(wa.lock_edges.iter().any(|e| e.from == "pair.left" && e.to == "pair.right"));
    assert!(!wa.lock_edges.iter().any(|e| e.from == "pair.right" && e.to == "pair.left"));
}

#[test]
fn seeded_fixtures_are_exempt_under_their_real_path() {
    // From the repo root the fixture trees live under
    // crates/lint/tests/fixtures/ — test collateral, so the real
    // workspace run must not see their seeded violations.
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    let wa = analyze_workspace(&repo_root, false).expect("walk workspace");
    assert!(
        wa.findings
            .iter()
            .all(|f| !f.file.contains("graph_seeded")),
        "{:#?}",
        wa.findings
    );
}
