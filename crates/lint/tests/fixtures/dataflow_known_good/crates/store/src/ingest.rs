//! The taint shapes done right: every source-tainted buffer passes a
//! sanitizer (directly or through a helper) before any sink.

pub struct Ingest {
    log: Wal,
}

impl Ingest {
    /// Direct sanitize: `verify_element` clears the taint.
    pub fn pump(&mut self, sock: &mut Sock) {
        let frame = sock.try_read();
        verify_element(&frame);
        self.log.append(frame);
    }

    /// Interprocedural sanitize: `check` transitively calls a
    /// sanitizer, so its summary clears the argument.
    pub fn pump_via_helper(&mut self, sock: &mut Sock) {
        let raw = sock.try_read();
        self.check(&raw);
        self.log.append(raw);
    }

    fn check(&self, bytes: &Frame) {
        verify_element(bytes);
    }

    /// Untainted data can hit the sink freely.
    pub fn flush_static(&mut self) {
        let banner = heartbeat_frame();
        self.log.append(banner);
    }
}
