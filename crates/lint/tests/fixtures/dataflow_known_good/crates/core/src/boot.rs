//! A live suppression: the allow below still silences a real finding,
//! so the unused-suppression check must stay quiet about it.

pub fn load_config(path: &str) -> String {
    // wsd-lint: allow(raw-file-io): startup config read, not durable state
    std::fs::read_to_string(path).unwrap_or_default()
}
