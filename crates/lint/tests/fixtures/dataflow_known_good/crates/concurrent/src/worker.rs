//! The gauge shapes done right: every increment is matched on every
//! non-panic path out (panic paths are exempt by design).

pub struct Worker {
    active: Gauge,
}

impl Worker {
    /// The early return lowers the gauge before leaving.
    pub fn step(&self, job: Option<Job>) {
        self.active.inc();
        let Some(job) = job else {
            self.active.dec();
            return;
        };
        run(job);
        self.active.dec();
    }

    /// Both branches lower it.
    pub fn tick(&self, ok: bool) {
        self.active.inc();
        if ok {
            self.active.dec();
        } else {
            self.active.dec();
        }
    }

    /// Panic paths are not leaks: the process is tearing down.
    pub fn strict(&self) {
        self.active.inc();
        if poisoned() {
            panic!("worker invariant violated");
        }
        self.active.dec();
    }
}
