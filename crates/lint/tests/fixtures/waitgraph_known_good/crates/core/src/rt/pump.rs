//! Known-good twin of the seeded pump: the owner's shutdown path
//! closes the queue, releasing the parked consumer.

pub struct Pump {
    inbox: FifoQueue<Envelope>,
}

impl Pump {
    pub fn run(&self) {
        loop {
            let env = self.inbox.pop();
            self.deliver(env);
        }
    }

    pub fn shutdown(&self) {
        self.inbox.close();
    }

    fn deliver(&self, _env: Envelope) {}
}
