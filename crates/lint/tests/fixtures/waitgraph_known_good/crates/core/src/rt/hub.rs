//! Known-good twin of the seeded hub: the producer stages under the
//! lock and pushes only after dropping it, so the wait-for graph has
//! a single queue->lock edge and no cycle.

pub struct Hub {
    jobs: FifoQueue<Job>,
    state: OrderedMutex<HubState>,
}

impl Hub {
    pub fn new() -> Hub {
        Hub {
            jobs: FifoQueue::bounded(64),
            state: OrderedMutex::new("hub.state", HubState::new()),
        }
    }

    /// Push happens outside the guard region: no lock->queue edge.
    pub fn submit(&self, job: Job) {
        let st = self.state.lock();
        let tagged = st.tag(job);
        drop(st);
        self.jobs.push(tagged);
    }

    pub fn drain_one(&self) {
        let job = self.jobs.pop();
        let mut st = self.state.lock();
        st.apply(job);
    }

    pub fn shutdown(&self) {
        self.jobs.close();
    }
}
