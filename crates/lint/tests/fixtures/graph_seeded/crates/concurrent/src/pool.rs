//! Seeded interprocedural violations: thread joins reachable from a
//! held `pool.handles` guard — one direct, one through a helper.

pub struct Pool {
    handles: OrderedMutex<Vec<Handle>>,
}

impl Pool {
    pub fn new() -> Pool {
        Pool {
            handles: OrderedMutex::new("pool.handles", Vec::new()),
        }
    }

    /// SEEDED(blocking-under-lock): joins while the guard is live.
    pub fn shutdown_direct(&self) {
        let g = self.handles.lock();
        for h in g.iter() {
            h.join();
        }
    }

    /// SEEDED(blocking-under-lock): the join hides behind a callee.
    pub fn shutdown_via_helper(&self) {
        let g = self.handles.lock();
        self.join_all();
        drop(g);
    }

    fn join_all(&self) {
        for h in self.list() {
            h.join();
        }
    }

    fn list(&self) -> Vec<Handle> {
        Vec::new()
    }
}
