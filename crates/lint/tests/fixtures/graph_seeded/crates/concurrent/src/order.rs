//! Seeded interprocedural violation: the two lock classes are taken in
//! opposite orders by the two paths — a static lock-order cycle.

pub struct Pair {
    left: OrderedMutex<u8>,
    right: OrderedMutex<u8>,
}

impl Pair {
    pub fn new() -> Pair {
        Pair {
            left: OrderedMutex::new("pair.left", 0),
            right: OrderedMutex::new("pair.right", 0),
        }
    }

    /// Takes left, then right.
    pub fn forward(&self) {
        let a = self.left.lock();
        let b = self.right.lock();
        drop(b);
        drop(a);
    }

    /// SEEDED(static-lock-order): takes right, then left.
    pub fn backward(&self) {
        let b = self.right.lock();
        let a = self.left.lock();
        drop(a);
        drop(b);
    }
}
