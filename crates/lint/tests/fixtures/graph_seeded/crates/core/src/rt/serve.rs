//! Seeded interprocedural violation: the serve site constructs default
//! parser limits instead of threading operator config.

pub struct Server;

impl Server {
    /// SEEDED(limits-at-serve-site).
    pub fn start(&self, net: &Network) {
        net.listen(move |stream| {
            let _ = serve_connection(stream, &Limits::default(), handle);
        });
    }
}

fn handle(req: Request) -> Response {
    Response::ok()
}
