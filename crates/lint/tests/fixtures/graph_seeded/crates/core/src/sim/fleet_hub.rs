//! Seeded interprocedural violation: a fleet deposit is enqueued at a
//! hard-coded instance — no consistent-hash routing step anywhere on
//! the path from the entry point to the sink.

pub struct Hub {
    view: Ring,
}

impl Hub {
    /// SEEDED(shard-route-before-enqueue): the re-send path aims the
    /// deposit at instance 0 instead of asking the ring who owns it.
    pub fn resend(&self, svc: &str, body: &str) {
        self.retry(svc, body);
    }

    fn retry(&self, svc: &str, body: &str) {
        self.enqueue_fleet(0, svc, body);
    }

    fn enqueue_fleet(&self, instance: u32, svc: &str, body: &str) {
        self.view.post(instance, svc, body);
    }
}
