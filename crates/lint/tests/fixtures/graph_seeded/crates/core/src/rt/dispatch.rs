//! Seeded interprocedural violation: an envelope is forwarded (enqueued)
//! with no WS-Addressing ReplyTo rewrite anywhere on the path from the
//! entry point to the sink.

pub struct Dispatcher {
    queue: OutQueue,
}

impl Dispatcher {
    /// SEEDED(wsa-rewrite-before-forward): entry point whose forward
    /// path never rewrites the ReplyTo.
    pub fn accept(&self, env: Envelope) {
        self.classify(env);
    }

    fn classify(&self, env: Envelope) {
        self.queue.enqueue(env);
    }

    /// SEEDED(alloc-in-drain): the drain pump formats a fresh ack per
    /// message instead of splicing into the reusable scratch buffer.
    pub fn drain(&self, env: Envelope) {
        self.emit_ack(env);
    }

    fn emit_ack(&self, env: Envelope) {
        let ack = format!("<ack>{}</ack>", env.relates_to);
        self.queue.push_ack(ack);
    }
}
