//! Seeded interprocedural violation: an envelope is forwarded (enqueued)
//! with no WS-Addressing ReplyTo rewrite anywhere on the path from the
//! entry point to the sink.

pub struct Dispatcher {
    queue: OutQueue,
}

impl Dispatcher {
    /// SEEDED(wsa-rewrite-before-forward): entry point whose forward
    /// path never rewrites the ReplyTo.
    pub fn accept(&self, env: Envelope) {
        self.classify(env);
    }

    fn classify(&self, env: Envelope) {
        self.queue.enqueue(env);
    }
}
