//! Seeded-violation fixture: every rule must fire on this file when it
//! is linted under a dispatcher path (the analyzer tests feed it in as
//! `crates/core/src/fixture.rs`). This file is never compiled.

use std::sync::{Arc, Mutex}; // std-sync-primitive

fn serve() {
    std::thread::spawn(|| {}); // raw-thread-spawn
    let _b = std::thread::Builder::new(); // raw-thread-spawn
    let _t = std::time::Instant::now(); // raw-clock
    let _s = std::time::SystemTime::now(); // raw-clock
    let q = FifoQueue::unbounded(); // unbounded-queue-at-serve-site
    let (tx, rx) = mpsc::channel(); // unbounded-queue-at-serve-site
    q.pop().unwrap(); // unwrap-in-dispatcher
    rx.recv().expect("recv"); // unwrap-in-dispatcher
    let _state = std::fs::read("state.bin"); // raw-file-io
    let _log = OpenOptions::new().append(true); // raw-file-io
}

// wsd-lint: allow(raw-clock)
fn reasonless_suppression_is_bad() {
    let _t = std::time::Instant::now();
}

// wsd-lint: allow(not-a-rule): typo'd rule names must be flagged too
fn unknown_rule_suppression_is_bad() {}
