//! Seeded typestate violations: WAL records appended but not
//! committed on every return path — the ack-before-durable race.

pub struct WalBox {
    wal: Wal,
}

impl WalBox {
    /// SEEDED(wal-ack-before-durable): falls off the end with the
    /// record appended but never fsynced.
    pub fn deposit_fast(&mut self, rec: Frame) -> Result<Lsn, Error> {
        let lsn = self.wal.append(rec)?;
        Ok(lsn)
    }

    /// SEEDED(wal-ack-before-durable): the happy path commits, the
    /// fast-ack early return does not.
    pub fn deposit_racy(&mut self, rec: Frame, fast: bool) -> Result<(), Error> {
        let lsn = self.wal.append(rec)?;
        if fast {
            return Ok(());
        }
        self.wal.commit(lsn)?;
        Ok(())
    }
}
