//! Seeded typestate violation: a connection removed from the conns
//! map leaks on the drop path without an `open_conns` decrement.

impl Shared {
    /// SEEDED(reactor-conn-accounting): the `!keep` fall-through drops
    /// the conn without re-inserting or decrementing the gauge.
    pub fn reinsert(&self, id: u64, keep: bool) {
        let mut st = self.state.lock();
        let conn = st.conns.remove(&id);
        if keep {
            st.conns.insert(id, conn);
        }
    }
}
