//! Seeded typestate violation: an ownership handoff claimed and then
//! abandoned on the validation-failure path.

impl FleetHub {
    /// SEEDED(fleet-handoff-completion): when the heir is unknown the
    /// claim is neither completed nor scheduled for recovery.
    pub fn adopt(&mut self, dead: u64, heir: u64) -> bool {
        self.handoffs.claim_for(dead, heir);
        if self.instances.contains(&heir) {
            self.handoffs.complete(dead);
            return true;
        }
        false
    }
}
