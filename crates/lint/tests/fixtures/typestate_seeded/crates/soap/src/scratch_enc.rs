//! Seeded typestate violation: a scratch guard written to after its
//! buffer was moved out — the write lands in the pool's next buffer.

/// SEEDED(scratch-use-after-take): `guard` is extended after
/// `take_out` already moved the buffer out.
pub fn encode_frame(pool: &ScratchPool, frame: &Frame) -> Vec<u8> {
    let mut guard = pool.checkout();
    guard.extend(frame.header());
    let buf = guard.take_out();
    guard.extend(frame.body());
    buf
}
