//! Seeded gauge-balance violations: an `active` gauge raised and not
//! lowered on every non-panic path out.

pub struct Worker {
    active: Gauge,
}

impl Worker {
    /// The `let ... else` early return leaks the increment.
    pub fn step(&self, job: Option<Job>) {
        self.active.inc();
        let Some(job) = job else {
            return;
        };
        run(job);
        self.active.dec();
    }

    /// The `!ok` branch falls through to the end still raised.
    pub fn tick(&self, ok: bool) {
        self.active.inc();
        if ok {
            self.active.dec();
        }
    }
}
