//! Seeded unused-suppression: a well-formed, reasoned allow that no
//! longer silences anything.

pub fn tidy() -> u64 {
    // wsd-lint: allow(raw-clock): measured once at startup (stale — the clock call is long gone)
    compute()
}
