//! Seeded taint violations: raw socket bytes reach durable sinks
//! without passing an envelope sanitizer.

pub struct Ingest {
    log: Wal,
}

impl Ingest {
    /// Direct flow: `frame` is tainted by `try_read` and reaches the
    /// WAL append unsanitized.
    pub fn pump(&mut self, sock: &mut Sock) {
        let frame = sock.try_read();
        self.log.append(frame);
    }

    /// Interprocedural flow: `store` forwards its parameter to a sink,
    /// so it is sink-like and the tainted argument here is a finding.
    pub fn pump_via_helper(&mut self, sock: &mut Sock) {
        let raw = sock.try_read();
        self.store(raw);
    }

    fn store(&mut self, bytes: Frame) {
        self.log.append(bytes);
    }
}
