//! Known-good twin of the seeded pool: handles are taken *out* of the
//! guard before any join, so no blocking sink is reachable under the
//! lock.

pub struct Pool {
    handles: OrderedMutex<Vec<Handle>>,
}

impl Pool {
    pub fn new() -> Pool {
        Pool {
            handles: OrderedMutex::new("pool.handles", Vec::new()),
        }
    }

    /// Joins only after the guard is consumed inside `take`'s statement.
    pub fn shutdown_direct(&self) {
        let handles: Vec<Handle> = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            h.join();
        }
    }

    /// The guard is dropped before the joining helper runs.
    pub fn shutdown_via_helper(&self) {
        let g = self.handles.lock();
        let count = g.len();
        drop(g);
        self.join_all(count);
    }

    fn join_all(&self, _count: usize) {
        for h in self.list() {
            h.join();
        }
    }

    fn list(&self) -> Vec<Handle> {
        Vec::new()
    }
}
