//! Known-good twin of the seeded pair: every path agrees on the
//! left-before-right acquisition order, so the edge set is acyclic.

pub struct Pair {
    left: OrderedMutex<u8>,
    right: OrderedMutex<u8>,
}

impl Pair {
    pub fn new() -> Pair {
        Pair {
            left: OrderedMutex::new("pair.left", 0),
            right: OrderedMutex::new("pair.right", 0),
        }
    }

    /// Takes left, then right.
    pub fn forward(&self) {
        let a = self.left.lock();
        let b = self.right.lock();
        drop(b);
        drop(a);
    }

    /// Also left-then-right: same order, no cycle.
    pub fn sweep(&self) {
        let a = self.left.lock();
        let b = self.right.lock();
        drop(b);
        drop(a);
    }
}
