//! Known-good twin of the seeded dispatcher: the forward path rewrites
//! the ReplyTo before the envelope is enqueued.

pub struct Dispatcher {
    queue: OutQueue,
}

impl Dispatcher {
    /// Entry point whose forward path rewrites before the sink.
    pub fn accept(&self, env: Envelope) {
        self.classify(env);
    }

    fn classify(&self, env: Envelope) {
        let env = rewrite_for_forward(env);
        self.queue.enqueue(env);
    }
}
