//! Known-good twin of the seeded dispatcher: the forward path rewrites
//! the ReplyTo before the envelope is enqueued.

pub struct Dispatcher {
    queue: OutQueue,
}

impl Dispatcher {
    /// Entry point whose forward path rewrites before the sink.
    pub fn accept(&self, env: Envelope) {
        self.classify(env);
    }

    fn classify(&self, env: Envelope) {
        let env = rewrite_for_forward(env);
        self.queue.enqueue(env);
    }

    /// Drain pump done right: the steady state splices into the caller's
    /// reusable buffer; the allocating tree ack is behind a reasoned
    /// edge suppression (outside the zero-alloc domain by declaration).
    pub fn drain(&self, env: Envelope, scratch: &mut String) {
        scratch.clear();
        splice_ack_into(&env, scratch);
        if env.anomalous {
            // wsd-lint: allow(alloc-in-drain): anomaly fallback — the tree ack allocates by design
            self.tree_ack(env);
        }
    }

    fn tree_ack(&self, env: Envelope) {
        let ack = format!("<ack>{}</ack>", env.relates_to);
        self.queue.push_ack(ack);
    }
}

fn splice_ack_into(env: &Envelope, out: &mut String) {
    out.push_str(env.relates_to());
}
