//! Known-good twin of the seeded serve site: parser limits are threaded
//! in from the operator's config instead of defaulted at the site.

pub struct Server;

impl Server {
    /// Limits arrive as a parameter, from config.
    pub fn start(&self, net: &Network, limits: Limits) {
        net.listen(move |stream| {
            let _ = serve_connection(stream, &limits, handle);
        });
    }
}

fn handle(req: Request) -> Response {
    Response::ok()
}
