//! Known-good twin of the seeded fleet hub: every deposit is aimed by
//! the consistent-hash ring before it is enqueued.

pub struct Hub {
    view: Ring,
}

impl Hub {
    /// Re-send path done right: the ring picks the owner, then the
    /// deposit goes out.
    pub fn resend(&self, svc: &str, body: &str) {
        let instance = self.shard_route(svc);
        self.retry(instance, svc, body);
    }

    fn retry(&self, instance: u32, svc: &str, body: &str) {
        self.enqueue_fleet(instance, svc, body);
    }

    fn shard_route(&self, svc: &str) -> u32 {
        self.view.owner_of(svc)
    }

    fn enqueue_fleet(&self, instance: u32, svc: &str, body: &str) {
        self.view.post(instance, svc, body);
    }
}
