//! Seeded blocking-cycle: the producer blocking-pushes while holding
//! the state lock; the consumer pops and then takes the same lock.
//! `hub.state -> jobs -> hub.state` is a deadlock schedule waiting
//! for a full queue and the right interleaving.

pub struct Hub {
    jobs: FifoQueue<Job>,
    state: OrderedMutex<HubState>,
}

impl Hub {
    pub fn new() -> Hub {
        Hub {
            jobs: FifoQueue::bounded(64),
            state: OrderedMutex::new("hub.state", HubState::new()),
        }
    }

    /// SEEDED(blocking-cycle): blocking push with `hub.state` held.
    pub fn submit(&self, job: Job) {
        let st = self.state.lock();
        self.jobs.push(job);
        drop(st);
    }

    /// The other half of the cycle: pops `jobs`, then takes the lock.
    pub fn drain_one(&self) {
        let job = self.jobs.pop();
        let mut st = self.state.lock();
        st.apply(job);
    }

    pub fn shutdown(&self) {
        self.jobs.close();
    }
}
