//! Seeded shutdown-liveness violation: a consumer parks on a queue no
//! non-test code ever closes.

pub struct Pump {
    inbox: FifoQueue<Envelope>,
}

impl Pump {
    /// SEEDED(queue-pop-no-close): `inbox` has no `close()` anywhere,
    /// so shutdown parks this loop forever.
    pub fn run(&self) {
        loop {
            let env = self.inbox.pop();
            self.deliver(env);
        }
    }

    fn deliver(&self, _env: Envelope) {}
}
