//! Known-good twin of the seeded scratch fixture: all writes happen
//! before `take_out`, which is the guard's last use.

pub fn encode_frame(pool: &ScratchPool, frame: &Frame) -> Vec<u8> {
    let mut guard = pool.checkout();
    guard.extend(frame.header());
    guard.extend(frame.body());
    guard.take_out()
}
