//! Known-good twin of the seeded WAL fixture: every return path
//! commits what it appended before acking.

pub struct WalBox {
    wal: Wal,
}

impl WalBox {
    pub fn deposit_fast(&mut self, rec: Frame) -> Result<Lsn, Error> {
        let lsn = self.wal.append(rec)?;
        self.wal.commit(lsn)?;
        Ok(lsn)
    }

    pub fn deposit_racy(&mut self, rec: Frame, fast: bool) -> Result<(), Error> {
        let lsn = self.wal.append(rec)?;
        self.wal.commit(lsn)?;
        if fast {
            return Ok(());
        }
        Ok(())
    }
}
