//! Known-good twin of the seeded reactor fixture: every exit either
//! re-inserts the removed conn or decrements `open_conns` — including
//! the branch-polarity shape (`.is_none()` early return) the real
//! reactor uses.

impl Shared {
    pub fn reinsert(&self, id: u64, keep: bool) {
        let mut st = self.state.lock();
        let conn = st.conns.remove(&id);
        if keep {
            st.conns.insert(id, conn);
        } else {
            self.open_conns.dec();
        }
    }

    /// When the remove misses, nothing was taken — the early return is
    /// clean because the `.is_none()` branch reverts the transition.
    pub fn reinsert_checked(&self, id: u64) {
        let mut st = self.state.lock();
        if st.conns.remove(&id).is_none() {
            return;
        }
        self.open_conns.dec();
    }
}
