//! Known-good twin of the seeded handoff fixture: the failure path
//! arms the recovery timer, which leads to completion.

impl FleetHub {
    pub fn adopt(&mut self, dead: u64, heir: u64) -> bool {
        self.handoffs.claim_for(dead, heir);
        if self.instances.contains(&heir) {
            self.handoffs.complete(dead);
            return true;
        }
        self.set_timer(dead);
        false
    }
}
