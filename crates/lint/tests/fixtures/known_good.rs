//! Known-good fixture: zero findings expected, even under a dispatcher
//! path. Every line here is a trap for a naive substring matcher — the
//! forbidden patterns appear only inside strings, raw strings, chars,
//! comments, `#[cfg(test)]` code, or under a reasoned suppression.
//! This file is never compiled.

fn clean_serve() {
    // thread::spawn in a comment is not a finding
    /* neither is Instant::now in a block comment,
       /* even nested: SystemTime::now */ still fine */
    let s = "thread::spawn(|| {}) inside a string";
    let r = r#"Instant::now() and a quote " inside a raw string"#;
    let rb = br##"SystemTime::now with "# inside"##;
    let b = b"mpsc::channel( in a byte string";
    let q = '"'; // a char literal that must not open a string
    let esc = '\''; // escaped quote char
    let lifetime: &'static str = "q.pop().unwrap() in a string";
    p(s, r, rb, b, q, esc, lifetime);
}

fn suppressed_with_reasons() {
    // wsd-lint: allow(raw-clock): fixture demonstrating a reasoned suppression
    let _t = std::time::Instant::now();
    let _b = std::thread::Builder::new(); // wsd-lint: allow(raw-thread-spawn): fixture demonstrating a trailing reasoned suppression
    // wsd-lint: allow(raw-file-io): fixture demonstrating a reasoned suppression
    let _meta = std::fs::metadata("artifact.json");
}

fn file_io_in_prose_is_fine() {
    let doc = "call std::fs::write or File::open through wsd_store instead";
    // OpenOptions::new() in a comment is not a finding either
    p3(doc);
}

fn unwrap_off_io_is_fine() {
    // expect/unwrap not chained to a queue/channel/IO call is allowed:
    let pool = ThreadPool::new(cfg).expect("pool construction");
    let n: u32 = "42".parse().unwrap();
    p2(pool, n);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        std::thread::spawn(|| {});
        let _t = std::time::Instant::now();
        q.pop().unwrap();
        let (_tx, _rx) = mpsc::channel();
    }
}
